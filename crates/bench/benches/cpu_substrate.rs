//! Criterion microbenchmarks of the CPU reference substrate — the "CPU"
//! side of the paper's Figure 2 and the oracles every kernel validates
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;

use ggpu_genomics::{
    center_star, greedy_cluster, ksw_extend, nw_score, random_genome, sequence_family,
    simulate_reads, sw_score, ClusterParams, FmIndex, GapModel, Mapper, MapperParams, PairHmm,
    ReadProfile, Simple,
};

const SUB: Simple = Simple {
    matches: 2,
    mismatch: -3,
};
const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

fn bench_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for len in [64usize, 256] {
        let a = random_genome(len, &mut rng);
        let b = random_genome(len, &mut rng);
        g.throughput(Throughput::Elements((len * len) as u64)); // DP cells
        g.bench_with_input(BenchmarkId::new("nw_score", len), &len, |bch, _| {
            bch.iter(|| nw_score(a.codes(), b.codes(), &SUB, GAPS))
        });
        g.bench_with_input(BenchmarkId::new("sw_score", len), &len, |bch, _| {
            bch.iter(|| sw_score(a.codes(), b.codes(), &SUB, GAPS))
        });
        g.bench_with_input(BenchmarkId::new("ksw_extend", len), &len, |bch, _| {
            bch.iter(|| ksw_extend(a.codes(), b.codes(), &SUB, GAPS, 32, 100))
        });
    }
    g.finish();
}

fn bench_pairhmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("pairhmm");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let hmm = PairHmm::default();
    for (rl, hl) in [(32usize, 48usize), (128, 160)] {
        let read = random_genome(rl, &mut rng);
        let hap = random_genome(hl, &mut rng);
        let quals = vec![30u8; rl];
        g.throughput(Throughput::Elements((rl * hl) as u64));
        g.bench_with_input(
            BenchmarkId::new("forward", format!("{rl}x{hl}")),
            &rl,
            |bch, _| bch.iter(|| hmm.forward(read.codes(), &quals, hap.codes())),
        );
    }
    g.finish();
}

fn bench_fmindex(c: &mut Criterion) {
    let mut g = c.benchmark_group("fmindex");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let genome = random_genome(100_000, &mut rng);
    g.bench_function("build_100k", |bch| bch.iter(|| FmIndex::new(&genome)));
    let fm = FmIndex::new(&genome);
    let pat = genome.slice(5_000, 24);
    g.bench_function("count_24bp", |bch| bch.iter(|| fm.count(&pat)));
    g.bench_function("find_24bp", |bch| bch.iter(|| fm.find(&pat)));
    g.finish();
}

fn bench_mapper(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapper");
    g.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let genome = random_genome(50_000, &mut rng);
    let reads = simulate_reads(&genome, 32, ReadProfile::default(), &mut rng);
    let mapper = Mapper::new(genome, MapperParams::default());
    g.throughput(Throughput::Elements(reads.len() as u64));
    g.bench_function("map_32_reads", |bch| {
        bch.iter(|| {
            reads
                .iter()
                .filter(|r| mapper.map(&r.seq).is_some())
                .count()
        })
    });
    g.finish();
}

fn bench_msa_and_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("msa_cluster");
    g.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let fam: Vec<Vec<u8>> = sequence_family(12, 120, 0.05, 0.01, &mut rng)
        .into_iter()
        .map(|s| s.codes().to_vec())
        .collect();
    g.bench_function("center_star_12x120", |bch| {
        bch.iter(|| center_star(&fam, &SUB, GAPS))
    });
    let mut pool: Vec<Vec<u8>> = Vec::new();
    for _ in 0..8 {
        for s in sequence_family(6, 150, 0.03, 0.002, &mut rng) {
            pool.push(s.codes().to_vec());
        }
    }
    g.bench_function("greedy_cluster_48x150", |bch| {
        bch.iter(|| greedy_cluster(&pool, ClusterParams::default()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_alignment,
    bench_pairhmm,
    bench_fmindex,
    bench_mapper,
    bench_msa_and_cluster
);
criterion_main!(benches);
