//! Engine throughput: simulated cycles per wall-clock second, single- vs
//! multi-threaded, across three differently shaped workloads, exported to
//! `results/bench_engine.json`.
//!
//! ```text
//! cargo bench -p ggpu-bench --bench engine_throughput
//! GGPU_BENCH_QUICK=1 cargo bench -p ggpu-bench --bench engine_throughput  # CI
//! ```
//!
//! Per workload the headline numbers are single-thread cycles/sec, the
//! cycles/sec ratio of `sim_threads = N` over `sim_threads = 1`, and how
//! many simulated cycles idle-cycle fast-forward elided. The JSON records
//! `host_parallelism` alongside: on a single-core host the engine falls
//! back to the serial loop at any requested thread count (no wall-clock
//! speedup is possible there), so read the ratio together with that field.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_sim::json::JsonWriter;

/// Worker-thread count for the multi-threaded measurement.
const PARALLEL_THREADS: usize = 4;

/// `(abbrev, cdp)` probe workloads: SW is plain data-parallel DP, NvB is
/// FM-index binning + search (a very different memory shape), and STAR
/// with CDP exercises device-side launches and their overhead windows.
const WORKLOADS: [(&str, bool); 3] = [("SW", false), ("NvB", false), ("STAR", true)];

fn quick_mode() -> bool {
    std::env::var_os("GGPU_BENCH_QUICK").is_some()
}

/// A wider-than-`test_small` device so the SM phase dominates and sharding
/// has something to chew on.
fn engine_cfg(threads: usize) -> GpuConfig {
    GpuConfig {
        n_sms: 16,
        ..GpuConfig::test_small()
    }
    .with_sim_threads(threads)
}

/// One measured run: simulated kernel cycles, cycles elided by
/// fast-forward, and the resolved worker-thread count.
struct RunSample {
    cycles: u64,
    skipped: u64,
    resolved: usize,
}

fn run_workload(scale: Scale, abbrev: &str, cdp: bool, threads: usize) -> RunSample {
    let config = engine_cfg(threads);
    let b = benchmark(scale, abbrev).expect("workload is registered");
    let r = b.run(&config, cdp);
    assert!(r.verified, "probe workload {abbrev} must verify");
    RunSample {
        cycles: r.kernel_cycles,
        skipped: r.fast_forward_skipped_cycles,
        resolved: r.sim_threads,
    }
}

/// Aggregate of `iters` runs at one thread count.
struct Measured {
    cycles: u64,
    skipped: u64,
    secs: f64,
    resolved: usize,
}

fn measure(scale: Scale, abbrev: &str, cdp: bool, threads: usize, iters: u32) -> Measured {
    let t0 = Instant::now();
    let mut cycles = 0u64;
    let mut skipped = 0u64;
    let mut resolved = 1;
    for _ in 0..iters {
        let s = run_workload(scale, abbrev, cdp, threads);
        cycles += s.cycles;
        skipped += s.skipped;
        resolved = s.resolved;
    }
    Measured {
        cycles,
        skipped,
        secs: t0.elapsed().as_secs_f64(),
        resolved,
    }
}

fn export_json(scale: Scale, iters: u32) {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut w = JsonWriter::new();
    w.begin_obj()
        .str(
            "scale",
            match scale {
                Scale::Tiny => "tiny",
                Scale::Small => "small",
                Scale::Paper => "paper",
            },
        )
        .u64("iterations", iters as u64)
        .u64("host_parallelism", host as u64)
        .u64("sim_threads_parallel", PARALLEL_THREADS as u64)
        .begin_arr_key("workloads");
    let mut summary = String::new();
    for (abbrev, cdp) in WORKLOADS {
        let one = measure(scale, abbrev, cdp, 1, iters);
        let par = measure(scale, abbrev, cdp, PARALLEL_THREADS, iters);
        let rate_1 = one.cycles as f64 / one.secs.max(1e-9);
        let rate_n = par.cycles as f64 / par.secs.max(1e-9);
        let speedup = rate_n / rate_1.max(1e-9);
        w.begin_obj()
            .str("workload", abbrev)
            .bool("cdp", cdp)
            .u64("simulated_cycles_per_run", one.cycles / iters as u64)
            .u64("fast_forward_skipped_cycles", one.skipped / iters as u64)
            .u64("sim_threads_resolved", par.resolved as u64)
            .f64("cycles_per_sec_1_thread", rate_1)
            .f64("cycles_per_sec_n_threads", rate_n)
            .f64("speedup_n_over_1", speedup)
            .end_obj();
        summary.push_str(&format!(
            "  {abbrev}{}: 1-thread {rate_1:.0} cyc/s ({} of {} cycles skipped), \
             {PARALLEL_THREADS}-thread {rate_n:.0} cyc/s (x{speedup:.2})\n",
            if cdp { " (CDP)" } else { "" },
            one.skipped / iters as u64,
            one.cycles / iters as u64,
        ));
    }
    w.end_arr().end_obj();
    let doc = w.finish();

    // `cargo bench` sets the cwd to the package root, so resolve the
    // default `results/` against the workspace root instead.
    let dir = std::env::var_os("GGPU_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("bench_engine.json");
    match std::fs::write(&path, &doc) {
        Ok(()) => println!(
            "[wrote {}] (host parallelism {host})\n{summary}",
            path.display()
        ),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn bench_engine(c: &mut Criterion) {
    let scale = if quick_mode() {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(if quick_mode() { 1 } else { 3 });
    for (abbrev, cdp) in WORKLOADS {
        for threads in [1usize, PARALLEL_THREADS] {
            g.bench_function(
                format!("{}_{threads}_threads", abbrev.to_lowercase()),
                |bch| bch.iter(|| run_workload(scale, abbrev, cdp, threads).cycles),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engine);

fn main() {
    benches();
    let (scale, iters) = if quick_mode() {
        (Scale::Tiny, 1)
    } else {
        (Scale::Small, 3)
    };
    export_json(scale, iters);
}
