//! Engine throughput: simulated cycles per wall-clock second, single- vs
//! multi-threaded, exported to `results/bench_engine.json`.
//!
//! ```text
//! cargo bench -p ggpu-bench --bench engine_throughput
//! GGPU_BENCH_QUICK=1 cargo bench -p ggpu-bench --bench engine_throughput  # CI
//! ```
//!
//! The headline number is the cycles/sec ratio of `sim_threads = N` over
//! `sim_threads = 1`. The JSON records `host_parallelism` alongside it:
//! on a single-core host the barrier protocol still runs (and must stay
//! correct), but no wall-clock speedup is possible, so read the ratio
//! together with that field.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_sim::json::JsonWriter;

/// Worker-thread count for the multi-threaded measurement.
const PARALLEL_THREADS: usize = 4;

fn quick_mode() -> bool {
    std::env::var_os("GGPU_BENCH_QUICK").is_some()
}

/// A wider-than-`test_small` device so the SM phase dominates and sharding
/// has something to chew on.
fn engine_cfg(threads: usize) -> GpuConfig {
    GpuConfig {
        n_sms: 16,
        ..GpuConfig::test_small()
    }
    .with_sim_threads(threads)
}

/// Run the probe workload once; returns simulated kernel cycles and the
/// resolved worker-thread count the engine actually used.
fn run_workload(scale: Scale, threads: usize) -> (u64, usize) {
    let config = engine_cfg(threads);
    let b = benchmark(scale, "SW").expect("SW is registered");
    let r = b.run(&config, false);
    assert!(r.verified, "probe workload must verify");
    (r.kernel_cycles, r.sim_threads)
}

/// Measure simulated cycles per wall-second at `threads` workers; also
/// returns the resolved thread count actually used.
fn measure(scale: Scale, threads: usize, iters: u32) -> (u64, f64, usize) {
    let t0 = Instant::now();
    let mut cycles = 0u64;
    let mut resolved = 1;
    for _ in 0..iters {
        let (c, r) = run_workload(scale, threads);
        cycles += c;
        resolved = r;
    }
    (cycles, t0.elapsed().as_secs_f64(), resolved)
}

fn export_json(scale: Scale, iters: u32) {
    let (cycles_1, secs_1, _) = measure(scale, 1, iters);
    let (cycles_n, secs_n, resolved_n) = measure(scale, PARALLEL_THREADS, iters);
    let rate_1 = cycles_1 as f64 / secs_1.max(1e-9);
    let rate_n = cycles_n as f64 / secs_n.max(1e-9);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut w = JsonWriter::new();
    w.begin_obj()
        .str("workload", "SW")
        .str(
            "scale",
            match scale {
                Scale::Tiny => "tiny",
                Scale::Small => "small",
                Scale::Paper => "paper",
            },
        )
        .u64("iterations", iters as u64)
        .u64("host_parallelism", host as u64)
        .u64("sim_threads_parallel", PARALLEL_THREADS as u64)
        .u64("sim_threads_resolved", resolved_n as u64)
        .u64("simulated_cycles_per_run", cycles_1 / iters as u64)
        .f64("cycles_per_sec_1_thread", rate_1)
        .f64("cycles_per_sec_n_threads", rate_n)
        .f64("speedup_n_over_1", rate_n / rate_1.max(1e-9))
        .end_obj();
    let doc = w.finish();

    // `cargo bench` sets the cwd to the package root, so resolve the
    // default `results/` against the workspace root instead.
    let dir = std::env::var_os("GGPU_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("bench_engine.json");
    match std::fs::write(&path, &doc) {
        Ok(()) => println!(
            "[wrote {}] 1-thread {:.0} cyc/s, {}-thread {:.0} cyc/s (x{:.2}, host parallelism {})",
            path.display(),
            rate_1,
            PARALLEL_THREADS,
            rate_n,
            rate_n / rate_1.max(1e-9),
            host
        ),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn bench_engine(c: &mut Criterion) {
    let scale = if quick_mode() {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(if quick_mode() { 1 } else { 3 });
    for threads in [1usize, PARALLEL_THREADS] {
        g.bench_function(format!("sw_{threads}_threads"), |bch| {
            bch.iter(|| run_workload(scale, threads).0)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);

fn main() {
    benches();
    let (scale, iters) = if quick_mode() {
        (Scale::Tiny, 1)
    } else {
        (Scale::Small, 3)
    };
    export_json(scale, iters);
}
