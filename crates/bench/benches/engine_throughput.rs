//! Engine throughput: simulated cycles per wall-clock second, single- vs
//! multi-threaded, across three differently shaped workloads, exported to
//! `results/bench_engine.json`.
//!
//! ```text
//! cargo bench -p ggpu-bench --bench engine_throughput
//! GGPU_BENCH_QUICK=1 cargo bench -p ggpu-bench --bench engine_throughput
//! ```
//!
//! This bench is a thin front end over the shared `measure` runner — the
//! same warmup/iteration discipline, probe workloads, and engine
//! configurations the `ggpu-bench` record store uses — kept for its
//! criterion integration and the legacy `bench_engine.json` export. The
//! CI perf gate reads the record store (`ggpu-bench run | cmp`), not
//! this file.
//!
//! Per workload the headline numbers are single-thread cycles/sec, the
//! cycles/sec ratio of `sim_threads = N` over `sim_threads = 1`, and how
//! many simulated cycles idle-cycle fast-forward elided. The JSON records
//! `host_parallelism` alongside: on a single-core host the engine falls
//! back to the serial loop at any requested thread count (no wall-clock
//! speedup is possible there), so read the ratio together with that field.

use criterion::{criterion_group, Criterion};
use ggpu_bench::measure::matrix::{ENGINE_WORKLOADS, PARALLEL_THREADS};
use ggpu_bench::measure::record::EngineAxes;
use ggpu_bench::measure::runner::run_engine_once;
use ggpu_core::Scale;
use ggpu_sim::json::JsonWriter;

fn quick_mode() -> bool {
    std::env::var_os("GGPU_BENCH_QUICK").is_some()
}

fn axes(threads: usize) -> EngineAxes {
    EngineAxes {
        sim_threads: threads,
        ..EngineAxes::base()
    }
}

/// Aggregate of `iters` runs at one thread count.
struct Measured {
    cycles: u64,
    skipped: u64,
    secs: f64,
    resolved: usize,
}

fn measure(scale: Scale, abbrev: &str, cdp: bool, threads: usize, iters: u32) -> Measured {
    let mut m = Measured {
        cycles: 0,
        skipped: 0,
        secs: 0.0,
        resolved: 1,
    };
    for _ in 0..iters {
        let s = run_engine_once(scale, abbrev, cdp, &axes(threads));
        m.cycles += s.cycles;
        m.skipped += s.skipped;
        m.secs += s.secs;
        m.resolved = s.resolved_threads;
    }
    m
}

fn export_json(scale: Scale, iters: u32) {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut w = JsonWriter::new();
    w.begin_obj()
        .str(
            "scale",
            match scale {
                Scale::Tiny => "tiny",
                Scale::Small => "small",
                Scale::Paper => "paper",
            },
        )
        .u64("iterations", iters as u64)
        .u64("host_parallelism", host as u64)
        .u64("sim_threads_parallel", PARALLEL_THREADS as u64)
        .begin_arr_key("workloads");
    let mut summary = String::new();
    for (abbrev, cdp) in ENGINE_WORKLOADS {
        let one = measure(scale, abbrev, cdp, 1, iters);
        let par = measure(scale, abbrev, cdp, PARALLEL_THREADS, iters);
        let rate_1 = one.cycles as f64 / one.secs.max(1e-9);
        let rate_n = par.cycles as f64 / par.secs.max(1e-9);
        let speedup = rate_n / rate_1.max(1e-9);
        w.begin_obj()
            .str("workload", abbrev)
            .bool("cdp", cdp)
            .u64("simulated_cycles_per_run", one.cycles / iters as u64)
            .u64("fast_forward_skipped_cycles", one.skipped / iters as u64)
            .u64("sim_threads_resolved", par.resolved as u64)
            .f64("cycles_per_sec_1_thread", rate_1)
            .f64("cycles_per_sec_n_threads", rate_n)
            .f64("speedup_n_over_1", speedup)
            .end_obj();
        summary.push_str(&format!(
            "  {abbrev}{}: 1-thread {rate_1:.0} cyc/s ({} of {} cycles skipped), \
             {PARALLEL_THREADS}-thread {rate_n:.0} cyc/s (x{speedup:.2})\n",
            if cdp { " (CDP)" } else { "" },
            one.skipped / iters as u64,
            one.cycles / iters as u64,
        ));
    }
    w.end_arr().end_obj();
    let doc = w.finish();

    let dir = ggpu_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("bench_engine.json");
    match std::fs::write(&path, &doc) {
        Ok(()) => println!(
            "[wrote {}] (host parallelism {host})\n{summary}",
            path.display()
        ),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn bench_engine(c: &mut Criterion) {
    let scale = if quick_mode() {
        Scale::Tiny
    } else {
        Scale::Small
    };
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(if quick_mode() { 1 } else { 3 });
    for (abbrev, cdp) in ENGINE_WORKLOADS {
        for threads in [1usize, PARALLEL_THREADS] {
            g.bench_function(
                format!("{}_{threads}_threads", abbrev.to_lowercase()),
                |bch| bch.iter(|| run_engine_once(scale, abbrev, cdp, &axes(threads)).cycles),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engine);

fn main() {
    benches();
    let (scale, iters) = if quick_mode() {
        (Scale::Tiny, 1)
    } else {
        (Scale::Small, 3)
    };
    export_json(scale, iters);
}
