//! Criterion benchmarks of the simulated-GPU benchmark suite itself: one
//! entry per paper benchmark (Tiny scale so the whole suite stays fast),
//! plus a simulator-throughput probe.

use criterion::{criterion_group, criterion_main, Criterion};
use ggpu_core::{all_benchmarks, GpuConfig, Scale};

fn small_cfg() -> GpuConfig {
    GpuConfig {
        n_sms: 8,
        ..GpuConfig::test_small()
    }
}

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("suite_tiny");
    g.sample_size(10);
    let config = small_cfg();
    for b in all_benchmarks(Scale::Tiny) {
        g.bench_function(b.abbrev(), |bch| {
            bch.iter(|| {
                let r = b.run(&config, false);
                assert!(r.verified);
                r.kernel_cycles
            })
        });
    }
    g.finish();
}

fn bench_cdp_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("suite_tiny_cdp");
    g.sample_size(10);
    let config = small_cfg();
    for b in all_benchmarks(Scale::Tiny) {
        if matches!(b.abbrev(), "SW" | "STAR" | "NvB") {
            g.bench_function(b.abbrev(), |bch| {
                bch.iter(|| {
                    let r = b.run(&config, true);
                    assert!(r.verified);
                    r.kernel_cycles
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_suite, bench_cdp_overhead);
criterion_main!(benches);
