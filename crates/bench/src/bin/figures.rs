//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [names...] [--scale tiny|small|paper]
//! figures all --scale small
//! ```

use ggpu_bench::figures;
use ggpu_kernels::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") | None => Scale::Small,
                    Some("paper") => Scale::Paper,
                    Some(other) => {
                        eprintln!("unknown scale {other}");
                        std::process::exit(2);
                    }
                };
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        eprintln!(
            "usage: figures [all|table1|table2|table3|fig2..fig22]... [--scale tiny|small|paper]"
        );
        eprintln!("experiments: {}", figures::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    for name in names {
        figures::run(&name, scale);
    }
}
