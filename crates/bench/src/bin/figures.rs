//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [names...] [--scale tiny|small|paper] [--threads N] [--json] [--trace]
//! figures all --scale small
//! figures fig2 --threads 4          # shard the cycle engine over 4 workers
//! figures --trace --scale tiny      # profiling run, Chrome-trace export only
//! ```
//!
//! `--threads N` (equivalently the `GGPU_SIM_THREADS` environment variable)
//! sets the engine's worker-thread count. Results are bit-identical for any
//! value — it is purely a wall-clock knob.
//!
//! Every table/figure is also written to `results/<name>.csv`
//! (override the directory with `GGPU_RESULTS_DIR`). `--json` and
//! `--trace` run the profiling mode — all benchmarks with interval
//! sampling and event tracing on — exporting `results/profile_<scale>.json`
//! and/or `results/trace_<scale>.json` (Perfetto-loadable).

use ggpu_bench::figures;
use ggpu_kernels::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut names = Vec::new();
    let mut json = false;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") | None => Scale::Small,
                    Some("paper") => Scale::Paper,
                    Some(other) => {
                        eprintln!("unknown scale {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                // Every GpuConfig in the harness is seeded from rtx3070(),
                // which reads GGPU_SIM_THREADS, so the flag just sets it.
                match it.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => std::env::set_var("GGPU_SIM_THREADS", n.to_string()),
                    _ => {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => json = true,
            "--trace" => trace = true,
            name => names.push(name.to_string()),
        }
    }
    if json || trace {
        figures::profile(scale, json, trace);
    }
    if names.is_empty() {
        if json || trace {
            return;
        }
        eprintln!(
            "usage: figures [all|table1|table2|table3|fig2..fig22|profile]... \
             [--scale tiny|small|paper] [--threads N] [--json] [--trace]"
        );
        eprintln!("experiments: {}", figures::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    for name in names {
        figures::run(&name, scale);
    }
}
