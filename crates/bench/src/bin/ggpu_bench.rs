//! `ggpu-bench` — the performance-measurement CLI.
//!
//! ```text
//! ggpu-bench run    [--quick] [--iters N] [--warmup N] [--filter S] [--no-append]
//! ggpu-bench report [--store FILE] [--filter S]
//! ggpu-bench cmp    [--baseline PATH] [--new FILE]
//! ggpu-bench cmp    BASELINE.jsonl NEW.jsonl
//! ```
//!
//! * `run` executes the declarative benchmark matrix (engine throughput
//!   over threads/fast-forward/stream-isolation plus the
//!   sustained-traffic serving sweep), measures every cell as warmup +
//!   N timed iterations, and **appends** one provenance-stamped JSONL
//!   record per measurement to `results/records/measurements.jsonl`.
//!   `--quick` is the CI profile (tiny scale, fewer iterations).
//! * `report` renders ranked comparison tables (throughput per engine
//!   configuration with ratios against the best, the serving load
//!   sweep) from the store. Output is deterministic for a given store.
//! * `cmp` diffs two record sets under per-cell noise bounds and exits
//!   non-zero on any regression — this is the CI perf gate. With
//!   `--baseline <dir>` (default `results/records`), the latest run in
//!   `measurements.jsonl` is compared against the committed
//!   `baseline.jsonl`; two positional files compare those instead.
//!
//! `GGPU_RESULTS_DIR` relocates `results/` for all subcommands.

use std::path::{Path, PathBuf};

use ggpu_bench::measure::{cmp, record, report, runner};
use ggpu_bench::records_dir;

fn usage() -> ! {
    eprintln!(
        "usage: ggpu-bench run    [--quick] [--iters N] [--warmup N] [--filter S] [--no-append]\n\
         \u{20}      ggpu-bench report [--store FILE] [--filter S]\n\
         \u{20}      ggpu-bench cmp    [--baseline PATH] [--new FILE] | cmp BASE.jsonl NEW.jsonl"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("ggpu-bench: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("cmp") => cmd_cmp(&args[1..]),
        _ => usage(),
    }
}

fn measurements_path() -> PathBuf {
    records_dir().join("measurements.jsonl")
}

fn cmd_run(args: &[String]) {
    let mut opts = runner::RunOptions::default();
    let mut append = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--iters" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => opts.iters = Some(n),
                _ => usage(),
            },
            "--warmup" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.warmup = Some(n),
                _ => usage(),
            },
            "--filter" => match it.next() {
                Some(s) if !s.is_empty() => opts.filter = Some(s.clone()),
                _ => usage(),
            },
            "--no-append" => append = false,
            _ => usage(),
        }
    }
    let records = runner::run_matrix(&opts);
    if records.is_empty() {
        fail("no matrix cells matched the filter");
    }
    let prov = &records[0].prov;
    println!(
        "run {}: {} records ({}, rustc {}, host parallelism {}{})",
        records[0].run_id,
        records.len(),
        &prov.git_commit[..prov.git_commit.len().min(12)],
        prov.rustc,
        prov.host_parallelism,
        if prov.git_dirty { ", DIRTY TREE" } else { "" },
    );
    print!("{}", report::render(&records));
    if append {
        let path = measurements_path();
        if let Err(e) = record::append(&path, &records) {
            fail(&format!("cannot append to {}: {e}", path.display()));
        }
        println!("[appended {} records to {}]", records.len(), path.display());
    } else {
        println!("[--no-append: store untouched]");
    }
}

fn load_or_fail(path: &Path) -> Vec<record::Record> {
    match record::load(path) {
        Ok(r) if r.is_empty() => fail(&format!("{} holds no records", path.display())),
        Ok(r) => r,
        Err(e) => fail(&e),
    }
}

fn cmd_report(args: &[String]) {
    let mut store = measurements_path();
    let mut filter: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => match it.next() {
                Some(p) => store = PathBuf::from(p),
                None => usage(),
            },
            "--filter" => match it.next() {
                Some(s) if !s.is_empty() => filter = Some(s.clone()),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let mut records = load_or_fail(&store);
    if let Some(needle) = &filter {
        records.retain(|r| r.id.contains(needle.as_str()));
    }
    print!("{}", report::render(&records));
}

fn cmd_cmp(args: &[String]) {
    let mut baseline_opt: Option<PathBuf> = None;
    let mut new_opt: Option<PathBuf> = None;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_opt = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--new" => match it.next() {
                Some(p) => new_opt = Some(PathBuf::from(p)),
                None => usage(),
            },
            p if !p.starts_with('-') => positional.push(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let (baseline, new) = match (positional.len(), baseline_opt, new_opt) {
        // Two explicit record sets.
        (2, None, None) => (load_or_fail(&positional[0]), load_or_fail(&positional[1])),
        // Store mode: committed baseline vs the latest appended run.
        (0, baseline, new) => {
            let base_path = baseline.unwrap_or_else(records_dir);
            let base_file = if base_path.is_dir() {
                base_path.join("baseline.jsonl")
            } else {
                base_path
            };
            let new_file = new.unwrap_or_else(measurements_path);
            let latest = record::latest_run(&load_or_fail(&new_file));
            println!(
                "comparing latest run `{}` in {} against {}",
                latest.first().map(|r| r.run_id.as_str()).unwrap_or("?"),
                new_file.display(),
                base_file.display()
            );
            (load_or_fail(&base_file), latest)
        }
        _ => usage(),
    };
    let diff = cmp::compare(&baseline, &new);
    print!("{}", diff.render());
    if diff.failures() > 0 {
        eprintln!(
            "ggpu-bench cmp: {} regression(s) beyond noise bounds",
            diff.failures()
        );
        std::process::exit(1);
    }
}
