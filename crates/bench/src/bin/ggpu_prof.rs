//! `ggpu-prof` — the attribution profiler CLI.
//!
//! Resolves the simulator's counters along two axes and renders both:
//!
//! * **Code axis** — per-PC counters (issues, stall cycles, L1 traffic,
//!   memory divergence, replays) symbolicated into an annotated listing
//!   per kernel, nvprof-style.
//! * **Space axis** — per-SM, per-L2-slice, per-DRAM-channel/bank and
//!   per-network-endpoint counters, rendered as text heatmaps.
//!
//! ```text
//! ggpu-prof <WORKLOAD> [--scale tiny|small|paper] [--threads N] [--cdp] [--top N]
//! ggpu-prof SW --scale tiny            # annotated listing + heatmaps
//! ggpu-prof diff a.json b.json [--limit N]
//! ```
//!
//! The run mode executes one suite workload with per-PC attribution on,
//! prints the annotated listings and unit heatmaps, and writes
//! `results/prof_<workload>.json` (the full [`ProfileReport`] plus run
//! metadata) and heatmap CSVs (`prof_<workload>_sm.csv`,
//! `prof_<workload>_mem.csv`, `prof_<workload>_banks.csv`). Override the
//! output directory with `GGPU_RESULTS_DIR`.
//!
//! The diff mode compares any two JSON exports leaf-by-leaf and reports
//! numeric counter deltas, largest first — for before/after runs of the
//! same workload, or any two files the suite emits.

use std::collections::HashMap;
use std::path::PathBuf;

use ggpu_core::json::{Json, JsonWriter};
use ggpu_core::{
    benchmark, render_table, GpuConfig, KernelPcProfile, PcProfile, ProfileReport, Scale,
    StallReason, UnitProfile, BENCHMARKS,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        std::process::exit(diff_main(&args[1..]));
    }
    std::process::exit(run_main(&args));
}

fn usage() -> ! {
    eprintln!(
        "usage: ggpu-prof <WORKLOAD> [--scale tiny|small|paper] [--threads N] [--cdp] [--top N]\n\
         \u{20}      ggpu-prof diff <a.json> <b.json> [--limit N]\n\
         workloads: {}",
        BENCHMARKS.join(" ")
    );
    std::process::exit(2);
}

// ---- run mode --------------------------------------------------------------

fn run_main(args: &[String]) -> i32 {
    let mut scale = Scale::Tiny;
    let mut workload: Option<String> = None;
    let mut cdp = false;
    let mut top = 8usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    _ => usage(),
                }
            }
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                // Every GpuConfig is seeded from rtx3070(), which reads
                // GGPU_SIM_THREADS, so the flag just sets it.
                Some(n) if n >= 1 => std::env::set_var("GGPU_SIM_THREADS", n.to_string()),
                _ => usage(),
            },
            "--cdp" => cdp = true,
            "--top" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => usage(),
            },
            w if workload.is_none() && !w.starts_with('-') => workload = Some(w.to_string()),
            _ => usage(),
        }
    }
    let Some(workload) = workload else { usage() };
    let Some(abbrev) = BENCHMARKS
        .iter()
        .find(|b| b.eq_ignore_ascii_case(&workload))
    else {
        eprintln!(
            "unknown workload `{workload}`; expected one of: {}",
            BENCHMARKS.join(" ")
        );
        return 2;
    };

    let mut config = GpuConfig::rtx3070().with_attribution(true);
    config.sample_interval_cycles = 20_000;
    let bench = benchmark(scale, abbrev).expect("abbrev came from BENCHMARKS");
    let r = bench.run(&config, cdp);
    let profile = *r
        .profile
        .expect("attribution enables profiling, so a profile is always present");

    let tag = if cdp {
        format!("{}_cdp", abbrev.to_lowercase())
    } else {
        abbrev.to_lowercase()
    };
    println!(
        "ggpu-prof: {} ({}), cdp={}, sim_threads={}\n{}\n",
        abbrev,
        scale_name(scale),
        cdp,
        r.sim_threads,
        r.detail
    );
    println!(
        "cycles={}  IPC={:.3}  verified={}\n",
        r.kernel_cycles,
        r.stats.ipc(),
        r.verified
    );

    let pc = profile.pc.as_ref().expect("attribution was on");
    for k in &pc.kernels {
        print_listing(k, top);
    }
    print_unattributed(pc);
    print_sm_heatmap(&profile.units);
    print_mem_heatmap(&profile.units);

    // Truncated observability is never silent (and ggpu-prof itself keeps
    // tracing off, so only sample drops can occur here).
    if profile.dropped_total() > 0 {
        println!(
            "WARNING: profile truncated: {} interval samples and {} trace events dropped",
            profile.samples_dropped, profile.events_dropped
        );
    } else {
        println!("profile complete: 0 samples dropped, 0 events dropped");
    }

    write_outputs(&tag, abbrev, scale, cdp, &r.stats, r.sim_threads, &profile);
    if !r.verified {
        eprintln!("WARNING: {abbrev} failed functional validation");
        return 1;
    }
    0
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Annotated listing for one kernel: every PC with its counters, the
/// hottest `top` PCs flagged by stall share.
fn print_listing(k: &KernelPcProfile, top: usize) {
    let issues = k.total_issues();
    if issues == 0 {
        println!("== kernel {} `{}`: no activity\n", k.kernel_id, k.kernel);
        return;
    }
    let total_stalls: u64 = k.rows.iter().map(|r| r.counters.stalls.total()).sum();
    let mut hot: Vec<usize> = (0..k.rows.len()).collect();
    hot.sort_by_key(|&i| std::cmp::Reverse(k.rows[i].counters.stalls.total()));
    let hot: Vec<usize> = hot
        .into_iter()
        .take(top)
        .filter(|&i| k.rows[i].counters.stalls.total() > 0)
        .collect();
    let rows: Vec<Vec<String>> = k
        .rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let c = &r.counters;
            let stall = c.stalls.total();
            vec![
                if hot.contains(&i) {
                    "*".to_string()
                } else {
                    String::new()
                },
                format!("{}", r.pc),
                r.instr.clone(),
                format!("{}", c.issues),
                format!(
                    "{:.1}",
                    if c.issues == 0 {
                        0.0
                    } else {
                        c.lanes as f64 / c.issues as f64
                    }
                ),
                format!("{}", stall),
                top_stall(c.stalls),
                format!("{}", c.l1_accesses),
                format!("{:.1}", 100.0 * c.l1_miss_rate()),
                format!("{:.2}", c.avg_divergence()),
                format!("{}", c.replays),
                format!("{}", c.offchip_txns),
            ]
        })
        .collect();
    println!(
        "== kernel {} `{}`: {} issues, {} stall cycles (top {} PCs flagged *)",
        k.kernel_id,
        k.kernel,
        issues,
        total_stalls,
        hot.len()
    );
    println!(
        "{}",
        render_table(
            &[
                "",
                "pc",
                "instr",
                "issues",
                "lanes",
                "stall_cyc",
                "top_stall",
                "l1_acc",
                "l1_miss%",
                "div",
                "replays",
                "offchip",
            ],
            &rows
        )
    );
}

fn top_stall(s: ggpu_core::StallBreakdown) -> String {
    StallReason::ALL
        .iter()
        .max_by_key(|&&r| s.get(r))
        .filter(|&&r| s.get(r) > 0)
        .map_or_else(String::new, |r| r.name().to_string())
}

fn print_unattributed(pc: &PcProfile) {
    let u = &pc.unattributed;
    if u.total() == 0 {
        return;
    }
    let parts: Vec<String> = StallReason::ALL
        .iter()
        .filter(|&&r| u.get(r) > 0)
        .map(|&r| format!("{}={}", r.name(), u.get(r)))
        .collect();
    println!(
        "unattributed stalls (idle SMs, launch overhead, dead warps): {} cycles ({})\n",
        u.total(),
        parts.join(", ")
    );
}

/// Proportional text bar for heatmaps.
fn bar(value: f64, max: f64) -> String {
    if max <= 0.0 {
        return String::new();
    }
    "#".repeat(((value / max) * 20.0).round() as usize)
}

fn print_sm_heatmap(units: &UnitProfile) {
    let max = units.sms.iter().map(|u| u.stats.issued).max().unwrap_or(0) as f64;
    let rows: Vec<Vec<String>> = units
        .sms
        .iter()
        .map(|u| {
            let ipc = if u.stats.cycles == 0 {
                0.0
            } else {
                u.stats.issued as f64 / u.stats.cycles as f64
            };
            vec![
                format!("{}", u.sm),
                format!("{}", u.stats.issued),
                format!("{:.3}", ipc),
                format!("{:.1}", u.stats.avg_active_lanes()),
                format!(
                    "{:.1}",
                    100.0 * u.stats.stalls.fraction(StallReason::MemLatency)
                ),
                format!("{:.1}", 100.0 * u.l1.miss_rate()),
                format!("{}", u.req_injected),
                format!("{}", u.rep_delivered),
                bar(u.stats.issued as f64, max),
            ]
        })
        .collect();
    println!("== per-SM heatmap (issued warp-instructions)");
    println!(
        "{}",
        render_table(
            &[
                "sm",
                "issued",
                "ipc",
                "lanes",
                "mem_stall%",
                "l1_miss%",
                "req_pkts",
                "rep_pkts",
                "load"
            ],
            &rows
        )
    );
}

fn print_mem_heatmap(units: &UnitProfile) {
    let max = units
        .partitions
        .iter()
        .map(|p| p.dram.requests)
        .max()
        .unwrap_or(0) as f64;
    let rows: Vec<Vec<String>> = units
        .partitions
        .iter()
        .map(|p| {
            let row_hit = if p.dram.requests == 0 {
                0.0
            } else {
                100.0 * p.dram.row_hits as f64 / p.dram.requests as f64
            };
            let banks_hot = p.banks.iter().filter(|&&(req, _)| req > 0).count();
            vec![
                format!("{}", p.partition),
                format!("{}", p.l2.accesses()),
                format!("{:.1}", 100.0 * p.l2.miss_rate()),
                format!("{}", p.dram.requests),
                format!("{:.1}", row_hit),
                format!("{}/{}", banks_hot, p.banks.len()),
                format!("{}", p.req_delivered),
                format!("{}", p.rep_injected),
                bar(p.dram.requests as f64, max),
            ]
        })
        .collect();
    println!("== per-partition heatmap (L2 slice + DRAM channel)");
    println!(
        "{}",
        render_table(
            &[
                "part", "l2_acc", "l2_miss%", "dram_req", "row_hit%", "banks", "req_pkts",
                "rep_pkts", "load"
            ],
            &rows
        )
    );
}

// ---- exports ---------------------------------------------------------------

/// Directory machine-readable outputs land in (`results/` unless
/// `GGPU_RESULTS_DIR` overrides it) — the shared workspace resolution.
fn results_dir() -> PathBuf {
    ggpu_bench::results_dir()
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write a JSON document after validating it parses, so every emitted file
/// is machine-readable by construction.
fn write_json_doc(name: &str, doc: &str) {
    if let Err(e) = Json::parse(doc) {
        eprintln!("warning: {name} JSON failed validation, not writing: {e}");
        return;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, doc) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn write_outputs(
    tag: &str,
    abbrev: &str,
    scale: Scale,
    cdp: bool,
    stats: &ggpu_core::RunStats,
    sim_threads: usize,
    profile: &ProfileReport,
) {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.str("workload", abbrev)
        .str("scale", scale_name(scale))
        .bool("cdp", cdp)
        .u64("sim_threads", sim_threads as u64)
        .f64("ipc", stats.ipc())
        .raw("profile", &profile.to_json());
    w.end_obj();
    write_json_doc(&format!("prof_{tag}"), &w.finish());

    let sm_rows: Vec<Vec<String>> = profile
        .units
        .sms
        .iter()
        .map(|u| {
            vec![
                format!("{}", u.sm),
                format!("{}", u.stats.cycles),
                format!("{}", u.stats.issued),
                format!("{}", u.stats.thread_instrs),
                format!("{}", u.stats.stalls.total()),
                format!("{}", u.stats.offchip_txns),
                format!("{}", u.l1.accesses()),
                format!("{}", u.l1.hits()),
                format!("{}", u.req_injected),
                format!("{}", u.rep_delivered),
            ]
        })
        .collect();
    write_csv(
        &format!("prof_{tag}_sm"),
        &[
            "sm",
            "cycles",
            "issued",
            "thread_instrs",
            "stall_cycles",
            "offchip_txns",
            "l1_accesses",
            "l1_hits",
            "req_injected",
            "rep_delivered",
        ],
        &sm_rows,
    );

    let mem_rows: Vec<Vec<String>> = profile
        .units
        .partitions
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.partition),
                format!("{}", p.l2.accesses()),
                format!("{}", p.l2.hits()),
                format!("{}", p.dram.requests),
                format!("{}", p.dram.row_hits),
                format!("{}", p.dram.data_cycles),
                format!("{}", p.req_delivered),
                format!("{}", p.rep_injected),
            ]
        })
        .collect();
    write_csv(
        &format!("prof_{tag}_mem"),
        &[
            "partition",
            "l2_accesses",
            "l2_hits",
            "dram_requests",
            "dram_row_hits",
            "dram_data_cycles",
            "req_delivered",
            "rep_injected",
        ],
        &mem_rows,
    );

    let bank_rows: Vec<Vec<String>> = profile
        .units
        .partitions
        .iter()
        .flat_map(|p| {
            p.banks.iter().enumerate().map(|(b, &(req, hits))| {
                vec![
                    format!("{}", p.partition),
                    format!("{b}"),
                    format!("{req}"),
                    format!("{hits}"),
                ]
            })
        })
        .collect();
    write_csv(
        &format!("prof_{tag}_banks"),
        &["partition", "bank", "requests", "row_hits"],
        &bank_rows,
    );
}

// ---- diff mode -------------------------------------------------------------

fn diff_main(args: &[String]) -> i32 {
    let mut paths = Vec::new();
    let mut limit = 40usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--limit" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => limit = n,
                _ => usage(),
            },
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let load = |p: &str| -> Json {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{p} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (load(&paths[0]), load(&paths[1]));
    let (mut la, mut lb) = (Vec::new(), Vec::new());
    collect_leaves(&a, String::new(), &mut la);
    collect_leaves(&b, String::new(), &mut lb);
    let ma: HashMap<&str, f64> = la.iter().map(|(p, v)| (p.as_str(), *v)).collect();
    let mb: HashMap<&str, f64> = lb.iter().map(|(p, v)| (p.as_str(), *v)).collect();

    // Changed leaves present in both documents, largest absolute delta first.
    let mut changed: Vec<(&str, f64, f64)> = la
        .iter()
        .filter_map(|(p, va)| {
            let vb = *mb.get(p.as_str())?;
            (vb != *va).then_some((p.as_str(), *va, vb))
        })
        .collect();
    changed.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .partial_cmp(&(x.2 - x.1).abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.0.cmp(y.0))
    });
    let only_a = la
        .iter()
        .filter(|(p, _)| !mb.contains_key(p.as_str()))
        .count();
    let only_b = lb
        .iter()
        .filter(|(p, _)| !ma.contains_key(p.as_str()))
        .count();

    println!(
        "diff {} vs {}: {} numeric leaves compared, {} changed ({} only in a, {} only in b)",
        paths[0],
        paths[1],
        la.len().min(lb.len()),
        changed.len(),
        only_a,
        only_b
    );
    if changed.is_empty() {
        println!("no counter changes.");
        return 0;
    }
    let rows: Vec<Vec<String>> = changed
        .iter()
        .take(limit)
        .map(|&(p, va, vb)| {
            let delta = vb - va;
            let rel = if va != 0.0 {
                format!("{:+.2}%", 100.0 * delta / va)
            } else {
                "from 0".to_string()
            };
            vec![
                p.to_string(),
                trim_num(va),
                trim_num(vb),
                trim_num(delta),
                rel,
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["counter", "a", "b", "delta", "rel"], &rows)
    );
    if changed.len() > limit {
        println!(
            "... and {} more (raise with --limit)",
            changed.len() - limit
        );
    }
    0
}

/// Collect every numeric leaf with a `a.b[3].c`-style path.
fn collect_leaves(v: &Json, path: String, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((path, *n)),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                collect_leaves(item, format!("{path}[{i}]"), out);
            }
        }
        Json::Obj(fields) => {
            for (k, item) in fields {
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                collect_leaves(item, child, out);
            }
        }
        _ => {}
    }
}

/// Render a number without a trailing `.0` for integers.
fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}
