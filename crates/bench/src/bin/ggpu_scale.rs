//! `ggpu-scale` — per-workload multi-GPU scaling curves.
//!
//! Runs each workload sharded across 1, 2, and 4 simulated devices of a
//! [`ggpu_sim::GpuNode`] and measures how it scales. Inputs are staged on
//! device 0 over PCIe, scattered to peer devices over the inter-GPU
//! fabric ([`ggpu_sim::GpuNode::try_p2p_copy`]), computed shard-parallel,
//! and gathered back in device-index order — so the merged result bytes
//! are identical at every device count, which this binary asserts.
//!
//! ```text
//! ggpu-scale [--jobs N] [--seed S] [--devices 1,2,4] [--trace] [--tag NAME]
//! ```
//!
//! Workloads span the two scaling regimes the fabric model exposes:
//!
//! * `sw` — Smith–Waterman pairwise scoring at a long length bucket:
//!   heavy compute per transferred byte (compute-bound).
//! * `fm` — FM-index read mapping: the full reference (text + occ + SA)
//!   must be replicated to every peer device before any read maps, so
//!   fabric cycles grow with device count while per-device compute
//!   shrinks (fabric-bound).
//! * `phmm` — Pair-HMM forward likelihoods (compute-bound).
//!
//! Outputs land in `results/` (override with `GGPU_RESULTS_DIR`):
//! `scaling_curves.json` and `scaling_curves.csv`, one point per
//! workload × device count, each carrying the speedup over one device
//! and the fabric fraction that classifies the workload as
//! `fabric_bound` or `compute_bound`. With `--trace`, the node Chrome
//! trace of the widest run is written as `scaling_trace.json` (one pid
//! per device).
//!
//! The binary exits non-zero if sharded results diverge from the
//! single-device run or if per-device counters fail to telescope to the
//! node totals.

use std::path::PathBuf;

use ggpu_core::json::{Json, JsonWriter};
use ggpu_core::render_table;
use ggpu_genomics::random_genome;
use ggpu_isa::{LaunchDims, Program};
use ggpu_kernels::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode};
use ggpu_kernels::nvb::{build_fm_search_kernel, FmTables};
use ggpu_kernels::pairhmm::{build_pairhmm_kernel, phred_const_data, PairHmmKernelCfg, RowStorage};
use ggpu_kernels::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use ggpu_sim::{shard_ranges, DevicePtr, GpuConfig, GpuNode, NodeConfig, RunStats};
use rand::{Rng, SeedableRng};

const SW_BUCKET: u32 = 48;
/// Threads per CTA, kept deliberately modest (with at most 4 CTAs per
/// launch) so a device's shard is covered by grid-stride rounds — the
/// scaling signal is rounds shrinking as devices are added, not idle
/// lanes filling up.
const SW_TPC: u32 = 16;
const FM_GENOME_LEN: usize = 8192;
const FM_READ_LEN: u32 = 24;
const FM_TPC: u32 = 32;
const PHMM_READ: u32 = 12;
const PHMM_HAP: u32 = 16;
const PHMM_TPC: u32 = 16;
/// Pad codes for pairwise lanes (match the serving encoder: distinct
/// values outside the 0..4 base alphabet so pad columns never align).
const PAD_Q: u8 = 4;
const PAD_T: u8 = 5;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Sw,
    Fm,
    PairHmm,
}

impl Workload {
    fn tag(self) -> &'static str {
        match self {
            Workload::Sw => "sw",
            Workload::Fm => "fm",
            Workload::PairHmm => "phmm",
        }
    }
}

/// One measured (workload, device-count) point.
struct Point {
    devices: usize,
    node_cycles: u64,
    kernel_cycles: u64,
    p2p_cycles: u64,
    p2p_bytes: u64,
    fabric_packets: u64,
    per_device_cycles: Vec<u64>,
    /// Raw result words, merged in device-index order.
    out: Vec<u8>,
}

impl Point {
    /// Kernel cycles averaged over devices — the parallel compute time
    /// on the critical path (per-device kernels overlap; fabric
    /// transfers serialize against the staging device).
    fn parallel_kernel_cycles(&self) -> u64 {
        self.kernel_cycles / self.devices.max(1) as u64
    }

    /// Share of critical-path cycles spent in fabric transfers.
    fn fabric_frac(&self) -> f64 {
        let busy = self.p2p_cycles + self.parallel_kernel_cycles();
        if busy == 0 {
            0.0
        } else {
            self.p2p_cycles as f64 / busy as f64
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: ggpu-scale [--jobs N] [--seed S] [--devices 1,2,4] [--trace] [--tag NAME]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 256usize;
    let mut seed = 42u64;
    let mut device_counts = vec![1usize, 2, 4];
    let mut trace = false;
    let mut tag = String::from("curves");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                _ => usage(),
            },
            "--devices" => match it.next() {
                Some(list) => {
                    let parsed: Option<Vec<usize>> =
                        list.split(',').map(|s| s.parse().ok()).collect();
                    match parsed {
                        Some(v) if !v.is_empty() && v.iter().all(|&n| n >= 1) => device_counts = v,
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--trace" => trace = true,
            "--tag" => match it.next() {
                Some(t) if !t.is_empty() && !t.starts_with('-') => tag = t.clone(),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    device_counts.sort_unstable();
    device_counts.dedup();
    let max_devices = *device_counts.last().expect("at least one device count");
    if jobs < max_devices {
        eprintln!("--jobs {jobs} must be >= the widest device count {max_devices}");
        std::process::exit(2);
    }

    println!("ggpu-scale: jobs={jobs} seed={seed} devices={device_counts:?} trace={trace}\n");

    let workloads = [Workload::Sw, Workload::Fm, Workload::PairHmm];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json = JsonWriter::new();
    json.begin_obj();
    json.u64("seed", seed).u64("jobs", jobs as u64);
    json.begin_arr_key("workloads");
    let mut node_trace: Option<String> = None;
    for w in workloads {
        let mut points: Vec<Point> = Vec::new();
        for &n in &device_counts {
            let want_trace = trace && w == Workload::Sw && n == max_devices;
            let (point, tr) = run_workload(w, n, jobs, seed, want_trace);
            if let Some(t) = tr {
                node_trace = Some(t);
            }
            points.push(point);
        }
        // Sharding must not change the answer: the merged result bytes of
        // every multi-device run match the single-device run exactly.
        let base = &points[0];
        for p in &points[1..] {
            if p.out != base.out {
                eprintln!(
                    "INVARIANT VIOLATED: {} results at {} devices diverge from {} devices",
                    w.tag(),
                    p.devices,
                    base.devices
                );
                std::process::exit(1);
            }
        }
        let widest = points.last().expect("at least one point");
        let class = if widest.p2p_cycles > widest.parallel_kernel_cycles() {
            "fabric_bound"
        } else {
            "compute_bound"
        };
        json.begin_obj();
        json.str("workload", w.tag()).str("class", class);
        json.begin_arr_key("points");
        for p in &points {
            let speedup = base.node_cycles as f64 / p.node_cycles.max(1) as f64;
            let efficiency = speedup / p.devices as f64;
            rows.push(vec![
                w.tag().to_string(),
                p.devices.to_string(),
                p.node_cycles.to_string(),
                format!("{speedup:.3}"),
                format!("{efficiency:.3}"),
                p.kernel_cycles.to_string(),
                p.p2p_cycles.to_string(),
                p.p2p_bytes.to_string(),
                p.fabric_packets.to_string(),
                format!("{:.3}", p.fabric_frac()),
                class.to_string(),
            ]);
            json.begin_obj();
            json.u64("devices", p.devices as u64)
                .u64("node_cycles", p.node_cycles)
                .f64("speedup", speedup)
                .f64("efficiency", efficiency)
                .u64("kernel_cycles", p.kernel_cycles)
                .u64("p2p_cycles", p.p2p_cycles)
                .u64("p2p_bytes", p.p2p_bytes)
                .u64("fabric_packets", p.fabric_packets)
                .f64("fabric_frac", p.fabric_frac());
            json.begin_arr_key("per_device_cycles");
            for &c in &p.per_device_cycles {
                json.elem_u64(c);
            }
            json.end_arr();
            json.end_obj();
        }
        json.end_arr();
        json.end_obj();
    }
    json.end_arr();
    json.end_obj();

    const HEADERS: [&str; 11] = [
        "workload",
        "devices",
        "node_cycles",
        "speedup",
        "efficiency",
        "kernel_cycles",
        "p2p_cycles",
        "p2p_bytes",
        "fabric_packets",
        "fabric_frac",
        "class",
    ];
    println!("== scaling curves");
    println!("{}", render_table(&HEADERS, &rows));
    write_json_doc(&format!("scaling_{tag}"), &json.finish());
    write_csv(&format!("scaling_{tag}"), &HEADERS, &rows);
    if let Some(t) = node_trace {
        write_json_doc("scaling_trace", &t);
    }
    println!("invariants: sharded results match single-device, per-device counters telescope");
}

/// Largest power-of-two thread count (≤ `cap`) whose shared rows fit.
fn pick_tpc(row_bytes: u32, smem_bytes: u32, cap: u32) -> u32 {
    let mut tpc = cap.max(1).next_power_of_two();
    while tpc > 1 && row_bytes.saturating_mul(tpc) > smem_bytes {
        tpc /= 2;
    }
    tpc
}

/// Grid shape for an `n`-job shard: at most one CTA per test-device SM,
/// grid-stride loops cover the rest.
fn dims_for(n: u64, tpc: u32) -> LaunchDims {
    let ctas = n.div_ceil(tpc as u64).clamp(1, 4) as u32;
    LaunchDims::linear(ctas, tpc)
}

/// Pack `src` into a `stride`-sized lane padded with `pad`.
fn pack(dst: &mut Vec<u8>, src: &[u8], stride: usize, pad: u8) {
    dst.extend_from_slice(src);
    dst.resize(dst.len() + (stride - src.len()), pad);
}

/// Run one workload sharded over `n_devices` and measure the node.
/// Returns the point plus the node Chrome trace when requested.
fn run_workload(
    w: Workload,
    n_devices: usize,
    jobs: usize,
    seed: u64,
    want_trace: bool,
) -> (Point, Option<String>) {
    let mut gcfg = GpuConfig::test_small();
    gcfg.trace = want_trace;
    let smem = gcfg.sm.smem_bytes;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (w.tag().len() as u64) << 17);

    let mut program = Program::new();
    let out = match w {
        Workload::Sw => {
            let tpc = pick_tpc(2 * (SW_BUCKET + 1) * 8, smem, SW_TPC);
            let kcfg = DpKernelCfg {
                mode: DpMode::Local,
                max_len: SW_BUCKET,
                rows_in_smem: true,
                threads_per_cta: tpc,
                matches: MATCH,
                mismatch: MISMATCH,
                open: GAP_OPEN,
                extend: GAP_EXTEND,
                shared_target: false,
                subst_matrix: None,
            };
            let kernel = program.add(build_dp_kernel("scale-sw", &kcfg));
            // Long pairs: heavy compute per transferred byte.
            let stride = SW_BUCKET as usize;
            let mut q = Vec::with_capacity(jobs * stride);
            let mut t = Vec::with_capacity(jobs * stride);
            let mut lens = Vec::with_capacity(jobs * 4);
            for _ in 0..jobs {
                let ql = rng.gen_range(stride / 2..=stride);
                let tl = rng.gen_range(stride / 2..=stride);
                let qs: Vec<u8> = (0..ql).map(|_| rng.gen_range(0..4u8)).collect();
                let ts: Vec<u8> = (0..tl).map(|_| rng.gen_range(0..4u8)).collect();
                pack(&mut q, &qs, stride, PAD_Q);
                pack(&mut t, &ts, stride, PAD_T);
                lens.extend_from_slice(&SW_BUCKET.to_le_bytes());
            }
            let mut node = GpuNode::new(program, NodeConfig::new(n_devices, gcfg));
            for d in 0..n_devices {
                node.device_mut(d)
                    .bind_constants(kernel, scoring_const_data(&kcfg));
            }
            run_sharded(
                &mut node,
                jobs,
                &[(&q, stride), (&t, stride), (&lens, 4)],
                false,
                |_, slabs, out, nd, dims| {
                    [
                        slabs[0].0,
                        slabs[1].0,
                        out.0,
                        nd,
                        0,
                        dims.total_threads(),
                        slabs[2].0,
                        0,
                        0,
                    ]
                    .to_vec()
                },
                kernel,
                tpc,
            )
        }
        Workload::Fm => {
            let kernel = program.add(build_fm_search_kernel("scale-fm"));
            let genome = random_genome(FM_GENOME_LEN, &mut rng).codes().to_vec();
            let tables = FmTables::build(&genome);
            let occ_bytes: Vec<u8> = tables.occ.iter().flat_map(|v| v.to_le_bytes()).collect();
            let sa_bytes: Vec<u8> = tables.sa.iter().flat_map(|v| v.to_le_bytes()).collect();
            let mut reads = Vec::with_capacity(jobs * FM_READ_LEN as usize);
            for _ in 0..jobs {
                let s = rng.gen_range(0..FM_GENOME_LEN - FM_READ_LEN as usize);
                reads.extend_from_slice(&genome[s..s + FM_READ_LEN as usize]);
            }
            let mut node = GpuNode::new(program, NodeConfig::new(n_devices, gcfg));
            // Replicate the reference: PCIe to device 0, fabric to peers.
            // This is the broadcast cost that makes FM fabric-bound.
            let mut tabs = Vec::new();
            for d in 0..n_devices {
                let dev = node.device_mut(d);
                dev.bind_constants(kernel, tables.const_data());
                let text = dev.try_malloc(tables.text.len() as u64).expect("alloc");
                let occ = dev.try_malloc(occ_bytes.len() as u64).expect("alloc");
                let sa = dev.try_malloc(sa_bytes.len() as u64).expect("alloc");
                tabs.push((text, occ, sa));
            }
            let dev0 = node.device_mut(0);
            dev0.memcpy_h2d(tabs[0].0, &tables.text);
            dev0.memcpy_h2d(tabs[0].1, &occ_bytes);
            dev0.memcpy_h2d(tabs[0].2, &sa_bytes);
            for d in 1..n_devices {
                node.p2p_copy(0, tabs[0].0, d, tabs[d].0, tables.text.len());
                node.p2p_copy(0, tabs[0].1, d, tabs[d].1, occ_bytes.len());
                node.p2p_copy(0, tabs[0].2, d, tabs[d].2, sa_bytes.len());
            }
            node.sync_all();
            run_sharded(
                &mut node,
                jobs,
                &[(&reads, FM_READ_LEN as usize)],
                true,
                |d, slabs, out, nd, dims| {
                    let (text, occ, sa) = tabs[d];
                    [
                        slabs[0].0,
                        occ.0,
                        out.0,
                        nd,
                        0,
                        dims.total_threads(),
                        sa.0,
                        text.0,
                        FM_READ_LEN as u64,
                        0,
                    ]
                    .to_vec()
                },
                kernel,
                FM_TPC,
            )
        }
        Workload::PairHmm => {
            let cfg = PairHmmKernelCfg {
                read_len: PHMM_READ,
                hap_len: PHMM_HAP,
                rows: RowStorage::Shared,
                threads_per_cta: pick_tpc(6 * (PHMM_HAP + 1) * 8, smem, PHMM_TPC),
            };
            let tpc = cfg.threads_per_cta;
            let kernel = program.add(build_pairhmm_kernel("scale-phmm", &cfg));
            let mut reads = Vec::new();
            let mut quals = Vec::new();
            let mut haps = Vec::new();
            for _ in 0..jobs {
                let hap: Vec<u8> = (0..PHMM_HAP).map(|_| rng.gen_range(0..4u8)).collect();
                let s = rng.gen_range(0..=(PHMM_HAP - PHMM_READ) as usize);
                reads.extend_from_slice(&hap[s..s + PHMM_READ as usize]);
                quals.extend((0..PHMM_READ).map(|_| rng.gen_range(15..45u8)));
                haps.extend_from_slice(&hap);
            }
            let mut node = GpuNode::new(program, NodeConfig::new(n_devices, gcfg));
            for d in 0..n_devices {
                node.device_mut(d)
                    .bind_constants(kernel, phred_const_data());
            }
            run_sharded(
                &mut node,
                jobs,
                &[
                    (&reads, PHMM_READ as usize),
                    (&quals, PHMM_READ as usize),
                    (&haps, PHMM_HAP as usize),
                ],
                false,
                |_, slabs, out, nd, dims| {
                    [
                        slabs[0].0,
                        slabs[2].0,
                        out.0,
                        nd,
                        0,
                        dims.total_threads(),
                        slabs[1].0,
                        0,
                        0,
                    ]
                    .to_vec()
                },
                kernel,
                tpc,
            )
        }
    };
    out
}

/// Scatter → compute → gather one workload across the node's devices.
///
/// `slabs` is the full per-job input data as `(bytes, per_job_stride)`;
/// each shard is a contiguous byte range of every slab. `params` builds
/// the launch parameter words from the shard's device-local slab
/// pointers, its output pointer, its job count, and its dims. Results
/// are merged in device-index order and read back from device 0.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    node: &mut GpuNode,
    jobs: usize,
    slabs: &[(&Vec<u8>, usize)],
    zero_out: bool,
    params: impl Fn(usize, &[DevicePtr], DevicePtr, u64, LaunchDims) -> Vec<u64>,
    kernel: ggpu_isa::KernelId,
    tpc: u32,
) -> (Point, Option<String>) {
    let n_devices = node.n_devices();
    let shards = shard_ranges(jobs, n_devices);

    // Stage the full input on device 0 and allocate the merged output.
    let dev0_slabs: Vec<DevicePtr> = slabs
        .iter()
        .map(|(bytes, _)| {
            let p = node
                .device_mut(0)
                .try_malloc(bytes.len() as u64)
                .expect("alloc");
            node.device_mut(0).memcpy_h2d(p, bytes);
            p
        })
        .collect();
    let out0 = node
        .device_mut(0)
        .try_malloc(jobs as u64 * 8)
        .expect("alloc");
    if zero_out {
        node.device_mut(0).memcpy_h2d(out0, &vec![0u8; jobs * 8]);
    }

    // Scatter each peer's shard slice over the fabric.
    let mut dev_slabs: Vec<Vec<DevicePtr>> = vec![dev0_slabs.clone()];
    let mut dev_out: Vec<DevicePtr> = vec![out0];
    for (d, shard) in shards.iter().enumerate().skip(1) {
        let nd = shard.len();
        let mut ptrs = Vec::new();
        for (i, (_, stride)) in slabs.iter().enumerate() {
            let p = node
                .device_mut(d)
                .try_malloc((nd * stride) as u64)
                .expect("alloc");
            node.p2p_copy(
                0,
                DevicePtr(dev0_slabs[i].0 + (shard.start * stride) as u64),
                d,
                p,
                nd * stride,
            );
            ptrs.push(p);
        }
        let o = node.device_mut(d).try_malloc(nd as u64 * 8).expect("alloc");
        if zero_out {
            node.device_mut(d).memcpy_h2d(o, &vec![0u8; nd * 8]);
        }
        dev_slabs.push(ptrs);
        dev_out.push(o);
    }
    node.sync_all();

    // Shard-parallel compute.
    for (d, shard) in shards.iter().enumerate() {
        let nd = shard.len() as u64;
        if nd == 0 {
            continue;
        }
        let dims = dims_for(nd, tpc);
        let p = params(d, &dev_slabs[d], dev_out[d], nd, dims);
        node.device_mut(d)
            .try_launch(kernel, dims, &p)
            .expect("launch");
    }
    node.sync_all();

    // Gather peer results into the merged slab in device-index order.
    for (d, shard) in shards.iter().enumerate().skip(1) {
        if shard.is_empty() {
            continue;
        }
        node.p2p_copy(
            d,
            dev_out[d],
            0,
            DevicePtr(out0.0 + (shard.start * 8) as u64),
            shard.len() * 8,
        );
    }
    node.sync_all();
    let out = node.device_mut(0).memcpy_d2h(out0, jobs * 8);

    let stats = node.stats();
    verify_telescoping(&stats);
    let total = stats.total();
    let point = Point {
        devices: n_devices,
        node_cycles: node.devices().map(ggpu_sim::Gpu::cycle).max().unwrap_or(0),
        kernel_cycles: total.host.kernel_cycles,
        p2p_cycles: total.host.p2p_cycles,
        p2p_bytes: total.host.p2p_bytes_out,
        fabric_packets: stats.fabric.packets,
        per_device_cycles: node.devices().map(ggpu_sim::Gpu::cycle).collect(),
        out,
    };
    let trace = node
        .device(0)
        .profiling_enabled()
        .then(|| node.chrome_trace());
    (point, trace)
}

/// Per-device counters must telescope exactly to the node totals: an
/// independent field-wise sum over `devices` equals `total()`.
fn verify_telescoping(stats: &ggpu_sim::NodeStats) {
    let mut sum = RunStats::default();
    for d in &stats.devices {
        sum.merge(d);
    }
    let total = stats.total();
    if sum != total {
        eprintln!("INVARIANT VIOLATED: per-device counters do not telescope to node totals");
        eprintln!("  summed: {sum:?}");
        eprintln!("  total:  {total:?}");
        std::process::exit(1);
    }
    let bytes_out: u64 = stats.devices.iter().map(|d| d.host.p2p_bytes_out).sum();
    let bytes_in: u64 = stats.devices.iter().map(|d| d.host.p2p_bytes_in).sum();
    if bytes_out != bytes_in {
        eprintln!("INVARIANT VIOLATED: fabric bytes out {bytes_out} != bytes in {bytes_in}");
        std::process::exit(1);
    }
}

// ---- exports ---------------------------------------------------------------

fn results_dir() -> PathBuf {
    ggpu_bench::results_dir()
}

fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write a JSON document after validating it parses.
fn write_json_doc(name: &str, doc: &str) {
    if let Err(e) = Json::parse(doc) {
        eprintln!("warning: {name} JSON failed validation, not writing: {e}");
        return;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, doc) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
