//! `ggpu-stat` — the serving telemetry CLI.
//!
//! Drives a seeded traffic scenario through `ggpu-serve` and renders
//! everything the observability layer captured: the `ServeMetrics`
//! conservation ledger, per-stage latency histograms (queue wait, batch
//! formation, device execution, end-to-end) with p50/p90/p99/max broken
//! down per tenant and per kernel shape, and a top-N table of the
//! slowest requests with the device events causally tied to each.
//!
//! ```text
//! ggpu-stat [SCENARIO] [--jobs N] [--wave N] [--seed S] [--threads N]
//!           [--top N] [--trace] [--tag NAME]
//! scenarios: steady    well-provisioned queue, no faults (default)
//!            overload  burst arrivals into a shallow queue (backpressure)
//!            faults    the soak fault plan: dropped PCIe transfer +
//!                      dropped memory reply (watchdog kill, stream reset)
//! ```
//!
//! Machine-readable outputs land in `results/` (override the directory
//! with `GGPU_RESULTS_DIR`, the `<scenario>` part of the filenames with
//! `--tag`): `serve_<scenario>.json` (the full
//! [`ServeReport`]), `serve_<scenario>_latency.csv` (one row per
//! scope × stage), `serve_<scenario>_requests.csv` (one row per
//! terminated request), and — with `--trace` —
//! `serve_<scenario>_trace.json`, the unified host+device Chrome trace
//! (load at <https://ui.perfetto.dev>).

use std::collections::VecDeque;
use std::path::PathBuf;

use ggpu_core::json::{Json, JsonWriter};
use ggpu_core::render_table;
use ggpu_genomics::random_genome;
use ggpu_serve::traffic::{self, GENOME_LEN};
use ggpu_serve::{
    AdmitError, Histogram, JobKind, LatencyStats, Priority, ServeConfig, ServeReport, Service,
    Tenant,
};
use ggpu_sim::FaultPlan;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Steady,
    Overload,
    Faults,
}

impl Scenario {
    fn tag(self) -> &'static str {
        match self {
            Scenario::Steady => "steady",
            Scenario::Overload => "overload",
            Scenario::Faults => "faults",
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ggpu-stat [steady|overload|faults] [--jobs N] [--wave N] [--seed S]\n\
         \u{20}                [--threads N] [--top N] [--trace] [--tag NAME]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario = Scenario::Steady;
    let mut jobs = 48usize;
    let mut wave = 6usize;
    let mut seed = 42u64;
    let mut top = 5usize;
    let mut trace = false;
    let mut tag: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "steady" => scenario = Scenario::Steady,
            "overload" => scenario = Scenario::Overload,
            "faults" => scenario = Scenario::Faults,
            "--jobs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => usage(),
            },
            "--wave" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => wave = n,
                _ => usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                _ => usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => std::env::set_var("GGPU_SIM_THREADS", n.to_string()),
                _ => usage(),
            },
            "--top" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => top = n,
                _ => usage(),
            },
            "--trace" => trace = true,
            "--tag" => match it.next() {
                Some(t) if !t.is_empty() && !t.starts_with('-') => tag = Some(t.clone()),
                _ => usage(),
            },
            _ => usage(),
        }
    }

    let report = run_scenario(scenario, seed, jobs, wave);
    println!(
        "ggpu-stat: scenario={} jobs={} wave={} seed={} clock={}GHz\n",
        scenario.tag(),
        jobs,
        wave,
        seed,
        report.clock_ghz
    );
    print_metrics(&report);
    print_latency(&report);
    print_slowest(&report, top);
    let tag = tag.as_deref().unwrap_or(scenario.tag());
    write_outputs(tag, seed, jobs, wave, &report, trace);
    let violations = verify_invariants(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
    println!("invariants: conservation ok, histograms telescope");
}

/// Check the `ServeMetrics` conservation ledger and that the latency
/// histograms telescope: every scoped breakdown (per tenant, per shape,
/// per outcome) must sum back to the global end-to-end histogram, both
/// in sample count and in total recorded cycles. Returns the list of
/// violations; the process exits non-zero if any.
fn verify_invariants(r: &ServeReport) -> Vec<String> {
    let mut bad = Vec::new();
    let m = r.metrics;
    let rejected = m.rejected_overload + m.rejected_quota + m.rejected_shape;
    if m.submitted != m.admitted + rejected {
        bad.push(format!(
            "conservation: submitted {} != admitted {} + rejected {}",
            m.submitted, m.admitted, rejected
        ));
    }
    let terminal = m.completed + m.failed + m.deadline_exceeded + m.shed;
    if m.admitted != terminal {
        bad.push(format!(
            "conservation: admitted {} != terminal {} (completed {} + failed {} + deadline {} + shed {})",
            m.admitted, terminal, m.completed, m.failed, m.deadline_exceeded, m.shed
        ));
    }
    let global = (r.global.e2e.count(), r.global.e2e.sum());
    if global.0 != terminal {
        bad.push(format!(
            "global e2e histogram has {} samples but {} requests terminated",
            global.0, terminal
        ));
    }
    let scopes: [(&str, (u64, u64)); 3] = [
        (
            "tenant",
            r.per_tenant.iter().fold((0, 0), |(c, s), (_, st)| {
                (c + st.e2e.count(), s + st.e2e.sum())
            }),
        ),
        (
            "shape",
            r.per_shape.iter().fold((0, 0), |(c, s), (_, st)| {
                (c + st.e2e.count(), s + st.e2e.sum())
            }),
        ),
        (
            "outcome",
            r.per_outcome
                .iter()
                .fold((0, 0), |(c, s), (_, h)| (c + h.count(), s + h.sum())),
        ),
    ];
    for (scope, (count, sum)) in scopes {
        if (count, sum) != global {
            bad.push(format!(
                "per-{scope} e2e histograms do not telescope to global: \
                 {count} samples / {sum} cycles vs {} / {}",
                global.0, global.1
            ));
        }
    }
    bad
}

/// Build the scenario's service configuration. All three share the soak
/// geometry ([`traffic::base_config`]: 3 workers, batch of 4, all three
/// kernel shapes enabled); they differ in queue bound and fault plan.
fn scenario_config(scenario: Scenario, genome: &[u8]) -> ServeConfig {
    let mut cfg = traffic::base_config(genome);
    match scenario {
        Scenario::Steady => {}
        Scenario::Overload => {
            cfg.queue_capacity = 8;
        }
        Scenario::Faults => {
            cfg.gpu.fault_plan = FaultPlan {
                drop_memcpy: Some(7),
                drop_reply: Some(25),
                ..FaultPlan::default()
            };
        }
    }
    cfg
}

/// Stream the scenario's traffic through a service and return the report.
/// Submissions the bounded queue refuses are re-offered next round — the
/// rejection still lands in the metrics, which is the point of the
/// overload scenario.
fn run_scenario(scenario: Scenario, seed: u64, jobs: usize, wave: usize) -> ServeReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let genome = random_genome(GENOME_LEN, &mut rng).codes().to_vec();
    let mut svc = Service::new(scenario_config(scenario, &genome)).expect("build service");
    let mut gen_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut pending: VecDeque<JobKind> = (0..jobs)
        .map(|_| traffic::gen_job(&genome, &mut gen_rng))
        .collect();
    let mut submitted = 0u32;
    let mut rounds = 0u64;
    while !pending.is_empty() {
        for _ in 0..wave {
            let Some(kind) = pending.pop_front() else {
                break;
            };
            match svc.submit(Tenant(submitted % 4), Priority(1), None, kind.clone()) {
                Ok(_) => submitted += 1,
                Err(AdmitError::Overloaded { .. }) => {
                    pending.push_front(kind);
                    break;
                }
                Err(e) => {
                    eprintln!("unexpected admission error: {e}");
                    std::process::exit(1);
                }
            }
        }
        svc.run_round().expect("device-wide fault");
        rounds += 1;
        if rounds > 10_000 {
            eprintln!("scenario failed to make progress after {rounds} rounds");
            std::process::exit(1);
        }
    }
    svc.run_until_idle(1_000).expect("device-wide fault");
    svc.report()
}

fn print_metrics(r: &ServeReport) {
    let m = r.metrics;
    let rows = vec![
        vec!["submitted".into(), m.submitted.to_string()],
        vec!["admitted".into(), m.admitted.to_string()],
        vec!["rejected_overload".into(), m.rejected_overload.to_string()],
        vec!["rejected_quota".into(), m.rejected_quota.to_string()],
        vec!["rejected_shape".into(), m.rejected_shape.to_string()],
        vec!["completed".into(), m.completed.to_string()],
        vec!["failed".into(), m.failed.to_string()],
        vec!["deadline_exceeded".into(), m.deadline_exceeded.to_string()],
        vec!["shed".into(), m.shed.to_string()],
        vec!["batches_launched".into(), m.batches_launched.to_string()],
        vec!["retries".into(), m.retries.to_string()],
        vec!["splits".into(), m.splits.to_string()],
        vec!["stream_resets".into(), m.stream_resets.to_string()],
        vec!["queue_depth_hwm".into(), m.queue_depth_hwm.to_string()],
        vec![
            "inflight_batches_hwm".into(),
            m.inflight_batches_hwm.to_string(),
        ],
        vec!["rounds".into(), m.rounds.to_string()],
    ];
    println!("== serving metrics");
    println!("{}", render_table(&["counter", "value"], &rows));
    // The conservation ledger, stated explicitly so a glance at the
    // output verifies it.
    println!(
        "conservation: {} submitted = {} admitted + {} rejected; {} admitted = {} terminal\n",
        m.submitted,
        m.admitted,
        m.rejected_overload + m.rejected_quota + m.rejected_shape,
        m.admitted,
        m.completed + m.failed + m.deadline_exceeded + m.shed,
    );
}

fn stage_rows(scope: &str, stats: &LatencyStats, rows: &mut Vec<Vec<String>>) {
    let stages: [(&str, &Histogram); 4] = [
        ("queue_wait", &stats.queue_wait),
        ("batch_formation", &stats.batch_formation),
        ("device_exec", &stats.device_exec),
        ("e2e", &stats.e2e),
    ];
    for (stage, h) in stages {
        rows.push(vec![
            scope.to_string(),
            stage.to_string(),
            h.count().to_string(),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.percentile(99.0).to_string(),
            h.max().to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
}

/// Every scope × stage latency row: global, per tenant, per shape, and
/// the per-outcome end-to-end histograms.
fn latency_rows(r: &ServeReport) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    stage_rows("global", &r.global, &mut rows);
    for (t, stats) in &r.per_tenant {
        stage_rows(&format!("tenant/{t}"), stats, &mut rows);
    }
    for (shape, stats) in &r.per_shape {
        stage_rows(&format!("shape/{shape}"), stats, &mut rows);
    }
    for (tag, h) in &r.per_outcome {
        if h.count() == 0 {
            continue;
        }
        rows.push(vec![
            format!("outcome/{tag}"),
            "e2e".to_string(),
            h.count().to_string(),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.percentile(99.0).to_string(),
            h.max().to_string(),
            format!("{:.1}", h.mean()),
        ]);
    }
    rows
}

const LATENCY_HEADERS: [&str; 8] = [
    "scope", "stage", "count", "p50", "p90", "p99", "max", "mean",
];

fn print_latency(r: &ServeReport) {
    println!("== latency (cycles)");
    println!("{}", render_table(&LATENCY_HEADERS, &latency_rows(r)));
}

fn print_slowest(r: &ServeReport, top: usize) {
    println!("== top {top} slowest requests");
    let rows: Vec<Vec<String>> = r
        .slowest(top)
        .iter()
        .map(|t| {
            vec![
                t.job.0.to_string(),
                t.tenant.0.to_string(),
                t.shape.to_string(),
                t.outcome.tag().to_string(),
                t.e2e.to_string(),
                t.batch_assign_cycle
                    .map(|c| (c - t.submit_cycle).to_string())
                    .unwrap_or_default(),
                t.device_exec.map(|c| c.to_string()).unwrap_or_default(),
                t.grids.len().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "job",
                "tenant",
                "shape",
                "outcome",
                "e2e",
                "queue_wait",
                "dev_exec",
                "launches",
            ],
            &rows
        )
    );
    // The causal device slice for each: what the device did on this
    // request's grids/streams while it was alive.
    for t in r.slowest(top) {
        let causal = r.causal_device_events(t);
        let summary: Vec<String> = causal
            .iter()
            .take(12)
            .map(|e| format!("{}@{}", e.kind.tag(), e.cycle))
            .collect();
        println!(
            "job {} [{}] grids {:?}: {}{}",
            t.job.0,
            t.outcome.tag(),
            t.grids.iter().map(|g| g.grid).collect::<Vec<_>>(),
            summary.join(" "),
            if causal.len() > 12 {
                format!(" (+{} more)", causal.len() - 12)
            } else {
                String::new()
            }
        );
    }
    println!();
}

// ---- exports ---------------------------------------------------------------

fn results_dir() -> PathBuf {
    ggpu_bench::results_dir()
}

fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Write a JSON document after validating it parses, so every emitted
/// file is machine-readable by construction.
fn write_json_doc(name: &str, doc: &str) {
    if let Err(e) = Json::parse(doc) {
        eprintln!("warning: {name} JSON failed validation, not writing: {e}");
        return;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, doc) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn write_outputs(tag: &str, seed: u64, jobs: usize, wave: usize, r: &ServeReport, trace: bool) {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.str("scenario", tag)
        .u64("seed", seed)
        .u64("jobs", jobs as u64)
        .u64("wave", wave as u64)
        .raw("report", &r.to_json());
    w.end_obj();
    write_json_doc(&format!("serve_{tag}"), &w.finish());

    write_csv(
        &format!("serve_{tag}_latency"),
        &LATENCY_HEADERS,
        &latency_rows(r),
    );

    let request_rows: Vec<Vec<String>> = r
        .trails
        .iter()
        .map(|t| {
            vec![
                t.job.0.to_string(),
                t.tenant.0.to_string(),
                t.shape.to_string(),
                t.priority.0.to_string(),
                t.outcome.tag().to_string(),
                t.submit_cycle.to_string(),
                t.batch_assign_cycle
                    .map(|c| c.to_string())
                    .unwrap_or_default(),
                t.first_launch_cycle
                    .map(|c| c.to_string())
                    .unwrap_or_default(),
                t.complete_cycle.to_string(),
                t.device_exec.map(|c| c.to_string()).unwrap_or_default(),
                t.e2e.to_string(),
                t.grids.len().to_string(),
            ]
        })
        .collect();
    write_csv(
        &format!("serve_{tag}_requests"),
        &[
            "job",
            "tenant",
            "shape",
            "priority",
            "outcome",
            "submit_cycle",
            "batch_assign_cycle",
            "first_launch_cycle",
            "complete_cycle",
            "device_exec_cycles",
            "e2e_cycles",
            "launches",
        ],
        &request_rows,
    );

    if trace {
        write_json_doc(&format!("serve_{tag}_trace"), &r.chrome_trace());
    }
}
