//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figN` function runs the required benchmark set on the simulator
//! under the paper's configuration sweep and prints the same rows/series
//! the paper plots. Absolute numbers differ from the paper's testbed (we
//! simulate a scaled workload); the *shape* — who wins, by what rough
//! factor, where the crossovers are — is what EXPERIMENTS.md tracks.

use std::path::PathBuf;

use ggpu_core::json::{Json, JsonWriter};
use ggpu_core::{
    all_benchmarks, chrome_trace_json, cpu_baseline, render_table, sram_usage, BenchResult,
    Benchmark, GpuConfig, ProfileReport, Scale, TraceEvent,
};
use ggpu_icnt::Topology;
use ggpu_isa::{InstrClass, Space};
use ggpu_mem::DramScheduler;
use ggpu_sm::{SchedPolicy, StallReason};

/// Directory machine-readable outputs (CSV/JSON) land in — the shared
/// workspace resolution from [`crate::results_dir`].
fn results_dir() -> PathBuf {
    crate::results_dir()
}

/// Quote a CSV cell when it contains a delimiter, quote, or newline.
fn csv_cell(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write one table as `results/<name>.csv`. Failures warn and continue —
/// CSV export never breaks figure regeneration.
fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Print a table and mirror it to `results/<name>.csv`.
fn emit(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(headers, rows));
    write_csv(name, headers, rows);
}

/// Write a JSON document to `results/<name>.json` after validating it
/// parses, so every emitted file is machine-readable by construction.
fn write_json_doc(name: &str, doc: &str) -> Option<PathBuf> {
    if let Err(e) = Json::parse(doc) {
        eprintln!("warning: {name}.json failed self-validation: {e}");
        return None;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, doc) {
        Ok(()) => {
            println!("[wrote {}]", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// All benchmark labels including CDP variants, in display order.
fn variant_labels() -> Vec<String> {
    let mut v = Vec::new();
    for b in all_benchmarks(Scale::Tiny) {
        v.push(b.abbrev().to_string());
        v.push(format!("{}-CDP", b.abbrev()));
    }
    v
}

/// Run all benchmarks (non-CDP and CDP) under `config`.
fn run_all_variants(scale: Scale, config: &GpuConfig) -> Vec<(String, BenchResult)> {
    let mut out = Vec::new();
    for b in all_benchmarks(scale) {
        out.push((b.abbrev().to_string(), b.run(config, false)));
        out.push((format!("{}-CDP", b.abbrev()), b.run(config, true)));
    }
    out
}

fn check(results: &[(String, BenchResult)]) {
    for (name, r) in results {
        assert!(r.verified, "{name} failed functional validation");
    }
}

/// Table I: hardware configuration space (baseline bolded in the paper).
pub fn table1() {
    let c = GpuConfig::rtx3070();
    println!("TABLE I: Hardware configuration settings\n");
    let rows = vec![
        vec!["Shader Cores".into(), format!("{}", c.n_sms)],
        vec!["Warp Size".into(), "32".into()],
        vec![
            "Constant Cache Size / Core".into(),
            format!(
                "{}KB (256-way, 128B lines, LRU)",
                c.sm.const_cache.bytes / 1024
            ),
        ],
        vec![
            "Texture Cache Size / Core".into(),
            format!(
                "{}KB (64-way, 128B lines, LRU)",
                c.sm.tex_cache.bytes / 1024
            ),
        ],
        vec![
            "Number of Registers / Core".into(),
            format!("16384, 32768, [{}], 131072, 262144", c.sm.registers),
        ],
        vec![
            "Number of CTAs / Core".into(),
            format!("8, 16, [{}], 64, 128", c.sm.max_ctas),
        ],
        vec![
            "Number of Threads / Core".into(),
            format!("384, 768, [{}], 3072, 6144", c.sm.max_threads),
        ],
        vec![
            "Shared Memory / Core (KB)".into(),
            format!("32, 64, [{}], 256, 512", c.sm.smem_bytes / 1024),
        ],
        vec![
            "L1 Cache".into(),
            format!("32KB, [{}KB], 256KB, 512KB, 4MB", c.sm.l1.bytes / 1024),
        ],
        vec![
            "L2 Cache".into(),
            format!(
                "512KB, [{}MB], 8MB, 16MB, 128MB",
                c.l2_total() / (1024 * 1024)
            ),
        ],
        vec![
            "Memory Controller".into(),
            "out of order (FR-FCFS), in order (FIFO)".into(),
        ],
        vec!["Scheduler".into(), "LRR, GTO, OLD, 2LV".into()],
    ];
    emit("table1", &["Configuration", "Settings"], &rows);
}

/// Table II: interconnect configuration space.
pub fn table2() {
    let c = GpuConfig::rtx3070();
    println!("TABLE II: Interconnect configuration settings\n");
    let rows = vec![
        vec![
            "Topology".into(),
            "Mesh, Local Xbar [baseline], Fat Tree, Butterfly".into(),
        ],
        vec![
            "Routing Mechanism".into(),
            "Dimension Order, Destination Tag, Nearest Common Ancestor".into(),
        ],
        vec!["Routing delay".into(), format!("{}", c.icnt.router_delay)],
        vec![
            "Virtual channels".into(),
            format!("{}", c.icnt.virtual_channels),
        ],
        vec![
            "Virtual channel buffers".into(),
            format!("{}", c.icnt.vc_buffers),
        ],
        vec![
            "Flit size (Bytes)".into(),
            format!("8, 16, 32, [{}]", c.icnt.flit_bytes),
        ],
    ];
    emit("table2", &["Configuration", "Settings"], &rows);
}

/// Table III: benchmark properties.
pub fn table3(scale: Scale) {
    println!("TABLE III: Benchmark properties (paper launch shapes; simulated workloads are scaled per DESIGN.md)\n");
    let sm = GpuConfig::rtx3070().sm;
    let mut rows = Vec::new();
    for b in all_benchmarks(scale) {
        let t = b.table3();
        let u = sram_usage(b.as_ref(), &sm);
        rows.push(vec![
            t.name.to_string(),
            t.abbrev.to_string(),
            t.input.clone(),
            format!("({},{},{})", t.grid.0, t.grid.1, t.grid.2),
            format!("({},{},{})", t.cta.0, t.cta.1, t.cta.2),
            if t.shared_memory { "YES" } else { "NO" }.into(),
            if t.constant_memory { "YES" } else { "NO" }.into(),
            format!("{}", u.resident_ctas),
        ]);
    }
    emit(
        "table3",
        &[
            "Benchmark",
            "Abr.",
            "Input",
            "Grid",
            "CTA",
            "Shared?",
            "Const?",
            "CTA/core",
        ],
        &rows,
    );
}

/// Figure 2: CPU vs GPU vs GPU+CDP for SW, NW, STAR (normalized to CPU).
pub fn fig2(scale: Scale) {
    println!("FIGURE 2: CPU vs GPU vs GPU+CDP execution time (normalized to CPU = 1.0)\n");
    let cpu = cpu_baseline(scale);
    let config = GpuConfig::rtx3070();
    let mut rows = Vec::new();
    for (abbrev, cpu_s) in [
        ("SW", cpu.sw_seconds),
        ("NW", cpu.nw_seconds),
        ("STAR", cpu.star_seconds),
    ] {
        let b = ggpu_core::benchmark(scale, abbrev).expect("known benchmark");
        let gpu = b.run(&config, false);
        let gpu_cdp = b.run(&config, true);
        assert!(gpu.verified && gpu_cdp.verified, "{abbrev} validation");
        let gpu_s = gpu.stats.seconds(config.clock_ghz);
        let cdp_s = gpu_cdp.stats.seconds(config.clock_ghz);
        rows.push(vec![
            abbrev.to_string(),
            "1.000".into(),
            format!("{:.3}", gpu_s / cpu_s),
            format!("{:.3}", cdp_s / cpu_s),
            format!("{:.1}x", cpu_s / gpu_s),
        ]);
    }
    emit(
        "fig2",
        &["Bench", "CPU", "GPU", "GPU+CDP", "GPU speedup"],
        &rows,
    );
}

/// Figure 3: kernel execution time, CDP vs non-CDP.
pub fn fig3(scale: Scale) {
    println!("FIGURE 3: CDP vs non-CDP kernel execution time\n");
    let config = GpuConfig::rtx3070();
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for b in all_benchmarks(scale) {
        let plain = b.run(&config, false);
        let cdp = b.run(&config, true);
        assert!(plain.verified && cdp.verified, "{}", b.abbrev());
        let imp = 1.0 - cdp.kernel_cycles as f64 / plain.kernel_cycles as f64;
        improvements.push(imp);
        rows.push(vec![
            b.abbrev().to_string(),
            format!("{}", plain.kernel_cycles),
            format!("{}", cdp.kernel_cycles),
            format!("{:+.1}%", imp * 100.0),
        ]);
    }
    rows.push(vec![
        "AVG".into(),
        String::new(),
        String::new(),
        format!(
            "{:+.1}%",
            improvements.iter().sum::<f64>() / improvements.len() as f64 * 100.0
        ),
    ]);
    emit(
        "fig3",
        &["Bench", "non-CDP cycles", "CDP cycles", "CDP improvement"],
        &rows,
    );
}

/// Figure 4: kernel/PCI invocation counts and times.
pub fn fig4(scale: Scale) {
    println!("FIGURE 4(a): kernel and PCI (cudaMemcpy) invocation counts");
    println!("FIGURE 4(b): total and average kernel / PCI time (cycles)\n");
    let config = GpuConfig::rtx3070();
    let results = run_all_variants(scale, &config);
    check(&results);
    let mut rows = Vec::new();
    for (name, r) in &results {
        let h = r.stats.host;
        rows.push(vec![
            name.clone(),
            format!("{}", h.kernel_launches),
            format!("{}", h.pci_count),
            format!("{}", h.kernel_cycles),
            format!("{:.0}", h.avg_kernel_cycles()),
            format!("{}", h.pci_cycles),
            format!("{:.0}", h.avg_pci_cycles()),
        ]);
    }
    emit(
        "fig4",
        &[
            "Bench",
            "Kernel count",
            "PCI count",
            "Kernel cyc",
            "Avg kernel",
            "PCI cyc",
            "Avg PCI",
        ],
        &rows,
    );
}

/// Figure 5: pipeline-stall breakdown.
pub fn fig5(scale: Scale) {
    println!("FIGURE 5: pipeline stall breakdown (% of stall cycles)\n");
    let config = GpuConfig::rtx3070();
    let results = run_all_variants(scale, &config);
    check(&results);
    let mut rows = Vec::new();
    for (name, r) in &results {
        let s = &r.stats.sm.stalls;
        let mut row = vec![name.clone()];
        for reason in StallReason::ALL {
            row.push(format!("{:.1}", s.fraction(reason) * 100.0));
        }
        rows.push(row);
    }
    let mut headers = vec!["Bench"];
    let names: Vec<&str> = StallReason::ALL.iter().map(|r| r.name()).collect();
    headers.extend(names);
    emit("fig5", &headers, &rows);
}

/// Figure 6: SRAM utilization.
pub fn fig6(scale: Scale) {
    println!("FIGURE 6: utilization of SRAM structures (% of capacity)\n");
    let sm = GpuConfig::rtx3070().sm;
    let mut rows = Vec::new();
    for b in all_benchmarks(scale) {
        let u = sram_usage(b.as_ref(), &sm);
        rows.push(vec![
            b.abbrev().to_string(),
            format!("{}", u.resident_ctas),
            format!("{:.1}", u.registers * 100.0),
            format!("{:.1}", u.shared * 100.0),
            format!("{:.1}", u.constant * 100.0),
        ]);
    }
    emit(
        "fig6",
        &["Bench", "CTAs/SM", "Registers %", "Shared %", "Constant %"],
        &rows,
    );
}

/// Figure 7: NW and PairHMM with vs without shared memory.
pub fn fig7(scale: Scale) {
    println!("FIGURE 7: execution time without shared memory, normalized to with shared memory\n");
    let config = GpuConfig::rtx3070();
    let mut rows = Vec::new();
    {
        let smem = ggpu_kernels::pairwise::PairwiseBench::nw(scale, true).run(&config, false);
        let nosmem = ggpu_kernels::pairwise::PairwiseBench::nw(scale, false).run(&config, false);
        assert!(smem.verified && nosmem.verified);
        rows.push(vec![
            "NW".into(),
            format!(
                "{:.2}x",
                nosmem.kernel_cycles as f64 / smem.kernel_cycles as f64
            ),
        ]);
    }
    {
        let smem = ggpu_kernels::pairhmm::PairHmmBench::new(scale, true).run(&config, false);
        let nosmem = ggpu_kernels::pairhmm::PairHmmBench::new(scale, false).run(&config, false);
        assert!(smem.verified && nosmem.verified);
        rows.push(vec![
            "PairHMM".into(),
            format!(
                "{:.2}x",
                nosmem.kernel_cycles as f64 / smem.kernel_cycles as f64
            ),
        ]);
    }
    emit("fig7", &["Bench", "slowdown without shared memory"], &rows);
}

/// Figure 8: instruction-type distribution.
pub fn fig8(scale: Scale) {
    println!("FIGURE 8: distribution of instruction types (% of issued instructions)\n");
    let config = GpuConfig::rtx3070();
    let results = run_all_variants(scale, &config);
    check(&results);
    let classes = [
        InstrClass::Int,
        InstrClass::Fp,
        InstrClass::LdSt,
        InstrClass::Sfu,
        InstrClass::Ctrl,
    ];
    let mut rows = Vec::new();
    for (name, r) in &results {
        let total: u64 = classes.iter().map(|&c| r.stats.sm.class_count(c)).sum();
        let mut row = vec![name.clone()];
        for &c in &classes {
            row.push(format!(
                "{:.1}",
                r.stats.sm.class_count(c) as f64 / total.max(1) as f64 * 100.0
            ));
        }
        rows.push(row);
    }
    emit(
        "fig8",
        &["Bench", "int", "fp", "ld/st", "sfu", "ctrl"],
        &rows,
    );
}

/// Figure 9: memory-instruction space distribution.
pub fn fig9(scale: Scale) {
    println!("FIGURE 9: distribution of memory instruction types (% of memory instructions)\n");
    let config = GpuConfig::rtx3070();
    let results = run_all_variants(scale, &config);
    check(&results);
    let mut rows = Vec::new();
    for (name, r) in &results {
        let total: u64 = Space::ALL.iter().map(|&s| r.stats.sm.space_count(s)).sum();
        let mut row = vec![name.clone()];
        for &s in &Space::ALL {
            row.push(format!(
                "{:.1}",
                r.stats.sm.space_count(s) as f64 / total.max(1) as f64 * 100.0
            ));
        }
        rows.push(row);
    }
    emit(
        "fig9",
        &[
            "Bench", "shared", "tex", "const", "param", "local", "global",
        ],
        &rows,
    );
}

/// Figure 10: warp-occupancy histogram (8 buckets of 4 lanes).
pub fn fig10(scale: Scale) {
    println!("FIGURE 10: warp occupancy (% of issues per active-lane bucket)\n");
    let config = GpuConfig::rtx3070();
    let results = run_all_variants(scale, &config);
    check(&results);
    let mut rows = Vec::new();
    for (name, r) in &results {
        let mut row = vec![name.clone()];
        for bucket in 0..8u32 {
            let lo = bucket * 4 + 1;
            let hi = bucket * 4 + 4;
            row.push(format!(
                "{:.1}",
                r.stats.sm.occupancy_fraction(lo, hi) * 100.0
            ));
        }
        rows.push(row);
    }
    emit(
        "fig10",
        &[
            "Bench", "W1-4", "W5-8", "W9-12", "W13-16", "W17-20", "W21-24", "W25-28", "W29-32",
        ],
        &rows,
    );
}

/// Generic sweep: per-benchmark speedup (baseline kernel cycles / config
/// kernel cycles) for a list of named configurations.
fn sweep(scale: Scale, configs: &[(String, GpuConfig)], baseline_idx: usize) -> Vec<Vec<String>> {
    let labels = variant_labels();
    // speedups[bench][config]
    let mut cycles: Vec<Vec<u64>> = vec![Vec::new(); labels.len()];
    for (_, config) in configs {
        let results = run_all_variants(scale, config);
        check(&results);
        for (i, (_, r)) in results.iter().enumerate() {
            cycles[i].push(r.kernel_cycles.max(1));
        }
    }
    let mut rows = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        let base = cycles[i][baseline_idx] as f64;
        let mut row = vec![label.clone()];
        for c in &cycles[i] {
            row.push(format!("{:.3}", base / *c as f64));
        }
        rows.push(row);
    }
    rows
}

/// Figure 11: CTA-per-core scaling (25/50/100/150/200% of resources).
pub fn fig11(scale: Scale) {
    println!("FIGURE 11: speedup when scaling SM resources (CTAs/threads/regs/smem)\n");
    let configs: Vec<(String, GpuConfig)> = [25u32, 50, 100, 150, 200]
        .iter()
        .map(|&p| (format!("{p}%"), GpuConfig::rtx3070().with_cta_scale(p)))
        .collect();
    let rows = sweep(scale, &configs, 2);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig11", &hdr, &rows);
}

/// The cache-size sweep shared by Figures 12-14.
fn cache_configs() -> Vec<(String, GpuConfig)> {
    [
        ("0K+128K", 0u64, 128 * 1024u64),
        ("32K+512K", 32 * 1024, 512 * 1024),
        ("128K+4M", 128 * 1024, 4 * 1024 * 1024),
        ("256K+8M", 256 * 1024, 8 * 1024 * 1024),
        ("512K+16M", 512 * 1024, 16 * 1024 * 1024),
        ("4M+128M", 4 * 1024 * 1024, 128 * 1024 * 1024),
    ]
    .iter()
    .map(|&(name, l1, l2)| {
        (
            name.to_string(),
            GpuConfig::rtx3070().with_cache_sizes(l1, l2),
        )
    })
    .collect()
}

/// Figure 12: speedup across cache configurations (baseline 128K+4M).
pub fn fig12(scale: Scale) {
    println!("FIGURE 12: speedup vs cache sizes (normalized to 128KB L1 + 4MB L2)\n");
    let configs = cache_configs();
    let rows = sweep(scale, &configs, 2);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig12", &hdr, &rows);
}

/// Figures 13 and 14: L1 and L2 miss rates across the cache sweep.
pub fn fig13_14(scale: Scale) {
    println!("FIGURE 13/14: L1 and L2 miss rates (%) across cache configurations\n");
    let configs = cache_configs();
    let labels = variant_labels();
    let mut l1_rows: Vec<Vec<String>> = labels.iter().map(|l| vec![l.clone()]).collect();
    let mut l2_rows = l1_rows.clone();
    for (_, config) in &configs {
        let results = run_all_variants(scale, config);
        check(&results);
        for (i, (_, r)) in results.iter().enumerate() {
            l1_rows[i].push(format!("{:.1}", r.stats.l1.miss_rate() * 100.0));
            l2_rows[i].push(format!("{:.1}", r.stats.l2.miss_rate() * 100.0));
        }
    }
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("L1 miss rate (Figure 13):");
    emit("fig13", &hdr, &l1_rows);
    println!("L2 miss rate (Figure 14):");
    emit("fig14", &hdr, &l2_rows);
}

/// Figure 15: perfect-memory speedup.
pub fn fig15(scale: Scale) {
    println!("FIGURE 15: speedup with a perfect (zero-latency) memory system\n");
    let base = GpuConfig::rtx3070();
    let mut perfect = GpuConfig::rtx3070();
    perfect.sm.perfect_memory = true;
    let configs = vec![
        ("baseline".to_string(), base),
        ("perfect".to_string(), perfect),
    ];
    let rows = sweep(scale, &configs, 0);
    let mut avg = 0.0;
    for row in &rows {
        avg += row[2].parse::<f64>().unwrap_or(1.0);
    }
    let mut rows = rows;
    rows.push(vec![
        "AVG".into(),
        String::new(),
        format!("{:.3}", avg / variant_labels().len() as f64),
    ]);
    emit(
        "fig15",
        &["Bench", "baseline", "perfect-memory speedup"],
        &rows,
    );
}

/// Figures 16-18: memory-controller sweep + DRAM efficiency/utilization.
pub fn fig16_17_18(scale: Scale) {
    println!("FIGURE 16: speedup per memory controller (vs FR-FCFS baseline)");
    println!("FIGURE 17: DRAM efficiency (%)   FIGURE 18: DRAM utilization (%)\n");
    let mk = |sched: DramScheduler| {
        let mut c = GpuConfig::rtx3070();
        c.dram.scheduler = sched;
        c
    };
    let configs = vec![
        ("FR-FCFS".to_string(), mk(DramScheduler::FrFcfs)),
        ("FIFO".to_string(), mk(DramScheduler::Fifo)),
        ("OoO-128".to_string(), {
            let mut c = mk(DramScheduler::OoO(128));
            c.dram.queue_size = 128;
            c
        }),
    ];
    let labels = variant_labels();
    let mut rows: Vec<Vec<String>> = labels.iter().map(|l| vec![l.clone()]).collect();
    let mut base_cycles = vec![0u64; labels.len()];
    for (ci, (_, config)) in configs.iter().enumerate() {
        let results = run_all_variants(scale, config);
        check(&results);
        for (i, (_, r)) in results.iter().enumerate() {
            if ci == 0 {
                base_cycles[i] = r.kernel_cycles.max(1);
            }
            rows[i].push(format!(
                "{:.3}",
                base_cycles[i] as f64 / r.kernel_cycles.max(1) as f64
            ));
            rows[i].push(format!("{:.1}", r.stats.dram.efficiency() * 100.0));
            rows[i].push(format!("{:.1}", r.stats.dram_utilization() * 100.0));
        }
    }
    let mut headers = vec!["Bench".to_string()];
    for (n, _) in &configs {
        headers.push(format!("{n} spd"));
        headers.push(format!("{n} eff%"));
        headers.push(format!("{n} util%"));
    }
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig16_17_18", &hdr, &rows);
}

/// Figure 19: warp-scheduler sweep.
pub fn fig19(scale: Scale) {
    println!("FIGURE 19: scheduler performance (speedup vs LRR)\n");
    let mk = |policy: SchedPolicy| {
        let mut c = GpuConfig::rtx3070();
        c.sm.policy = policy;
        c
    };
    let configs = vec![
        ("LRR".to_string(), mk(SchedPolicy::Lrr)),
        ("GTO".to_string(), mk(SchedPolicy::Gto)),
        ("OLD".to_string(), mk(SchedPolicy::Old)),
        ("2LV".to_string(), mk(SchedPolicy::TwoLevel)),
    ];
    let rows = sweep(scale, &configs, 0);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig19", &hdr, &rows);
}

/// Figure 20: interconnect-topology sweep.
pub fn fig20(scale: Scale) {
    println!("FIGURE 20: interconnect topology (speedup vs local crossbar)\n");
    let mk = |t: Topology| {
        let mut c = GpuConfig::rtx3070();
        c.icnt.topology = t;
        c
    };
    let configs = vec![
        ("xbar".to_string(), mk(Topology::LocalXbar)),
        ("mesh".to_string(), mk(Topology::Mesh)),
        ("fattree".to_string(), mk(Topology::FatTree)),
        ("butterfly".to_string(), mk(Topology::Butterfly)),
    ];
    let rows = sweep(scale, &configs, 0);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig20", &hdr, &rows);
}

/// Figure 21: mesh router-latency sweep.
pub fn fig21(scale: Scale) {
    println!("FIGURE 21: mesh network latency (+0/4/8/16 cycle router delay, speedup vs +0)\n");
    let mk = |delay: u64| {
        let mut c = GpuConfig::rtx3070();
        c.icnt.topology = Topology::Mesh;
        c.icnt.router_delay = delay;
        c
    };
    let configs: Vec<(String, GpuConfig)> = [0u64, 4, 8, 16]
        .iter()
        .map(|&d| (format!("+{d}"), mk(d)))
        .collect();
    let rows = sweep(scale, &configs, 0);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig21", &hdr, &rows);
}

/// Figure 22: mesh channel-bandwidth sweep.
pub fn fig22(scale: Scale) {
    println!("FIGURE 22: mesh channel bandwidth (flit bytes, speedup vs 40B)\n");
    let mk = |flit: u32| {
        let mut c = GpuConfig::rtx3070();
        c.icnt.topology = Topology::Mesh;
        c.icnt.flit_bytes = flit;
        c
    };
    let configs: Vec<(String, GpuConfig)> = [40u32, 32, 16, 8]
        .iter()
        .map(|&f| (format!("{f}B"), mk(f)))
        .collect();
    let rows = sweep(scale, &configs, 0);
    let mut headers = vec!["Bench".to_string()];
    headers.extend(configs.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit("fig22", &hdr, &rows);
}

/// Ablation: design choices called out in DESIGN.md.
///
/// * Local-memory interleaving (warp-interleaved vs contiguous per-thread
///   arenas) on the local-memory-heavy GASAL2-LOCAL benchmark.
/// * L1 caching of local stores (disable by shrinking L1 to zero).
pub fn ablation(scale: Scale) {
    println!("ABLATION: simulator design choices (GASAL2-LOCAL kernel cycles)\n");
    let b = ggpu_core::benchmark(scale, "GL").expect("GL exists");
    let base = GpuConfig::rtx3070();
    let mut no_interleave = GpuConfig::rtx3070();
    no_interleave.sm.interleave_local = false;
    let no_l1 = GpuConfig::rtx3070().with_cache_sizes(0, 4 * 1024 * 1024);
    let mut rows = Vec::new();
    let r0 = b.run(&base, false);
    assert!(r0.verified);
    for (name, cfg) in [
        ("baseline (interleaved local, 128KB L1)", &base),
        ("contiguous per-thread local arenas", &no_interleave),
        ("no L1 (local stores uncached)", &no_l1),
    ] {
        let r = b.run(cfg, false);
        assert!(r.verified, "{name}");
        rows.push(vec![
            name.to_string(),
            format!("{}", r.kernel_cycles),
            format!("{:.2}x", r.kernel_cycles as f64 / r0.kernel_cycles as f64),
            format!("{}", r.stats.sm.offchip_txns),
        ]);
    }
    emit(
        "ablation",
        &["Design point", "cycles", "slowdown", "off-chip txns"],
        &rows,
    );
}

/// Extension: GASAL2 "with traceback" — the optional mode the paper lists
/// but does not characterize. Compares kernel cycles of the score-only
/// global aligner against the full-CIGAR traceback kernel.
pub fn extension_traceback(scale: Scale) {
    println!("EXTENSION: GASAL2 global alignment with full-CIGAR traceback\n");
    let config = GpuConfig::rtx3070();
    let bench = ggpu_kernels::traceback::TracebackBench::new(scale);
    let score_only = bench.run_score_only(&config);
    let tb = bench.run(&config);
    assert!(score_only.verified && tb.verified);
    let rows = vec![
        vec![
            "GG (score only)".to_string(),
            format!("{}", score_only.kernel_cycles),
            "1.00x".to_string(),
        ],
        vec![
            "GG-TB (with traceback)".to_string(),
            format!("{}", tb.kernel_cycles),
            format!(
                "{:.2}x",
                tb.kernel_cycles as f64 / score_only.kernel_cycles as f64
            ),
        ],
    ];
    emit("extension", &["Kernel", "cycles", "relative"], &rows);
}

/// Observability mode (`--json` / `--trace`): run every benchmark in both
/// non-CDP and CDP variants with interval sampling and event tracing
/// enabled, print a per-variant profile summary, and export the raw
/// profiles as machine-readable JSON:
///
/// * `results/profile_<scale>.json` — one [`ProfileReport`] per variant
///   (per-kernel counter deltas, interval samples, typed event list).
/// * `results/trace_<scale>.json` — a single Chrome-trace file with one
///   process row per variant; load it at <https://ui.perfetto.dev>.
///
/// Both documents are re-parsed with [`Json::parse`] before being written,
/// so an export that reaches disk is well-formed by construction.
pub fn profile(scale: Scale, write_json: bool, write_trace: bool) {
    println!("PROFILE: time-resolved per-kernel records, interval samples, event trace\n");
    let mut config = GpuConfig::rtx3070();
    config.sample_interval_cycles = 20_000;
    config.trace = true;
    let mut profiles: Vec<(String, ProfileReport)> = Vec::new();
    let mut rows = Vec::new();
    for b in all_benchmarks(scale) {
        for cdp in [false, true] {
            let label = if cdp {
                format!("{}-CDP", b.abbrev())
            } else {
                b.abbrev().to_string()
            };
            let r = b.run(&config, cdp);
            assert!(r.verified, "{label} failed functional validation");
            let p = *r.profile.expect("profiling enabled by config");
            let children = p.kernels.iter().filter(|k| k.is_cdp_child()).count();
            rows.push(vec![
                label.clone(),
                format!("{}", p.kernels.len()),
                format!("{children}"),
                format!("{}", p.samples.len()),
                format!("{}", p.events.len()),
                format!("{}", p.dropped_total()),
                format!("{:.3}", p.stats.ipc()),
            ]);
            profiles.push((label, p));
        }
    }
    emit(
        "profile",
        &[
            "Bench",
            "kernels",
            "CDP children",
            "samples",
            "events",
            "dropped",
            "IPC",
        ],
        &rows,
    );
    let tag = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    if write_json {
        let mut w = JsonWriter::new();
        w.begin_obj();
        for (label, p) in &profiles {
            w.raw(label, &p.to_json());
        }
        w.end_obj();
        write_json_doc(&format!("profile_{tag}"), &w.finish());
    }
    if write_trace {
        let logs: Vec<(String, &[TraceEvent])> = profiles
            .iter()
            .map(|(label, p)| (label.clone(), p.events.as_slice()))
            .collect();
        let doc = chrome_trace_json(&logs, config.clock_ghz);
        if let Some(path) = write_json_doc(&format!("trace_{tag}"), &doc) {
            println!(
                "Open https://ui.perfetto.dev and load {} to view the timeline.",
                path.display()
            );
        }
    }
}

/// Run a named experiment ("table1" ... "fig22", "profile", or "all").
pub fn run(name: &str, scale: Scale) {
    match name {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(scale),
        "fig2" => fig2(scale),
        "fig3" => fig3(scale),
        "fig4" => fig4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" | "fig14" | "fig13_14" => fig13_14(scale),
        "fig15" => fig15(scale),
        "fig16" | "fig17" | "fig18" | "fig16_17_18" => fig16_17_18(scale),
        "fig19" => fig19(scale),
        "fig20" => fig20(scale),
        "fig21" => fig21(scale),
        "fig22" => fig22(scale),
        "ablation" => ablation(scale),
        "extension" => extension_traceback(scale),
        "profile" => profile(scale, true, true),
        "all" => {
            for n in ALL_EXPERIMENTS {
                println!("\n=== {n} ===\n");
                run(n, scale);
            }
        }
        other => eprintln!("unknown experiment: {other}"),
    }
}

/// All experiment names in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13_14",
    "fig15",
    "fig16_17_18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "ablation",
    "extension",
    "profile",
];
