//! # ggpu-bench — the Genomics-GPU figure/table regeneration harness
//!
//! The [`figures`] module regenerates every table (I-III) and figure
//! (2-22) of the paper; the `figures` binary exposes them as subcommands:
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin figures -- all --scale small
//! cargo run --release -p ggpu-bench --bin figures -- fig12 fig13 fig14
//! ```
//!
//! The [`measure`] module is the engine's own performance-measurement
//! pipeline (declarative benchmark matrix, append-only record store
//! with provenance, noise-aware regression diffing), fronted by the
//! `ggpu-bench` binary:
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin ggpu-bench -- run --quick
//! cargo run --release -p ggpu-bench --bin ggpu-bench -- report
//! cargo run --release -p ggpu-bench --bin ggpu-bench -- cmp --baseline results/records
//! ```
//!
//! Criterion microbenchmarks of the CPU substrate live under `benches/`.

#![forbid(unsafe_code)]

pub mod figures;
pub mod measure;

use std::path::PathBuf;

/// Directory machine-readable outputs (CSV/JSON/records) land in.
///
/// `GGPU_RESULTS_DIR` overrides; the default is the workspace-root
/// `results/` directory, resolved against the compiled-in crate path so
/// every binary and bench agrees on one location regardless of the
/// invocation cwd. This is the single copy of a resolution that used to
/// be duplicated across five tools.
pub fn results_dir() -> PathBuf {
    std::env::var_os("GGPU_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// The append-only measurement store, `<results_dir()>/records/`.
pub fn records_dir() -> PathBuf {
    results_dir().join("records")
}
