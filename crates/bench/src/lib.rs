//! # ggpu-bench — the Genomics-GPU figure/table regeneration harness
//!
//! The [`figures`] module regenerates every table (I-III) and figure
//! (2-22) of the paper; the `figures` binary exposes them as subcommands:
//!
//! ```text
//! cargo run --release -p ggpu-bench --bin figures -- all --scale small
//! cargo run --release -p ggpu-bench --bin figures -- fig12 fig13 fig14
//! ```
//!
//! Criterion microbenchmarks of the CPU substrate live under `benches/`.

#![forbid(unsafe_code)]

pub mod figures;
