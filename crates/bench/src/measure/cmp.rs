//! Noise-aware regression diffing between two record sets.
//!
//! For every gated cell present in both sets, the detector compares
//! medians under a per-cell noise bound:
//!
//! ```text
//! bound = max(rel_bound, 3 × (rel_mad_baseline + rel_mad_new))
//! ```
//!
//! `rel_bound` is the configured minimum (30% for wall-clock throughput
//! — the old CI gate's 70%-of-baseline rule — and 25% for deterministic
//! cycle latencies); the MAD term widens it when either measurement was
//! actually noisy, so a jittery host cannot produce a phantom
//! regression that a quiet host would not. A change beyond the bound in
//! the *bad* direction is a regression; beyond it in the good direction
//! is reported as an improvement (worth refreshing the baseline).
//! Records with an absolute floor (parallel speedup ≥ 0.9) additionally
//! fail whenever the new median is below the floor, baseline or not.

use std::fmt::Write as _;

use ggpu_core::render_table;

use super::record::{newest_per_cell, Direction, Record};

/// How many MADs of combined spread count as "could be noise".
pub const MAD_WIDENING: f64 = 3.0;

/// Verdict for one compared cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise bound.
    Unchanged,
    /// Better than the noise bound allows by chance.
    Improved,
    /// Worse than the noise bound allows — fails the gate.
    Regressed,
    /// Below the record's absolute floor — fails the gate.
    BelowFloor,
    /// Present only in the new set (first measurement of a cell).
    NewOnly,
    /// Present only in the baseline (cell not measured this run).
    BaselineOnly,
    /// Informational metric; never gated.
    Info,
}

impl Verdict {
    fn tag(self) -> &'static str {
        match self {
            Verdict::Unchanged => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::BelowFloor => "BELOW FLOOR",
            Verdict::NewOnly => "new",
            Verdict::BaselineOnly => "unmeasured",
            Verdict::Info => "info",
        }
    }

    /// Whether this verdict fails the gate.
    pub fn fails(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::BelowFloor)
    }
}

/// One compared cell.
#[derive(Debug, Clone)]
pub struct CmpRow {
    /// Cell id.
    pub id: String,
    /// Metric name.
    pub metric: String,
    /// Unit of both medians.
    pub unit: String,
    /// Baseline median, when the cell exists there.
    pub base_median: Option<f64>,
    /// New median, when the cell was measured this run.
    pub new_median: Option<f64>,
    /// new/baseline ratio, when both exist and baseline is nonzero.
    pub ratio: Option<f64>,
    /// The noise bound the comparison used.
    pub bound: f64,
    /// Outcome.
    pub verdict: Verdict,
}

/// The full diff of two record sets.
#[derive(Debug, Clone)]
pub struct CmpReport {
    /// One row per `(id, metric)` key in either set, sorted by id.
    pub rows: Vec<CmpRow>,
}

impl CmpReport {
    /// Number of gate-failing rows.
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict.fails()).count()
    }

    /// Render the diff as a table plus a one-line summary.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.id.clone(),
                    r.metric.clone(),
                    r.base_median.map(|v| format!("{v:.1}")).unwrap_or_default(),
                    r.new_median.map(|v| format!("{v:.1}")).unwrap_or_default(),
                    r.ratio.map(|v| format!("{v:.3}")).unwrap_or_default(),
                    format!("{:.3}", r.bound),
                    r.verdict.tag().to_string(),
                ]
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            render_table(
                &["cell", "metric", "baseline", "new", "ratio", "bound", "verdict"],
                &rows
            )
        );
        let fails = self.failures();
        let improved = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improved)
            .count();
        let _ = writeln!(
            out,
            "cmp: {} cells compared, {} regressions, {} improvements",
            self.rows.len(),
            fails,
            improved
        );
        out
    }
}

fn rel_mad(median: f64, mad: f64) -> f64 {
    if median.abs() < f64::EPSILON {
        0.0
    } else {
        mad / median.abs()
    }
}

fn compare_pair(base: &Record, new: &Record) -> CmpRow {
    let bound = new.rel_bound.max(
        MAD_WIDENING
            * (rel_mad(base.summary.median, base.summary.mad)
                + rel_mad(new.summary.median, new.summary.mad)),
    );
    let ratio = if base.summary.median.abs() > f64::EPSILON {
        Some(new.summary.median / base.summary.median)
    } else {
        None
    };
    let verdict = if new.direction == Direction::Info {
        Verdict::Info
    } else if new.abs_floor.is_some_and(|f| new.summary.median < f) {
        Verdict::BelowFloor
    } else {
        match (new.direction, ratio) {
            (Direction::Higher, Some(r)) if r < 1.0 - bound => Verdict::Regressed,
            (Direction::Higher, Some(r)) if r > 1.0 + bound => Verdict::Improved,
            (Direction::Lower, Some(r)) if r > 1.0 + bound => Verdict::Regressed,
            (Direction::Lower, Some(r)) if r < 1.0 - bound => Verdict::Improved,
            _ => Verdict::Unchanged,
        }
    };
    CmpRow {
        id: new.id.clone(),
        metric: new.metric.clone(),
        unit: new.unit.clone(),
        base_median: Some(base.summary.median),
        new_median: Some(new.summary.median),
        ratio,
        bound,
        verdict,
    }
}

fn unmatched(r: &Record, verdict: Verdict) -> CmpRow {
    // A brand-new gated cell with an absolute floor still has to clear
    // it — the speedup gate must hold on the very first measurement.
    let verdict = if verdict == Verdict::NewOnly
        && r.direction != Direction::Info
        && r.abs_floor.is_some_and(|f| r.summary.median < f)
    {
        Verdict::BelowFloor
    } else {
        verdict
    };
    let (base_median, new_median) = if verdict == Verdict::BaselineOnly {
        (Some(r.summary.median), None)
    } else {
        (None, Some(r.summary.median))
    };
    CmpRow {
        id: r.id.clone(),
        metric: r.metric.clone(),
        unit: r.unit.clone(),
        base_median,
        new_median,
        ratio: None,
        bound: r.rel_bound,
        verdict,
    }
}

/// Diff `new` against `baseline`. Both sides are first collapsed to the
/// newest record per `(id, metric)` cell, so whole-store inputs work.
pub fn compare(baseline: &[Record], new: &[Record]) -> CmpReport {
    let base = newest_per_cell(baseline);
    let new = newest_per_cell(new);
    let mut rows = Vec::new();
    for n in &new {
        match base.iter().find(|b| b.id == n.id && b.metric == n.metric) {
            Some(b) => rows.push(compare_pair(b, n)),
            None => rows.push(unmatched(n, Verdict::NewOnly)),
        }
    }
    for b in &base {
        if !new.iter().any(|n| n.id == b.id && n.metric == b.metric) {
            rows.push(unmatched(b, Verdict::BaselineOnly));
        }
    }
    rows.sort_by(|a, b| a.id.cmp(&b.id).then(a.metric.cmp(&b.metric)));
    CmpReport { rows }
}
