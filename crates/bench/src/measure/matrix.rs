//! The declarative benchmark matrix: `workload × scale × engine config`.
//!
//! Cells are *data*, not code — the runner executes whatever the matrix
//! declares, so adding a workload, a thread count, or a load level is a
//! one-line change here and every downstream consumer (`run`, `report`,
//! `cmp`, CI) picks it up. Two suites:
//!
//! * **engine** — raw cycle-engine throughput on the PR-5 probe
//!   workloads (SW plain DP, NvB FM-index, STAR with CDP), swept over
//!   worker threads, fast-forward on/off, and stream-isolation.
//! * **serve** — sustained-traffic serving throughput: the seeded job
//!   mix offered to [`ggpu_serve::Service`] at a fixed per-round load,
//!   swept over load level and device count (multi-GPU scaling of the
//!   serving path).

use ggpu_core::Scale;

use super::record::EngineAxes;

/// `(abbrev, cdp)` engine probe workloads — the same trio the PR 5
/// throughput bench established: plain data-parallel DP, FM-index
/// binning + search, and CDP device-side launches.
pub const ENGINE_WORKLOADS: [(&str, bool); 3] = [("SW", false), ("NvB", false), ("STAR", true)];

/// Worker-thread count for the parallel-engine cells.
pub const PARALLEL_THREADS: usize = 4;

/// What a cell runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// One suite benchmark, timed end to end.
    Engine {
        /// Benchmark abbreviation (`SW`, `NvB`, `STAR`).
        abbrev: &'static str,
        /// Run the CDP variant.
        cdp: bool,
    },
    /// The sustained-traffic serving benchmark at one offered load.
    Serve {
        /// Jobs offered per scheduling round; admission rejections are
        /// dropped (not re-offered), so this is a true offered load.
        offered_per_round: usize,
        /// Total jobs offered over the run.
        jobs: usize,
    },
}

/// One benchmark-matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Stable cell id (`engine/SW/tiny/t1+ff`, `serve/tiny/load6/t1+ff`).
    pub id: String,
    /// What to run.
    pub kind: CellKind,
    /// Input scale.
    pub scale: Scale,
    /// Engine-configuration axes.
    pub axes: EngineAxes,
    /// Timed iterations per cell.
    pub iters: u32,
    /// Discarded warmup runs per cell.
    pub warmup: u32,
}

/// Render a scale the way record files spell it.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn engine_cell(
    abbrev: &'static str,
    cdp: bool,
    scale: Scale,
    axes: EngineAxes,
    iters: u32,
) -> Cell {
    Cell {
        id: format!("engine/{abbrev}/{}/{}", scale_tag(scale), axes.label()),
        kind: CellKind::Engine { abbrev, cdp },
        scale,
        axes,
        iters,
        warmup: 1,
    }
}

fn serve_cell(load: usize, jobs: usize, devices: usize, scale: Scale, iters: u32) -> Cell {
    let axes = EngineAxes {
        n_devices: devices,
        ..EngineAxes::base()
    };
    Cell {
        id: format!("serve/{}/load{load}/{}", scale_tag(scale), axes.label()),
        kind: CellKind::Serve {
            offered_per_round: load,
            jobs,
        },
        scale,
        axes,
        iters,
        warmup: 1,
    }
}

/// The full benchmark matrix. `quick` is the CI profile: tiny scale and
/// fewer iterations/loads, but the same axes, so quick records remain
/// cell-comparable with the committed quick baseline.
pub fn matrix(quick: bool) -> Vec<Cell> {
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    let engine_iters = if quick { 2 } else { 5 };
    let serve_iters = if quick { 2 } else { 3 };
    let mut cells = Vec::new();

    // Engine suite: every probe workload at serial/parallel fast-forward
    // plus a fast-forward-off point quantifying what the skipper buys.
    for (abbrev, cdp) in ENGINE_WORKLOADS {
        for axes in [
            EngineAxes::base(),
            EngineAxes {
                sim_threads: PARALLEL_THREADS,
                ..EngineAxes::base()
            },
            EngineAxes {
                fast_forward: false,
                ..EngineAxes::base()
            },
        ] {
            cells.push(engine_cell(abbrev, cdp, scale, axes, engine_iters));
        }
    }
    // One stream-isolation point: canonical per-kernel boundaries cost
    // a two-phase drain per kernel; this cell keeps that cost measured.
    cells.push(engine_cell(
        "SW",
        false,
        scale,
        EngineAxes {
            stream_isolation: true,
            ..EngineAxes::base()
        },
        engine_iters,
    ));

    // Serve suite: offered load sweep × device count. Loads are chosen
    // around the service's drain rate (3 workers × batches of 4) so the
    // top level saturates — the shed path is part of what is measured.
    let (loads, devices, jobs): (&[usize], &[usize], usize) = if quick {
        (&[2, 6], &[1], 24)
    } else {
        (&[2, 6, 24], &[1, 2], 96)
    };
    for &d in devices {
        for &load in loads {
            cells.push(serve_cell(load, jobs, d, scale, serve_iters));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_ids_are_unique() {
        for quick in [true, false] {
            let m = matrix(quick);
            let mut ids: Vec<&str> = m.iter().map(|c| c.id.as_str()).collect();
            ids.sort_unstable();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n, "duplicate cell ids in matrix");
        }
    }

    #[test]
    fn quick_matrix_covers_all_engine_workloads() {
        let m = matrix(true);
        for (abbrev, _) in ENGINE_WORKLOADS {
            assert!(
                m.iter()
                    .any(|c| matches!(c.kind, CellKind::Engine { abbrev: a, .. } if a == abbrev)),
                "quick matrix must cover {abbrev}"
            );
        }
        assert!(m.iter().any(|c| matches!(c.kind, CellKind::Serve { .. })));
    }
}
