//! `measure` — rebar-grade performance observability for the engine.
//!
//! The paper this suite reproduces is, at bottom, a *measurement
//! methodology*; this module applies the same discipline to the
//! engine's own performance (following the rebar harness's
//! record/diff design):
//!
//! * [`matrix`] — declarative benchmark definitions:
//!   `workload × scale × engine config` cells over the engine probe
//!   workloads and the sustained-traffic serving benchmark.
//! * [`stats`] — warmup + N timed iterations per cell, summarized by
//!   median and MAD instead of single-shot numbers.
//! * [`record`] — one provenance-stamped (commit, dirty flag, rustc,
//!   host parallelism, config hash) JSONL record per measurement, in an
//!   **append-only** store under `results/records/` that accumulates
//!   the performance trajectory commit over commit.
//! * [`report`] — ranked comparison tables and speedup ratios across
//!   engine configurations, deterministic for a given store.
//! * [`cmp`] — noise-aware regression diffing: two record sets (or the
//!   latest run vs the committed baseline) compared under per-cell
//!   noise bounds; the `ggpu-bench cmp` CLI exit code is the CI gate.
//!
//! The `ggpu-bench` binary (`run | report | cmp`) is the front end.

pub mod cmp;
pub mod matrix;
pub mod provenance;
pub mod record;
pub mod report;
pub mod runner;
pub mod stats;

pub use cmp::{compare, CmpReport, Verdict};
pub use matrix::{matrix, Cell, CellKind};
pub use provenance::Provenance;
pub use record::{append, latest_run, load, newest_per_cell, Direction, EngineAxes, Record};
pub use runner::{run_matrix, RunOptions};
pub use stats::Summary;
