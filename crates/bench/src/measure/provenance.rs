//! Provenance stamping for measurement records.
//!
//! A throughput number with no record of *what* was measured is noise:
//! the commit, whether the tree was dirty, the compiler, and the host's
//! parallelism all move the needle. Every record carries this stamp so
//! the append-only store reads as a commit-over-commit trajectory.

use std::process::Command;

/// The environment a record was measured in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// `git rev-parse HEAD` of the workspace, or `"unknown"` outside a
    /// repository (e.g. a source tarball).
    pub git_commit: String,
    /// Whether the working tree had uncommitted changes — a dirty
    /// measurement cannot be reproduced from its commit alone.
    pub git_dirty: bool,
    /// `rustc -V` of the toolchain on `PATH`, or `"unknown"`.
    pub rustc: String,
    /// `std::thread::available_parallelism()` on the measuring host;
    /// multi-thread speedups are meaningless without it.
    pub host_parallelism: u64,
    /// Seconds since the Unix epoch at measurement time; orders runs
    /// within the store.
    pub unix_time: u64,
}

fn cmd_stdout(program: &str, args: &[&str]) -> Option<String> {
    // Anchor git at the compiled-in crate directory so provenance
    // resolves the workspace repo regardless of the invocation cwd.
    let out = Command::new(program)
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

/// Collect the provenance stamp for a run. Never fails: fields that
/// cannot be determined degrade to `"unknown"` / `false`.
pub fn collect() -> Provenance {
    Provenance {
        git_commit: cmd_stdout("git", &["rev-parse", "HEAD"])
            .unwrap_or_else(|| "unknown".to_string()),
        git_dirty: cmd_stdout("git", &["status", "--porcelain"])
            .map(|s| !s.is_empty())
            .unwrap_or(false),
        rustc: cmd_stdout("rustc", &["-V"]).unwrap_or_else(|| "unknown".to_string()),
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

/// A short run identifier: the abbreviated commit plus the epoch second,
/// shared by every record appended by one `ggpu-bench run` invocation so
/// `cmp` can address "the latest run" in the store.
pub fn run_id(prov: &Provenance) -> String {
    let commit = if prov.git_commit.len() >= 8 {
        &prov.git_commit[..8]
    } else {
        "unknown"
    };
    format!("{commit}-{}", prov.unix_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_degrades_but_never_panics() {
        let p = collect();
        assert!(p.host_parallelism >= 1);
        assert!(!p.git_commit.is_empty());
        assert!(!p.rustc.is_empty());
    }

    #[test]
    fn run_id_shape() {
        let p = Provenance {
            git_commit: "0123456789abcdef".into(),
            git_dirty: false,
            rustc: "rustc 1.0".into(),
            host_parallelism: 4,
            unix_time: 1700000000,
        };
        assert_eq!(run_id(&p), "01234567-1700000000");
    }
}
