//! The measurement record and its append-only JSONL store.
//!
//! One line of `results/records/measurements.jsonl` is one [`Record`]:
//! a single metric of a single benchmark-matrix cell, summarized over
//! its timed iterations and stamped with full provenance. The store is
//! **append-only** — `ggpu-bench run` only ever adds lines — so the file
//! accumulates the engine's performance trajectory commit over commit
//! instead of being overwritten like the old `bench_engine.json`.
//!
//! `results/records/baseline.jsonl` holds the curated record set the CI
//! regression gate compares against (same format, one blessed run).

use std::io::Write as _;
use std::path::Path;

use ggpu_core::json::{Json, JsonWriter};

use super::provenance::Provenance;
use super::stats::Summary;

/// Store-format version, bumped on incompatible record changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Which way "better" points for a metric, which is what makes a diff a
/// *regression* rather than a mere change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput); gated.
    Higher,
    /// Smaller is better (latency); gated.
    Lower,
    /// Contextual only (e.g. shed rate at a deliberately saturating
    /// load); never gates CI.
    Info,
}

impl Direction {
    /// Stable serialization tag.
    pub fn tag(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Info => "info",
        }
    }

    /// Parse a serialized tag.
    pub fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "higher" => Ok(Direction::Higher),
            "lower" => Ok(Direction::Lower),
            "info" => Ok(Direction::Info),
            other => Err(format!("unknown direction `{other}`")),
        }
    }
}

/// The engine-configuration axes of the benchmark matrix. Every record
/// carries the full axis vector so record sets from different matrices
/// stay comparable cell-by-cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineAxes {
    /// Requested cycle-engine worker threads.
    pub sim_threads: usize,
    /// Idle-cycle fast-forward on/off.
    pub fast_forward: bool,
    /// Devices in the node (serving cells shard across them).
    pub n_devices: usize,
    /// Canonical per-kernel stream boundaries on/off.
    pub stream_isolation: bool,
}

impl EngineAxes {
    /// The single-device, single-thread, fast-forward-on default cell.
    pub fn base() -> EngineAxes {
        EngineAxes {
            sim_threads: 1,
            fast_forward: true,
            n_devices: 1,
            stream_isolation: false,
        }
    }

    /// Compact human-readable label, also part of the cell id:
    /// `t4+ff`, `t1-ff`, `t1+ff+iso`, `t1+ff/d2`.
    pub fn label(&self) -> String {
        let mut s = format!(
            "t{}{}",
            self.sim_threads,
            if self.fast_forward { "+ff" } else { "-ff" }
        );
        if self.stream_isolation {
            s.push_str("+iso");
        }
        if self.n_devices > 1 {
            s.push_str(&format!("/d{}", self.n_devices));
        }
        s
    }
}

/// FNV-1a 64-bit, the same dependency-free hash the rest of the suite
/// hand-rolls where it needs one.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One measurement: a single metric of a single matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Cell id, e.g. `engine/SW/tiny/t1+ff` or `serve/tiny/load6/t1+ff`.
    pub id: String,
    /// Benchmark family: `engine` or `serve`.
    pub suite: String,
    /// Workload within the family (`SW`, `NvB`, `STAR`, `traffic`).
    pub workload: String,
    /// Input scale (`tiny`/`small`/`paper`).
    pub scale: String,
    /// Metric name (`cycles_per_sec`, `requests_per_sec`, ...).
    pub metric: String,
    /// Unit the samples are in.
    pub unit: String,
    /// Gate direction.
    pub direction: Direction,
    /// Configured minimum noise bound (relative). The detector widens it
    /// by the measured noise but never tightens below this.
    pub rel_bound: f64,
    /// Absolute floor for `Higher` metrics (e.g. parallel speedup 0.9):
    /// dropping below it fails even with no baseline counterpart.
    pub abs_floor: Option<f64>,
    /// Summarized timed iterations.
    pub summary: Summary,
    /// Warmup runs discarded before sampling.
    pub warmup: u32,
    /// Engine-configuration axes of the cell.
    pub axes: EngineAxes,
    /// Auxiliary deterministic counters (simulated cycles, skipped
    /// cycles, shed counts, ...), for reading — not gating.
    pub extra: Vec<(String, f64)>,
    /// Identifier shared by all records of one `run` invocation.
    pub run_id: String,
    /// Measurement-environment stamp.
    pub prov: Provenance,
}

impl Record {
    /// Hash of everything that defines the cell (id, metric, axes, and
    /// scale), so two records are comparable iff their hashes match.
    pub fn config_hash(&self) -> String {
        let canon = format!(
            "{}|{}|{}|{}|threads={},ff={},devices={},iso={}",
            self.id,
            self.metric,
            self.scale,
            self.workload,
            self.axes.sim_threads,
            self.axes.fast_forward,
            self.axes.n_devices,
            self.axes.stream_isolation,
        );
        format!("{:016x}", fnv1a64(&canon))
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj()
            .u64("schema", SCHEMA_VERSION)
            .str("id", &self.id)
            .str("suite", &self.suite)
            .str("workload", &self.workload)
            .str("scale", &self.scale)
            .str("metric", &self.metric)
            .str("unit", &self.unit)
            .str("direction", self.direction.tag())
            .f64("rel_bound", self.rel_bound);
        match self.abs_floor {
            Some(f) => w.f64("abs_floor", f),
            None => w.raw("abs_floor", "null"),
        };
        w.f64("median", self.summary.median)
            .f64("mad", self.summary.mad)
            .begin_arr_key("samples");
        for s in &self.summary.samples {
            w.elem_f64(*s);
        }
        w.end_arr()
            .u64("warmup", self.warmup as u64)
            .begin_obj_key("config")
            .u64("sim_threads", self.axes.sim_threads as u64)
            .bool("fast_forward", self.axes.fast_forward)
            .u64("n_devices", self.axes.n_devices as u64)
            .bool("stream_isolation", self.axes.stream_isolation)
            .end_obj()
            .str("config_hash", &self.config_hash())
            .begin_obj_key("extra");
        for (k, v) in &self.extra {
            w.f64(k, *v);
        }
        w.end_obj()
            .str("run_id", &self.run_id)
            .str("git_commit", &self.prov.git_commit)
            .bool("git_dirty", self.prov.git_dirty)
            .str("rustc", &self.prov.rustc)
            .u64("host_parallelism", self.prov.host_parallelism)
            .u64("unix_time", self.prov.unix_time)
            .end_obj();
        w.finish()
    }

    /// Parse one JSONL line back into a record.
    pub fn from_json_line(line: &str) -> Result<Record, String> {
        let v = Json::parse(line).map_err(|e| format!("bad record JSON: {e}"))?;
        let schema = req_u64(&v, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "record schema {schema} != supported {SCHEMA_VERSION}"
            ));
        }
        let cfg = v.get("config").ok_or("missing `config`")?;
        let axes = EngineAxes {
            sim_threads: req_u64(cfg, "sim_threads")? as usize,
            fast_forward: req_bool(cfg, "fast_forward")?,
            n_devices: req_u64(cfg, "n_devices")? as usize,
            stream_isolation: req_bool(cfg, "stream_isolation")?,
        };
        let samples = v
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or("missing `samples`")?
            .iter()
            .map(|s| s.as_f64().ok_or("non-numeric sample"))
            .collect::<Result<Vec<f64>, _>>()?;
        let extra = match v.get("extra") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, ev)| ev.as_f64().map(|x| (k.clone(), x)).ok_or("bad extra"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        let rec = Record {
            id: req_str(&v, "id")?,
            suite: req_str(&v, "suite")?,
            workload: req_str(&v, "workload")?,
            scale: req_str(&v, "scale")?,
            metric: req_str(&v, "metric")?,
            unit: req_str(&v, "unit")?,
            direction: Direction::parse(&req_str(&v, "direction")?)?,
            rel_bound: req_f64(&v, "rel_bound")?,
            abs_floor: match v.get("abs_floor") {
                Some(Json::Null) | None => None,
                Some(j) => Some(j.as_f64().ok_or("bad abs_floor")?),
            },
            summary: Summary {
                median: req_f64(&v, "median")?,
                mad: req_f64(&v, "mad")?,
                samples,
            },
            warmup: req_u64(&v, "warmup")? as u32,
            axes,
            extra,
            run_id: req_str(&v, "run_id")?,
            prov: Provenance {
                git_commit: req_str(&v, "git_commit")?,
                git_dirty: req_bool(&v, "git_dirty")?,
                rustc: req_str(&v, "rustc")?,
                host_parallelism: req_u64(&v, "host_parallelism")?,
                unix_time: req_u64(&v, "unix_time")?,
            },
        };
        // The hash rides along for external tooling; verify it matches
        // the fields so a hand-edited line cannot masquerade as a
        // comparable cell.
        let stored = req_str(&v, "config_hash")?;
        if stored != rec.config_hash() {
            return Err(format!(
                "config_hash mismatch for `{}`: stored {stored}, computed {}",
                rec.id,
                rec.config_hash()
            ));
        }
        Ok(rec)
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer `{key}`"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number `{key}`"))
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool `{key}`")),
    }
}

// ---- the store -------------------------------------------------------------

/// Append `records` as JSONL lines to `path`, creating parent
/// directories as needed. Existing content is never rewritten.
pub fn append(path: &Path, records: &[Record]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = String::new();
    for r in records {
        buf.push_str(&r.to_json_line());
        buf.push('\n');
    }
    f.write_all(buf.as_bytes())
}

/// Load every record in a JSONL file, in file order. Blank lines are
/// skipped; a malformed line is an error (a corrupt store should fail
/// loudly, not silently drop history).
pub fn load(path: &Path) -> Result<Vec<Record>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            Record::from_json_line(line)
                .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?,
        );
    }
    Ok(out)
}

/// The records of the most recent run in a (possibly multi-run) set:
/// the run containing the record with the largest `unix_time`
/// (`run_id` breaks ties deterministically).
pub fn latest_run(records: &[Record]) -> Vec<Record> {
    let Some(newest) = records
        .iter()
        .max_by(|a, b| (a.prov.unix_time, &a.run_id).cmp(&(b.prov.unix_time, &b.run_id)))
        .map(|r| r.run_id.clone())
    else {
        return Vec::new();
    };
    records
        .iter()
        .filter(|r| r.run_id == newest)
        .cloned()
        .collect()
}

/// Collapse a multi-run set to the newest record per `(id, metric)` key
/// — what `report` tables and `cmp` sides operate on.
pub fn newest_per_cell(records: &[Record]) -> Vec<Record> {
    let mut newest: Vec<Record> = Vec::new();
    for r in records {
        match newest
            .iter_mut()
            .find(|n| n.id == r.id && n.metric == r.metric)
        {
            // Later lines win ties: the store is append-only, so file
            // order is measurement order.
            Some(n) if n.prov.unix_time <= r.prov.unix_time => *n = r.clone(),
            Some(_) => {}
            None => newest.push(r.clone()),
        }
    }
    newest
}
