//! Ranked comparison tables over a record set.
//!
//! `report` collapses the (multi-run) store to the newest record per
//! cell and renders per-suite tables: engine configurations ranked by
//! throughput with speedup ratios against the best, and the serving
//! load sweep with shed rates and latency percentiles. Rendering is a
//! pure function of the records — byte-identical across invocations on
//! the same store — so its output can be diffed, committed, and tested.

use std::fmt::Write as _;

use ggpu_core::render_table;

use super::record::{newest_per_cell, Record};

fn fmt_rate(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn engine_section(out: &mut String, records: &[Record]) {
    let mut cells: Vec<&Record> = records
        .iter()
        .filter(|r| r.suite == "engine" && r.metric == "cycles_per_sec")
        .collect();
    if cells.is_empty() {
        return;
    }
    // Rank within (scale, workload): fastest configuration first.
    cells.sort_by(|a, b| {
        (&a.scale, &a.workload)
            .cmp(&(&b.scale, &b.workload))
            .then(
                b.summary
                    .median
                    .partial_cmp(&a.summary.median)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.id.cmp(&b.id))
    });
    let mut rows = Vec::new();
    let mut group: Option<(String, String)> = None;
    let mut best = 0.0f64;
    for r in &cells {
        let key = (r.scale.clone(), r.workload.clone());
        if group.as_ref() != Some(&key) {
            group = Some(key);
            best = r.summary.median;
        }
        let ratio = if r.summary.median > 0.0 {
            best / r.summary.median
        } else {
            0.0
        };
        let skipped = r
            .extra
            .iter()
            .find(|(k, _)| k == "fast_forward_skipped_cycles")
            .map(|(_, v)| format!("{v:.0}"))
            .unwrap_or_default();
        rows.push(vec![
            r.workload.clone(),
            r.scale.clone(),
            r.axes.label(),
            fmt_rate(r.summary.median),
            fmt_rate(r.summary.mad),
            format!("{ratio:.2}"),
            r.summary.samples.len().to_string(),
            skipped,
        ]);
    }
    let _ = writeln!(
        out,
        "== engine throughput (ranked per workload; ratio = best/this)"
    );
    let _ = writeln!(
        out,
        "{}",
        render_table(
            &[
                "workload",
                "scale",
                "config",
                "median cyc/s",
                "mad",
                "ratio",
                "n",
                "ff_skipped",
            ],
            &rows
        )
    );
    for r in records.iter().filter(|r| r.metric == "speedup_n_over_1") {
        let per: Vec<String> = r
            .extra
            .iter()
            .map(|(k, v)| format!("{}={v:.2}", k.trim_start_matches("speedup_")))
            .collect();
        let _ = writeln!(
            out,
            "best parallel speedup ({}): {:.2} [floor {}] ({})\n",
            r.scale,
            r.summary.median,
            r.abs_floor.map(|f| f.to_string()).unwrap_or_default(),
            per.join(", "),
        );
    }
}

fn serve_section(out: &mut String, records: &[Record]) {
    let mut ids: Vec<&Record> = records
        .iter()
        .filter(|r| r.suite == "serve" && r.metric == "requests_per_sec")
        .collect();
    if ids.is_empty() {
        return;
    }
    ids.sort_by(|a, b| {
        (&a.scale, a.axes.n_devices)
            .cmp(&(&b.scale, b.axes.n_devices))
            .then(a.id.len().cmp(&b.id.len()))
            .then(a.id.cmp(&b.id))
    });
    let metric_of = |id: &str, metric: &str| {
        records
            .iter()
            .find(|r| r.id == id && r.metric == metric)
            .map(|r| r.summary.median)
    };
    let rows: Vec<Vec<String>> = ids
        .iter()
        .map(|r| {
            let offered = r
                .extra
                .iter()
                .find(|(k, _)| k == "offered")
                .map(|(_, v)| format!("{v:.0}"))
                .unwrap_or_default();
            vec![
                r.id.clone(),
                r.axes.n_devices.to_string(),
                offered,
                fmt_rate(r.summary.median),
                fmt_rate(r.summary.mad),
                metric_of(&r.id, "shed_rate")
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_default(),
                metric_of(&r.id, "e2e_p50_cycles")
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_default(),
                metric_of(&r.id, "e2e_p99_cycles")
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_default(),
            ]
        })
        .collect();
    let _ = writeln!(out, "== serving sustained traffic (offered-load sweep)");
    let _ = writeln!(
        out,
        "{}",
        render_table(
            &[
                "cell",
                "devices",
                "offered",
                "median req/s",
                "mad",
                "shed_rate",
                "p50 e2e cyc",
                "p99 e2e cyc",
            ],
            &rows
        )
    );
}

/// Render the full ranked report for `records` (any mix of runs; the
/// newest record per cell wins). Deterministic for a given input.
pub fn render(records: &[Record]) -> String {
    let newest = newest_per_cell(records);
    let mut out = String::new();
    let superseded = records.len() - newest.len();
    let _ = writeln!(
        out,
        "{} records ({} current cells, {} superseded by newer runs)\n",
        records.len(),
        newest.len(),
        superseded
    );
    engine_section(&mut out, &newest);
    serve_section(&mut out, &newest);
    out
}
