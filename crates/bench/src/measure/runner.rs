//! Executes benchmark-matrix cells with measurement discipline: warmup
//! runs (discarded) followed by N individually timed iterations, each
//! iteration yielding one sample of the cell's headline metric.
//!
//! The runner is the only module that touches the simulator; everything
//! downstream (`report`, `cmp`, the store) sees only [`Record`]s.

use std::time::Instant;

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_serve::traffic::{self, OfferedLoad};
use ggpu_serve::Service;
use rand::SeedableRng;

use super::matrix::{matrix, scale_tag, Cell, CellKind, ENGINE_WORKLOADS, PARALLEL_THREADS};
use super::provenance::{self, Provenance};
use super::record::{Direction, EngineAxes, Record};
use super::stats::Summary;

/// Default relative noise bound for wall-clock throughput metrics — the
/// 70%-of-baseline tolerance the old Python CI gate used, carried over
/// as the initial bound until measured noise says otherwise.
pub const THROUGHPUT_REL_BOUND: f64 = 0.30;
/// Relative bound for simulated-cycle latency metrics. These are
/// deterministic (zero measured noise), so the bound only absorbs
/// legitimate code-change drift between baseline refreshes.
pub const LATENCY_REL_BOUND: f64 = 0.25;
/// Absolute floor on the best parallel-engine speedup — the old gate's
/// "the parallel engine must not collapse against the serial one".
pub const SPEEDUP_FLOOR: f64 = 0.9;
/// Seed of the serving benchmark's job mix.
pub const SERVE_SEED: u64 = 42;

/// Options for a matrix run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// CI profile: tiny scale, fewer iterations and load levels.
    pub quick: bool,
    /// Override timed iterations per cell.
    pub iters: Option<u32>,
    /// Override warmup runs per cell.
    pub warmup: Option<u32>,
    /// Only run cells whose id contains this substring.
    pub filter: Option<String>,
}

/// One timed engine run.
#[derive(Debug, Clone, Copy)]
pub struct EngineSample {
    /// Simulated kernel cycles of the run.
    pub cycles: u64,
    /// Cycles elided by idle-cycle fast-forward.
    pub skipped: u64,
    /// Wall-clock seconds of the run.
    pub secs: f64,
    /// Worker threads the engine actually used (host-clamped).
    pub resolved_threads: usize,
}

/// The device configuration engine cells run under: wider than
/// `test_small` so the SM phase dominates and sharding has work.
pub fn engine_gpu_config(axes: &EngineAxes) -> GpuConfig {
    GpuConfig {
        n_sms: 16,
        ..GpuConfig::test_small()
    }
    .with_sim_threads(axes.sim_threads)
    .with_fast_forward(axes.fast_forward)
    .with_stream_isolation(axes.stream_isolation)
}

/// Run one engine workload once under `axes` and time it. Panics if the
/// workload fails to verify — a wrong answer must never become a
/// throughput record.
pub fn run_engine_once(scale: Scale, abbrev: &str, cdp: bool, axes: &EngineAxes) -> EngineSample {
    let config = engine_gpu_config(axes);
    let b = benchmark(scale, abbrev).expect("workload is registered");
    let t0 = Instant::now();
    let r = b.run(&config, cdp);
    let secs = t0.elapsed().as_secs_f64();
    assert!(r.verified, "probe workload {abbrev} must verify");
    EngineSample {
        cycles: r.kernel_cycles,
        skipped: r.fast_forward_skipped_cycles,
        secs,
        resolved_threads: r.sim_threads,
    }
}

/// One timed serving run at a fixed offered load.
#[derive(Debug, Clone, Copy)]
pub struct ServeSample {
    /// Conservation-ledger summary after the drain.
    pub summary: traffic::TrafficSummary,
    /// Wall-clock seconds of the run (submission through drain).
    pub secs: f64,
    /// Median end-to-end latency, in device cycles (deterministic).
    pub e2e_p50: u64,
    /// Tail end-to-end latency, in device cycles (deterministic).
    pub e2e_p99: u64,
}

/// Drive a fresh service at `load` once and time it.
pub fn run_serve_once(load: &OfferedLoad, n_devices: usize) -> ServeSample {
    let mut rng = rand::rngs::StdRng::seed_from_u64(load.seed);
    let genome = ggpu_genomics::random_genome(traffic::GENOME_LEN, &mut rng)
        .codes()
        .to_vec();
    let mut cfg = traffic::base_config(&genome);
    cfg.n_devices = n_devices;
    let mut svc = Service::new(cfg).expect("build service");
    let t0 = Instant::now();
    let summary = traffic::drive(&mut svc, &genome, load).expect("device-wide fault");
    let secs = t0.elapsed().as_secs_f64();
    let report = svc.report();
    ServeSample {
        summary,
        secs,
        e2e_p50: report.global.e2e.percentile(50.0),
        e2e_p99: report.global.e2e.percentile(99.0),
    }
}

/// What a metric is called and how it gates, separated from where its
/// samples came from.
struct MetricSpec {
    metric: &'static str,
    unit: &'static str,
    direction: Direction,
    rel_bound: f64,
}

fn mk_record(
    cell: &Cell,
    workload: &str,
    spec: &MetricSpec,
    summary: Summary,
    extra: Vec<(String, f64)>,
    run_id: &str,
    prov: &Provenance,
) -> Record {
    Record {
        id: cell.id.clone(),
        suite: cell.id.split('/').next().unwrap_or("?").to_string(),
        workload: workload.to_string(),
        scale: scale_tag(cell.scale).to_string(),
        metric: spec.metric.to_string(),
        unit: spec.unit.to_string(),
        direction: spec.direction,
        rel_bound: spec.rel_bound,
        abs_floor: None,
        summary,
        warmup: cell.warmup,
        axes: cell.axes.clone(),
        extra,
        run_id: run_id.to_string(),
        prov: prov.clone(),
    }
}

fn run_engine_cell(
    cell: &Cell,
    abbrev: &str,
    cdp: bool,
    run_id: &str,
    prov: &Provenance,
) -> Record {
    for _ in 0..cell.warmup {
        run_engine_once(cell.scale, abbrev, cdp, &cell.axes);
    }
    let mut samples = Vec::with_capacity(cell.iters as usize);
    let mut last = None;
    for _ in 0..cell.iters {
        let s = run_engine_once(cell.scale, abbrev, cdp, &cell.axes);
        samples.push(s.cycles as f64 / s.secs.max(1e-9));
        last = Some(s);
    }
    let last = last.expect("at least one iteration");
    let extra = vec![
        ("simulated_cycles".to_string(), last.cycles as f64),
        (
            "fast_forward_skipped_cycles".to_string(),
            last.skipped as f64,
        ),
        (
            "resolved_sim_threads".to_string(),
            last.resolved_threads as f64,
        ),
    ];
    mk_record(
        cell,
        abbrev,
        &MetricSpec {
            metric: "cycles_per_sec",
            unit: "cyc/s",
            direction: Direction::Higher,
            rel_bound: THROUGHPUT_REL_BOUND,
        },
        Summary::of(samples),
        extra,
        run_id,
        prov,
    )
}

fn run_serve_cell(
    cell: &Cell,
    offered_per_round: usize,
    jobs: usize,
    run_id: &str,
    prov: &Provenance,
) -> Vec<Record> {
    let load = OfferedLoad {
        per_round: offered_per_round,
        total_jobs: jobs,
        seed: SERVE_SEED,
    };
    for _ in 0..cell.warmup {
        run_serve_once(&load, cell.axes.n_devices);
    }
    let mut rps = Vec::with_capacity(cell.iters as usize);
    let mut p50 = Vec::new();
    let mut p99 = Vec::new();
    let mut shed = Vec::new();
    let mut last = None;
    for _ in 0..cell.iters {
        let s = run_serve_once(&load, cell.axes.n_devices);
        rps.push(s.summary.completed as f64 / s.secs.max(1e-9));
        p50.push(s.e2e_p50 as f64);
        p99.push(s.e2e_p99 as f64);
        shed.push(s.summary.shed_rate());
        last = Some(s);
    }
    let last = last.expect("at least one iteration");
    let extra = vec![
        ("offered".to_string(), last.summary.offered as f64),
        ("admitted".to_string(), last.summary.admitted as f64),
        ("completed".to_string(), last.summary.completed as f64),
        ("rejected".to_string(), last.summary.rejected as f64),
        ("shed".to_string(), last.summary.shed as f64),
        ("rounds".to_string(), last.summary.rounds as f64),
    ];
    type SpecRow = (MetricSpec, Vec<f64>, Vec<(String, f64)>);
    let specs: [SpecRow; 4] = [
        (
            MetricSpec {
                metric: "requests_per_sec",
                unit: "req/s",
                direction: Direction::Higher,
                rel_bound: THROUGHPUT_REL_BOUND,
            },
            rps,
            extra.clone(),
        ),
        (
            MetricSpec {
                metric: "e2e_p50_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                rel_bound: LATENCY_REL_BOUND,
            },
            p50,
            Vec::new(),
        ),
        (
            MetricSpec {
                metric: "e2e_p99_cycles",
                unit: "cycles",
                direction: Direction::Lower,
                rel_bound: LATENCY_REL_BOUND,
            },
            p99,
            Vec::new(),
        ),
        (
            MetricSpec {
                metric: "shed_rate",
                unit: "fraction",
                direction: Direction::Info,
                rel_bound: 0.0,
            },
            shed,
            extra,
        ),
    ];
    specs
        .into_iter()
        .map(|(spec, samples, extra)| {
            mk_record(
                cell,
                "traffic",
                &spec,
                Summary::of(samples),
                extra,
                run_id,
                prov,
            )
        })
        .collect()
}

/// Derive the best parallel-engine speedup across workloads from the
/// already-measured engine cells, gated by [`SPEEDUP_FLOOR`].
fn derive_speedup(
    records: &[Record],
    quick: bool,
    run_id: &str,
    prov: &Provenance,
) -> Option<Record> {
    let scale = if quick { Scale::Tiny } else { Scale::Small };
    let serial = EngineAxes::base();
    let parallel = EngineAxes {
        sim_threads: PARALLEL_THREADS,
        ..EngineAxes::base()
    };
    let median_of = |workload: &str, axes: &EngineAxes| {
        records
            .iter()
            .find(|r| r.metric == "cycles_per_sec" && r.workload == workload && &r.axes == axes)
            .map(|r| r.summary.median)
    };
    let mut ratios = Vec::new();
    for (abbrev, _) in ENGINE_WORKLOADS {
        if let (Some(one), Some(par)) = (median_of(abbrev, &serial), median_of(abbrev, &parallel)) {
            if one > 0.0 {
                ratios.push((abbrev, par / one));
            }
        }
    }
    let (_, best) = ratios
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    let extra = ratios
        .iter()
        .map(|(w, r)| (format!("speedup_{w}"), *r))
        .collect();
    Some(Record {
        id: format!("engine/{}/best_parallel_speedup", scale_tag(scale)),
        suite: "engine".to_string(),
        workload: "all".to_string(),
        scale: scale_tag(scale).to_string(),
        metric: "speedup_n_over_1".to_string(),
        unit: "ratio".to_string(),
        direction: Direction::Higher,
        // The floor is the gate; the relative bound is left at 100% so a
        // host with fewer cores than the baseline's cannot fake a
        // regression (speedup is the one metric whose baseline value is
        // hardware-shaped, not engine-shaped).
        rel_bound: 1.0,
        abs_floor: Some(SPEEDUP_FLOOR),
        summary: Summary::of(vec![best]),
        warmup: 0,
        axes: parallel,
        extra,
        run_id: run_id.to_string(),
        prov: prov.clone(),
    })
}

/// Run every matrix cell selected by `opts` and return the records, in
/// matrix order (derived records last). Progress goes to stderr.
pub fn run_matrix(opts: &RunOptions) -> Vec<Record> {
    let prov = provenance::collect();
    let run_id = provenance::run_id(&prov);
    let mut records = Vec::new();
    let cells: Vec<Cell> = matrix(opts.quick)
        .into_iter()
        .filter(|c| {
            opts.filter
                .as_deref()
                .is_none_or(|needle| c.id.contains(needle))
        })
        .map(|mut c| {
            if let Some(n) = opts.iters {
                c.iters = n.max(1);
            }
            if let Some(w) = opts.warmup {
                c.warmup = w;
            }
            c
        })
        .collect();
    for cell in &cells {
        let t0 = Instant::now();
        match cell.kind {
            CellKind::Engine { abbrev, cdp } => {
                records.push(run_engine_cell(cell, abbrev, cdp, &run_id, &prov));
            }
            CellKind::Serve {
                offered_per_round,
                jobs,
            } => {
                records.extend(run_serve_cell(
                    cell,
                    offered_per_round,
                    jobs,
                    &run_id,
                    &prov,
                ));
            }
        }
        let done = records.last().expect("cell produced records");
        eprintln!(
            "[{}] {} iters (+{} warmup) in {:.1}s — {} {:.1} {}",
            cell.id,
            cell.iters,
            cell.warmup,
            t0.elapsed().as_secs_f64(),
            done.metric,
            done.summary.median,
            done.unit,
        );
    }
    if opts.filter.is_none() {
        if let Some(sp) = derive_speedup(&records, opts.quick, &run_id, &prov) {
            records.push(sp);
        }
    }
    records
}
