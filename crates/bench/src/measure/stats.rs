//! Robust summary statistics for noisy wall-clock measurements.
//!
//! Single-shot numbers (the pre-`measure` state of this harness) conflate
//! engine speed with host noise: a page-cache miss or a scheduler
//! preemption shows up as a phantom regression. Every matrix cell is
//! therefore measured as warmup runs plus N timed iterations, summarized
//! by the **median** (robust location) and the **MAD** (median absolute
//! deviation — robust spread), from which the regression detector derives
//! a per-record noise bound instead of guessing a global tolerance.

/// Median of `xs`. Empty input returns 0 (degenerate records are
/// filtered before they are stored, but the math should not panic).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation of `xs` around its median.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// A summarized sample set: the raw samples plus their median and MAD.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// The individual timed-iteration values, in measurement order.
    pub samples: Vec<f64>,
    /// Robust location.
    pub median: f64,
    /// Robust spread.
    pub mad: f64,
}

impl Summary {
    /// Summarize `samples` (median + MAD).
    pub fn of(samples: Vec<f64>) -> Summary {
        let median = median(&samples);
        let mad = mad(&samples);
        Summary {
            samples,
            median,
            mad,
        }
    }

    /// MAD relative to the median — the dimensionless noise figure the
    /// regression detector widens its bound by. 0 when the median is 0.
    pub fn rel_mad(&self) -> f64 {
        if self.median.abs() < f64::EPSILON {
            0.0
        } else {
            self.mad / self.median.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // One wild outlier moves the mean by >20x but the MAD barely.
        let clean = [100.0, 101.0, 99.0, 100.5, 99.5];
        let spiked = [100.0, 101.0, 99.0, 100.5, 2500.0];
        assert!(mad(&clean) <= 1.0);
        assert!(mad(&spiked) <= 1.0);
        assert_eq!(median(&spiked), 100.5);
    }

    #[test]
    fn rel_mad_dimensionless() {
        let s = Summary::of(vec![200.0, 220.0, 180.0]);
        assert_eq!(s.median, 200.0);
        assert_eq!(s.mad, 20.0);
        assert!((s.rel_mad() - 0.1).abs() < 1e-12);
    }
}
