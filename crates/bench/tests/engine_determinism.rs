//! The engine's determinism contract: for any `sim_threads`, a run is
//! **bit-identical** — same counters, same per-kernel records, same interval
//! samples, same event trace, same faults — to the single-threaded run.
//!
//! Exercised over real suite benchmarks (including a CDP one, so device-side
//! launches cross thread shards) and over a fault-injection run, where the
//! deadlock report must also be identical.

use ggpu_core::{GpuConfig, RunStats, Scale, SuiteRunner};
use ggpu_isa::{KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{FaultPlan, Gpu, IntervalSample, KernelRecord, SimError, TraceEvent};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Profiling-heavy configuration so the comparison covers every observable
/// surface: counters, per-kernel records, interval samples, and the trace.
fn profiled_cfg(threads: usize) -> GpuConfig {
    let mut cfg = GpuConfig::test_small().with_sim_threads(threads);
    cfg.trace = true;
    cfg.sample_interval_cycles = 512;
    cfg
}

/// Everything observable from one benchmark run.
struct Observed {
    stats: RunStats,
    kernel_cycles: u64,
    kernels: Vec<KernelRecord>,
    samples: Vec<IntervalSample>,
    events: Vec<TraceEvent>,
}

fn run_bench(abbrev: &str, cdp: bool, threads: usize) -> Observed {
    let runner = SuiteRunner::new(Scale::Tiny).with_config(profiled_cfg(threads));
    let r = runner.run_one(abbrev, cdp);
    assert!(r.verified, "{abbrev} must verify at sim_threads={threads}");
    let p = *r.profile.expect("profiling was enabled");
    Observed {
        stats: r.stats,
        kernel_cycles: r.kernel_cycles,
        kernels: p.kernels,
        samples: p.samples,
        events: p.events,
    }
}

#[test]
fn suite_benchmarks_are_bit_identical_across_thread_counts() {
    // SW: plain data-parallel DP. NvB: binning + search, different memory
    // shape. STAR with CDP: the orchestrator launches children from the
    // device, so grid spawn/retire ordering crosses SM shards.
    for (abbrev, cdp) in [("SW", false), ("NvB", false), ("STAR", true)] {
        let base = run_bench(abbrev, cdp, THREAD_COUNTS[0]);
        for &threads in &THREAD_COUNTS[1..] {
            let other = run_bench(abbrev, cdp, threads);
            assert_eq!(
                base.stats, other.stats,
                "{abbrev}: RunStats diverge at sim_threads={threads}"
            );
            assert_eq!(
                base.kernel_cycles, other.kernel_cycles,
                "{abbrev}: cycle count diverges at sim_threads={threads}"
            );
            assert_eq!(
                base.kernels, other.kernels,
                "{abbrev}: per-kernel records diverge at sim_threads={threads}"
            );
            assert_eq!(
                base.samples, other.samples,
                "{abbrev}: interval samples diverge at sim_threads={threads}"
            );
            assert_eq!(
                base.events, other.events,
                "{abbrev}: event trace diverges at sim_threads={threads}"
            );
        }
    }
}

/// Kernel: load through global memory, then store the value back — blocks a
/// warp on the memory path so a dropped reply hangs it.
fn loader_program() -> Program {
    let mut b = KernelBuilder::new("loader");
    let src = b.reg();
    b.ld_param(src, 0);
    let v = b.reg();
    b.ld(Space::Global, Width::B64, v, src, 0);
    b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
    b.exit();
    let mut p = Program::new();
    p.add(b.finish());
    p
}

fn run_fault_injected(threads: usize) -> (SimError, RunStats, u64) {
    let mut config = GpuConfig::test_small().with_sim_threads(threads);
    config.watchdog_cycles = 2_000;
    config.fault_plan = FaultPlan {
        drop_reply: Some(0),
        ..FaultPlan::default()
    };
    let mut gpu = Gpu::new(loader_program(), config);
    let buf = gpu.malloc(256);
    let kid = ggpu_isa::KernelId(0);
    let err = gpu
        .try_run_kernel(kid, LaunchDims::linear(4, 64), &[buf.0])
        .expect_err("dropped reply must deadlock");
    (err, gpu.stats(), gpu.cycle())
}

#[test]
fn fault_injection_is_bit_identical_across_thread_counts() {
    let (base_err, base_stats, base_cycle) = run_fault_injected(THREAD_COUNTS[0]);
    assert!(matches!(base_err, SimError::Deadlock(_)), "{base_err}");
    for &threads in &THREAD_COUNTS[1..] {
        let (err, stats, cycle) = run_fault_injected(threads);
        assert_eq!(
            base_err, err,
            "deadlock report diverges at sim_threads={threads}"
        );
        assert_eq!(
            base_stats, stats,
            "post-fault stats diverge at sim_threads={threads}"
        );
        assert_eq!(
            base_cycle, cycle,
            "fault cycle diverges at sim_threads={threads}"
        );
    }
}

#[test]
fn oversubscribed_thread_count_clamps_and_matches() {
    // More workers than SMs: the engine clamps to the lane count and the
    // run still matches single-threaded bit-for-bit.
    let base = run_bench("SW", false, 1);
    let over = run_bench("SW", false, 64);
    assert_eq!(base.stats, over.stats);
    assert_eq!(base.events, over.events);
}
