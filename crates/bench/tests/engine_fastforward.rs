//! The fast-forward contract: idle-cycle fast-forward
//! ([`ggpu_core::GpuConfig::fast_forward`]) is a pure engine optimisation.
//! A run with skipping enabled must be **bit-identical** — same counters,
//! per-kernel records, interval samples, event trace, and per-PC profile —
//! to the per-cycle run, at every thread count, while actually skipping a
//! meaningful number of cycles.
//!
//! Exercised over real suite benchmarks (including a CDP one, so skips
//! interleave with device-side launch overhead windows) and over a
//! fault-injection deadlock, where the watchdog must fire at the exact same
//! cycle whether or not the dead span leading up to it was fast-forwarded.

use ggpu_core::{GpuConfig, RunStats, Scale, SuiteRunner};
use ggpu_isa::{KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{FaultPlan, Gpu, IntervalSample, KernelRecord, PcProfile, SimError, TraceEvent};

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Profiling-heavy configuration so the comparison covers every observable
/// surface: counters, per-kernel records, interval samples, the trace, and
/// per-PC attribution.
fn profiled_cfg(threads: usize, fast_forward: bool) -> GpuConfig {
    let mut cfg = GpuConfig::test_small()
        .with_sim_threads(threads)
        .with_attribution(true)
        .with_fast_forward(fast_forward);
    cfg.trace = true;
    cfg.sample_interval_cycles = 512;
    cfg
}

/// Everything observable from one benchmark run.
struct Observed {
    stats: RunStats,
    kernel_cycles: u64,
    skipped: u64,
    kernels: Vec<KernelRecord>,
    samples: Vec<IntervalSample>,
    events: Vec<TraceEvent>,
    pc: Option<PcProfile>,
}

fn run_bench(abbrev: &str, cdp: bool, threads: usize, fast_forward: bool) -> Observed {
    let runner = SuiteRunner::new(Scale::Tiny).with_config(profiled_cfg(threads, fast_forward));
    let r = runner.run_one(abbrev, cdp);
    assert!(
        r.verified,
        "{abbrev} must verify at sim_threads={threads} fast_forward={fast_forward}"
    );
    let p = *r.profile.expect("profiling was enabled");
    Observed {
        stats: r.stats,
        kernel_cycles: r.kernel_cycles,
        skipped: r.fast_forward_skipped_cycles,
        kernels: p.kernels,
        samples: p.samples,
        events: p.events,
        pc: p.pc,
    }
}

#[test]
fn fast_forward_is_bit_identical_and_actually_skips() {
    // SW: plain data-parallel DP with long DRAM waits. STAR with CDP: the
    // orchestrator launches children from the device, so skips must respect
    // CDP arm windows and parent-join wakeups.
    for (abbrev, cdp) in [("SW", false), ("STAR", true)] {
        for &threads in &THREAD_COUNTS {
            let off = run_bench(abbrev, cdp, threads, false);
            let on = run_bench(abbrev, cdp, threads, true);
            assert_eq!(
                off.stats, on.stats,
                "{abbrev}: RunStats diverge at sim_threads={threads}"
            );
            assert_eq!(
                off.kernel_cycles, on.kernel_cycles,
                "{abbrev}: cycle count diverges at sim_threads={threads}"
            );
            assert_eq!(
                off.kernels, on.kernels,
                "{abbrev}: per-kernel records diverge at sim_threads={threads}"
            );
            assert_eq!(
                off.samples, on.samples,
                "{abbrev}: interval samples diverge at sim_threads={threads}"
            );
            assert_eq!(
                off.events, on.events,
                "{abbrev}: event trace diverges at sim_threads={threads}"
            );
            assert_eq!(
                off.pc, on.pc,
                "{abbrev}: per-PC profile diverges at sim_threads={threads}"
            );
            assert_eq!(off.skipped, 0, "{abbrev}: disabled engine must not skip");
            assert!(
                on.skipped > 0,
                "{abbrev}: fast-forward skipped nothing at sim_threads={threads}"
            );
        }
    }
}

/// Kernel: load through global memory, then store the value back — blocks a
/// warp on the memory path so a dropped reply hangs it.
fn loader_program() -> Program {
    let mut b = KernelBuilder::new("loader");
    let src = b.reg();
    b.ld_param(src, 0);
    let v = b.reg();
    b.ld(Space::Global, Width::B64, v, src, 0);
    b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
    b.exit();
    let mut p = Program::new();
    p.add(b.finish());
    p
}

fn run_fault_injected(threads: usize, fast_forward: bool) -> (SimError, RunStats, u64, u64) {
    let mut config = GpuConfig::test_small()
        .with_sim_threads(threads)
        .with_fast_forward(fast_forward);
    config.watchdog_cycles = 2_000;
    config.fault_plan = FaultPlan {
        drop_reply: Some(0),
        ..FaultPlan::default()
    };
    let mut gpu = Gpu::new(loader_program(), config);
    let buf = gpu.malloc(256);
    let kid = ggpu_isa::KernelId(0);
    let err = gpu
        .try_run_kernel(kid, LaunchDims::linear(4, 64), &[buf.0])
        .expect_err("dropped reply must deadlock");
    (
        err,
        gpu.stats(),
        gpu.cycle(),
        gpu.fast_forward_skipped_cycles(),
    )
}

#[test]
fn watchdog_fires_at_the_same_cycle_across_a_skipped_span() {
    // A dropped reply leaves a warp waiting forever: the span up to the
    // watchdog deadline is exactly the kind of dead time fast-forward
    // elides, and the deadline cycle itself must still be ticked so the
    // deadlock report is stamped and populated identically.
    for &threads in &THREAD_COUNTS {
        let (base_err, base_stats, base_cycle, base_skipped) = run_fault_injected(threads, false);
        assert!(matches!(base_err, SimError::Deadlock(_)), "{base_err}");
        assert_eq!(base_skipped, 0);
        let (err, stats, cycle, skipped) = run_fault_injected(threads, true);
        assert_eq!(
            base_err, err,
            "deadlock report diverges at sim_threads={threads}"
        );
        assert_eq!(
            base_stats, stats,
            "post-fault stats diverge at sim_threads={threads}"
        );
        assert_eq!(
            base_cycle, cycle,
            "fault cycle diverges at sim_threads={threads}"
        );
        assert!(
            skipped > 0,
            "the stalled span should fast-forward at sim_threads={threads}"
        );
    }
}
