//! Integration tests for the `measure` subsystem: the JSONL record
//! store round-trip, the noise-aware regression detector, and report
//! determinism.

use std::path::PathBuf;

use ggpu_bench::measure::cmp::{self, Verdict};
use ggpu_bench::measure::provenance::Provenance;
use ggpu_bench::measure::record::{self, Direction, EngineAxes, Record};
use ggpu_bench::measure::report;
use ggpu_bench::measure::stats::Summary;

fn prov(unix_time: u64) -> Provenance {
    Provenance {
        git_commit: "0123456789abcdef0123456789abcdef01234567".to_string(),
        git_dirty: false,
        rustc: "rustc 1.95.0".to_string(),
        host_parallelism: 8,
        unix_time,
    }
}

fn mk(id: &str, metric: &str, samples: Vec<f64>, run_id: &str, unix_time: u64) -> Record {
    Record {
        id: id.to_string(),
        suite: id.split('/').next().unwrap_or("engine").to_string(),
        workload: "SW".to_string(),
        scale: "tiny".to_string(),
        metric: metric.to_string(),
        unit: "cyc/s".to_string(),
        direction: Direction::Higher,
        rel_bound: 0.30,
        abs_floor: None,
        summary: Summary::of(samples),
        warmup: 1,
        axes: EngineAxes::base(),
        extra: vec![("simulated_cycles".to_string(), 4096.0)],
        run_id: run_id.to_string(),
        prov: prov(unix_time),
    }
}

fn tmp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ggpu-measure-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("records").join("measurements.jsonl")
}

#[test]
fn jsonl_round_trip_preserves_every_field() {
    let mut r = mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![10.0, 11.0, 12.0],
        "abc-1",
        100,
    );
    r.abs_floor = Some(0.9);
    r.direction = Direction::Lower;
    r.prov.git_dirty = true;
    r.axes = EngineAxes {
        sim_threads: 4,
        fast_forward: false,
        n_devices: 2,
        stream_isolation: true,
    };
    let line = r.to_json_line();
    let back = Record::from_json_line(&line).expect("parse own serialization");
    assert_eq!(back, r);
    // Provenance fields survive the trip — that is what makes a record
    // attributable after the fact.
    assert_eq!(back.prov.git_commit, r.prov.git_commit);
    assert!(back.prov.git_dirty);
    assert_eq!(back.prov.rustc, "rustc 1.95.0");
    assert_eq!(back.prov.host_parallelism, 8);
    assert_eq!(back.prov.unix_time, 100);
}

#[test]
fn store_append_is_append_only_and_loads_in_order() {
    let path = tmp_store("append");
    let a = mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![10.0],
        "run-a",
        100,
    );
    let b = mk(
        "engine/NvB/tiny/t1+ff",
        "cycles_per_sec",
        vec![20.0],
        "run-a",
        100,
    );
    record::append(&path, std::slice::from_ref(&a)).expect("first append creates dirs");
    record::append(&path, std::slice::from_ref(&b)).expect("second append extends");
    let loaded = record::load(&path).expect("load store");
    assert_eq!(loaded, vec![a, b], "file order is append order");
}

#[test]
fn tampered_line_is_rejected_on_load() {
    let r = mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![10.0],
        "run-a",
        100,
    );
    // Flip a cell-identity field without recomputing config_hash, as a
    // hand edit would.
    let line = r
        .to_json_line()
        .replace("\"scale\":\"tiny\"", "\"scale\":\"small\"");
    let err = Record::from_json_line(&line).unwrap_err();
    assert!(err.contains("config_hash mismatch"), "got: {err}");
}

#[test]
fn latest_run_picks_newest_run_id() {
    let old = mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![10.0],
        "run-old",
        100,
    );
    let new1 = mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![11.0],
        "run-new",
        200,
    );
    let new2 = mk(
        "engine/NvB/tiny/t1+ff",
        "cycles_per_sec",
        vec![21.0],
        "run-new",
        200,
    );
    let latest = record::latest_run(&[old, new1.clone(), new2.clone()]);
    assert_eq!(latest, vec![new1, new2]);
}

#[test]
fn cmp_passes_identical_and_within_noise_sets() {
    let base = vec![
        mk(
            "engine/SW/tiny/t1+ff",
            "cycles_per_sec",
            vec![100.0, 101.0],
            "b",
            100,
        ),
        mk(
            "engine/NvB/tiny/t1+ff",
            "cycles_per_sec",
            vec![200.0, 201.0],
            "b",
            100,
        ),
    ];
    // Identical.
    let diff = cmp::compare(&base, &base);
    assert_eq!(diff.failures(), 0);
    assert!(diff.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
    // Within the 30% noise bound (a 10% dip).
    let new = vec![
        mk(
            "engine/SW/tiny/t1+ff",
            "cycles_per_sec",
            vec![90.0, 91.0],
            "n",
            200,
        ),
        mk(
            "engine/NvB/tiny/t1+ff",
            "cycles_per_sec",
            vec![190.0, 191.0],
            "n",
            200,
        ),
    ];
    let diff = cmp::compare(&base, &new);
    assert_eq!(diff.failures(), 0, "{}", diff.render());
}

#[test]
fn cmp_flags_regression_beyond_noise_bound() {
    let base = vec![mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![100.0, 100.0, 100.0],
        "b",
        100,
    )];
    // A 50% throughput drop is far past the 30% bound, and the samples
    // are tight so MAD widening cannot excuse it.
    let new = vec![mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![50.0, 50.0, 50.0],
        "n",
        200,
    )];
    let diff = cmp::compare(&base, &new);
    assert_eq!(diff.failures(), 1, "{}", diff.render());
    assert_eq!(diff.rows[0].verdict, Verdict::Regressed);
    // The same drop on a lower-is-better metric is an improvement.
    let mut base_lat = base.clone();
    let mut new_lat = new.clone();
    base_lat[0].direction = Direction::Lower;
    base_lat[0].metric = "e2e_p50_cycles".to_string();
    new_lat[0].direction = Direction::Lower;
    new_lat[0].metric = "e2e_p50_cycles".to_string();
    let diff = cmp::compare(&base_lat, &new_lat);
    assert_eq!(diff.failures(), 0);
    assert_eq!(diff.rows[0].verdict, Verdict::Improved);
}

#[test]
fn cmp_noise_bound_widens_with_measured_mad() {
    // A 40% dip would normally regress (bound 0.30), but the baseline
    // samples are so scattered that 3×(rel MADs) exceeds the gap — the
    // detector must not call noise a regression.
    let base = vec![mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![60.0, 100.0, 140.0],
        "b",
        100,
    )];
    let new = vec![mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![60.0, 60.0, 60.0],
        "n",
        200,
    )];
    let diff = cmp::compare(&base, &new);
    assert_eq!(diff.failures(), 0, "{}", diff.render());
    assert!(diff.rows[0].bound > 0.30, "MAD must widen the bound");
}

#[test]
fn cmp_enforces_absolute_floor_even_without_baseline() {
    let mut r = mk(
        "engine/tiny/best_parallel_speedup",
        "speedup_n_over_1",
        vec![0.5],
        "n",
        200,
    );
    r.abs_floor = Some(0.9);
    r.rel_bound = 1.0;
    // No baseline counterpart at all: first measurement must still
    // clear the floor.
    let diff = cmp::compare(&[], &[r.clone()]);
    assert_eq!(diff.failures(), 1);
    assert_eq!(diff.rows[0].verdict, Verdict::BelowFloor);
    // Above the floor it is merely a new cell.
    r.summary = Summary::of(vec![0.95]);
    let diff = cmp::compare(&[], &[r.clone()]);
    assert_eq!(diff.failures(), 0);
    assert_eq!(diff.rows[0].verdict, Verdict::NewOnly);
    // With a baseline, the floor still binds even when the relative
    // bound (1.0) would tolerate the drop.
    let mut base = r.clone();
    base.summary = Summary::of(vec![1.0]);
    base.run_id = "b".to_string();
    base.prov.unix_time = 100;
    r.summary = Summary::of(vec![0.5]);
    let diff = cmp::compare(&[base], &[r]);
    assert_eq!(diff.failures(), 1);
    assert_eq!(diff.rows[0].verdict, Verdict::BelowFloor);
}

#[test]
fn cmp_info_metrics_never_gate() {
    let mut base = mk("serve/tiny/load6/t1+ff", "shed_rate", vec![0.0], "b", 100);
    let mut new = mk("serve/tiny/load6/t1+ff", "shed_rate", vec![0.9], "n", 200);
    base.direction = Direction::Info;
    new.direction = Direction::Info;
    let diff = cmp::compare(&[base], &[new]);
    assert_eq!(diff.failures(), 0);
    assert_eq!(diff.rows[0].verdict, Verdict::Info);
}

#[test]
fn cmp_collapses_multi_run_stores_to_newest_cell() {
    // The store holds an old slow run and a new fast one; cmp must use
    // the newest per cell, so no regression fires.
    let store = vec![
        mk(
            "engine/SW/tiny/t1+ff",
            "cycles_per_sec",
            vec![50.0],
            "run-old",
            100,
        ),
        mk(
            "engine/SW/tiny/t1+ff",
            "cycles_per_sec",
            vec![100.0],
            "run-new",
            200,
        ),
    ];
    let base = vec![mk(
        "engine/SW/tiny/t1+ff",
        "cycles_per_sec",
        vec![100.0],
        "b",
        50,
    )];
    let diff = cmp::compare(&base, &store);
    assert_eq!(diff.failures(), 0, "{}", diff.render());
}

#[test]
fn report_is_byte_identical_across_invocations() {
    let records = vec![
        mk(
            "engine/SW/tiny/t1+ff",
            "cycles_per_sec",
            vec![100.0, 110.0],
            "a",
            100,
        ),
        mk(
            "engine/SW/tiny/t4+ff",
            "cycles_per_sec",
            vec![300.0, 310.0],
            "a",
            100,
        ),
        mk(
            "engine/NvB/tiny/t1+ff",
            "cycles_per_sec",
            vec![200.0],
            "a",
            100,
        ),
        {
            let mut r = mk(
                "serve/tiny/load6/t1+ff",
                "requests_per_sec",
                vec![40.0],
                "a",
                100,
            );
            r.suite = "serve".to_string();
            r.extra = vec![("offered".to_string(), 24.0)];
            r
        },
    ];
    let first = report::render(&records);
    for _ in 0..3 {
        assert_eq!(report::render(&records), first);
    }
    // Sanity on content: ranked engine table and serve sweep present.
    assert!(first.contains("== engine throughput"));
    assert!(first.contains("== serving sustained traffic"));
    assert!(first.contains("engine/SW") || first.contains("SW"));
}
