//! # ggpu-core — the Genomics-GPU benchmark suite
//!
//! The public API a downstream user drives the suite through:
//!
//! * [`SuiteRunner`] — run any subset of the ten benchmarks (CDP and
//!   non-CDP) on a configurable simulated GPU and collect [`RunStats`].
//! * [`sram_usage`] — the Figure 6 SRAM-utilization computation from
//!   static kernel resources and the occupancy rules.
//! * [`cpu_baseline`] — wall-clock CPU timings for SW/NW/STAR on matched
//!   workloads (the CPU side of Figure 2).
//! * Re-exports of the benchmark registry, the simulator configuration
//!   space (Tables I and II) and the underlying crates.
//!
//! ```no_run
//! use ggpu_core::{Scale, SuiteRunner};
//!
//! let runner = SuiteRunner::new(Scale::Tiny);
//! for (name, result) in runner.run_all(false) {
//!     println!("{name}: IPC {:.2}", result.stats.ipc());
//!     assert!(result.verified);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use ggpu_kernels::{all_benchmarks, BenchResult, Benchmark, KernelResources, Scale, Table3Row};
pub use ggpu_sim::{
    chrome_trace_json, json, run_stats_json, CacheStats, DeadlockReport, DeviceFault, DramStats,
    FaultKind, FaultPlan, Gpu, GpuConfig, IntervalSample, KernelPcProfile, KernelRecord,
    LaunchProblem, PartitionUnit, PcCounters, PcProfile, PcProfileRow, ProfileReport, RunStats,
    SimError, SmStats, SmUnit, StallBreakdown, StallReason, TraceBuffer, TraceEvent,
    TraceEventKind, TraceSink, UnitProfile,
};

use ggpu_genomics::{nw_score, sequence_family, sw_score, GapModel, Simple};
use ggpu_sm::SmConfig;

/// Abbreviations of the ten benchmarks in Table III order.
pub const BENCHMARKS: [&str; 10] = [
    "SW", "NW", "STAR", "GG", "GL", "GKSW", "GSG", "CLUSTER", "PairHMM", "NvB",
];

/// Look up one benchmark by its abbreviation.
pub fn benchmark(scale: Scale, abbrev: &str) -> Option<Box<dyn Benchmark>> {
    all_benchmarks(scale)
        .into_iter()
        .find(|b| b.abbrev() == abbrev)
}

/// Convenience driver for running benchmark sets under one configuration.
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    scale: Scale,
    config: GpuConfig,
}

impl SuiteRunner {
    /// Runner at `scale` with the RTX 3070 baseline configuration.
    pub fn new(scale: Scale) -> Self {
        SuiteRunner {
            scale,
            config: GpuConfig::rtx3070(),
        }
    }

    /// Replace the GPU configuration (for the paper's sweeps).
    pub fn with_config(mut self, config: GpuConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The active scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Run every benchmark; returns `(abbrev, result)` pairs in Table III
    /// order.
    pub fn run_all(&self, cdp: bool) -> Vec<(&'static str, BenchResult)> {
        all_benchmarks(self.scale)
            .iter()
            .map(|b| (b.abbrev(), b.run(&self.config, cdp)))
            .collect()
    }

    /// Run one benchmark by abbreviation.
    ///
    /// # Panics
    ///
    /// Panics if `abbrev` is not one of [`BENCHMARKS`].
    pub fn run_one(&self, abbrev: &str, cdp: bool) -> BenchResult {
        self.try_run_one(abbrev, cdp)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one benchmark by abbreviation, reporting an unknown abbreviation
    /// as an error instead of panicking.
    pub fn try_run_one(&self, abbrev: &str, cdp: bool) -> Result<BenchResult, UnknownBenchmark> {
        benchmark(self.scale, abbrev)
            .ok_or_else(|| UnknownBenchmark(abbrev.to_string()))
            .map(|b| b.run(&self.config, cdp))
    }
}

/// A benchmark abbreviation that is not in [`BENCHMARKS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark(pub String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown benchmark `{}` (expected one of {})",
            self.0,
            BENCHMARKS.join(", ")
        )
    }
}

impl std::error::Error for UnknownBenchmark {}

/// SRAM utilization of one benchmark (Figure 6): the fraction of each
/// on-chip SRAM structure occupied by the concurrently resident CTAs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramUsage {
    /// Concurrent CTAs per SM under the occupancy rules.
    pub resident_ctas: u32,
    /// Register-file utilization in `[0, 1]`.
    pub registers: f64,
    /// Shared-memory utilization in `[0, 1]`.
    pub shared: f64,
    /// Constant-memory utilization in `[0, 1]` (single image; constant
    /// memory is not replicated per CTA).
    pub constant: f64,
}

/// Compute Figure 6's SRAM utilization for a benchmark under `sm`.
pub fn sram_usage(bench: &dyn Benchmark, sm: &SmConfig) -> SramUsage {
    let r = bench.resources();
    let ctas = sm.max_resident_ctas(r.threads_per_cta, r.regs_per_thread, r.smem_per_cta);
    let regs_used = r.regs_per_thread as u64 * r.threads_per_cta as u64 * ctas as u64;
    let smem_used = r.smem_per_cta as u64 * ctas as u64;
    SramUsage {
        resident_ctas: ctas,
        registers: (regs_used as f64 / sm.registers as f64).min(1.0),
        shared: (smem_used as f64 / sm.smem_bytes as f64).min(1.0),
        constant: (r.cmem_bytes as f64 / 64.0 / 1024.0).min(1.0),
    }
}

/// CPU wall-clock baselines for Figure 2 (SW / NW / STAR on workloads
/// matched to the `Small` GPU benchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBaseline {
    /// Seconds for the Smith-Waterman workload.
    pub sw_seconds: f64,
    /// Seconds for the Needleman-Wunsch workload.
    pub nw_seconds: f64,
    /// Seconds for the center-star workload.
    pub star_seconds: f64,
}

/// Time the single-threaded CPU implementations on workloads shaped like
/// the GPU benchmarks at `scale`.
pub fn cpu_baseline(scale: Scale) -> CpuBaseline {
    let (pairs, len, star_n, star_len) = match scale {
        Scale::Tiny => (48usize, 20usize, 10usize, 16usize),
        Scale::Small => (2_560, 28, 20, 24),
        Scale::Paper => (5_120, 64, 48, 48),
    };
    let subst = Simple::new(2, -3);
    let gaps = GapModel::Affine { open: 5, extend: 2 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3131);
    use rand::SeedableRng;
    let seqs = sequence_family(pairs * 2, len, 0.08, 0.0, &mut rng);

    let t0 = Instant::now();
    let mut acc = 0i64;
    for p in 0..pairs {
        acc += sw_score(seqs[2 * p].codes(), seqs[2 * p + 1].codes(), &subst, gaps) as i64;
    }
    let sw_seconds = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for p in 0..pairs {
        acc += nw_score(seqs[2 * p].codes(), seqs[2 * p + 1].codes(), &subst, gaps) as i64;
    }
    let nw_seconds = t0.elapsed().as_secs_f64();

    let star: Vec<Vec<u8>> = sequence_family(star_n, star_len, 0.06, 0.0, &mut rng)
        .into_iter()
        .map(|s| s.codes().to_vec())
        .collect();
    let t0 = Instant::now();
    let msa = ggpu_genomics::center_star(&star, &subst, gaps);
    let star_seconds = t0.elapsed().as_secs_f64();
    std::hint::black_box((acc, msa.columns()));

    CpuBaseline {
        sw_seconds,
        nw_seconds,
        star_seconds,
    }
}

/// Render a simple aligned text table (used by the `figures` harness).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_benchmarks() {
        let all = all_benchmarks(Scale::Tiny);
        assert_eq!(all.len(), 10);
        let abbrevs: Vec<&str> = all.iter().map(|b| b.abbrev()).collect();
        assert_eq!(abbrevs, BENCHMARKS);
    }

    #[test]
    fn benchmark_lookup() {
        assert!(benchmark(Scale::Tiny, "SW").is_some());
        assert!(benchmark(Scale::Tiny, "PairHMM").is_some());
        assert!(benchmark(Scale::Tiny, "XXX").is_none());
    }

    #[test]
    fn sram_usage_is_sane_for_all() {
        let sm = SmConfig::default();
        for b in all_benchmarks(Scale::Tiny) {
            let u = sram_usage(b.as_ref(), &sm);
            assert!(u.resident_ctas >= 1, "{}", b.abbrev());
            assert!((0.0..=1.0).contains(&u.registers));
            assert!((0.0..=1.0).contains(&u.shared));
            assert!((0.0..=1.0).contains(&u.constant));
            // Table III: shared-memory users actually occupy shared memory.
            if b.table3().shared_memory {
                assert!(u.shared > 0.0, "{} should use smem", b.abbrev());
            }
        }
    }

    #[test]
    fn table3_rows_match_paper_shapes() {
        for b in all_benchmarks(Scale::Tiny) {
            let row = b.table3();
            assert!(row.constant_memory, "{}: all rows use const", row.abbrev);
            assert!(row.grid.0 >= 1 && row.cta.0 >= 32);
        }
        let nvb = benchmark(Scale::Tiny, "NvB").unwrap().table3();
        assert_eq!(nvb.grid, (2048, 1, 1));
        assert_eq!(nvb.cta, (256, 1, 1));
    }

    #[test]
    fn cpu_baseline_produces_positive_times() {
        let b = cpu_baseline(Scale::Tiny);
        assert!(b.sw_seconds > 0.0);
        assert!(b.nw_seconds > 0.0);
        assert!(b.star_seconds > 0.0);
    }

    #[test]
    fn runner_runs_one() {
        let runner = SuiteRunner::new(Scale::Tiny).with_config(GpuConfig::test_small());
        let r = runner.run_one("SW", false);
        assert!(r.verified);
    }

    #[test]
    fn try_run_one_reports_unknown_benchmark() {
        let runner = SuiteRunner::new(Scale::Tiny).with_config(GpuConfig::test_small());
        let e = runner.try_run_one("XXX", false).unwrap_err();
        assert_eq!(e, UnknownBenchmark("XXX".to_string()));
        assert!(e.to_string().contains("unknown benchmark `XXX`"));
        assert!(runner.try_run_one("NW", false).is_ok());
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "bench"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("bench"));
        assert!(t.lines().count() == 4);
    }
}
