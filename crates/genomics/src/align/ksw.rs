//! KSW2-style extension alignment: both sequences are anchored at their
//! starts (e.g. extending from a seed hit), the alignment may end anywhere,
//! and a *z-drop* heuristic abandons extensions whose score falls too far
//! below the running maximum — the algorithm behind minimap2's `ksw2` and
//! GASAL2's KSW kernel.

use crate::scoring::{GapModel, SubstScore};

const NEG_INF: i32 = i32::MIN / 4;

/// Result of an extension alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KswResult {
    /// Best extension score found.
    pub score: i32,
    /// Query length consumed at the best cell.
    pub query_end: usize,
    /// Target length consumed at the best cell.
    pub target_end: usize,
    /// True when the z-drop heuristic terminated the extension early.
    pub zdropped: bool,
}

/// Extend from `(0, 0)` with affine gaps, banding and z-drop.
///
/// * `band` — only cells with `|i - j| <= band` are computed.
/// * `zdrop` — stop when the best score in a row falls more than `zdrop`
///   below the global best (pass `i32::MAX` to disable).
pub fn ksw_extend(
    query: &[u8],
    target: &[u8],
    subst: &impl SubstScore,
    gaps: GapModel,
    band: usize,
    zdrop: i32,
) -> KswResult {
    let (open, extend) = match gaps {
        GapModel::Affine { open, extend } => (open, extend),
        GapModel::Linear { penalty } => (0, penalty),
    };
    let m = target.len();
    let mut h_prev = vec![NEG_INF; m + 1];
    let mut e_prev = vec![NEG_INF; m + 1];
    h_prev[0] = 0;
    #[allow(clippy::needless_range_loop)] // j is also the gap length
    for j in 1..=m.min(band) {
        h_prev[j] = -(open + extend * j as i32);
    }
    let mut best = 0i32;
    let mut best_at = (0usize, 0usize);
    let mut zdropped = false;

    let mut h = vec![NEG_INF; m + 1];
    let mut e = vec![NEG_INF; m + 1];
    'rows: for (i, &qc) in query.iter().enumerate() {
        let row = i + 1;
        h.fill(NEG_INF);
        e.fill(NEG_INF);
        h[0] = if row <= band {
            -(open + extend * row as i32)
        } else {
            NEG_INF
        };
        let lo = row.saturating_sub(band).max(1);
        let hi = row.saturating_add(band).min(m);
        let mut f = NEG_INF;
        let mut row_best = NEG_INF;
        for j in lo..=hi {
            e[j] = (e_prev[j] - extend).max(h_prev[j] - open - extend);
            f = (f - extend).max(h[j - 1] - open - extend);
            let diag = h_prev[j - 1].saturating_add(subst.score(qc, target[j - 1]));
            h[j] = diag.max(e[j]).max(f);
            if h[j] > row_best {
                row_best = h[j];
            }
            if h[j] > best {
                best = h[j];
                best_at = (row, j);
            }
        }
        if zdrop != i32::MAX && row_best < best - zdrop {
            zdropped = true;
            break 'rows;
        }
        std::mem::swap(&mut h_prev, &mut h);
        std::mem::swap(&mut e_prev, &mut e);
    }

    KswResult {
        score: best,
        query_end: best_at.0,
        target_end: best_at.1,
        zdropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Simple;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    const SUB: Simple = Simple {
        matches: 2,
        mismatch: -3,
    };
    const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

    #[test]
    fn perfect_extension() {
        let q = dna("ACGTACGT");
        let r = ksw_extend(q.codes(), q.codes(), &SUB, GAPS, 16, i32::MAX);
        assert_eq!(r.score, 16);
        assert_eq!(r.query_end, 8);
        assert_eq!(r.target_end, 8);
        assert!(!r.zdropped);
    }

    #[test]
    fn extension_stops_at_divergence() {
        // Shared 8-base prefix, then the sequences diverge completely.
        let q = dna("ACGTACGTAAAAAAAA");
        let t = dna("ACGTACGTTTTTTTTT");
        let r = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 16, i32::MAX);
        assert_eq!(r.score, 16, "best is at the end of the shared prefix");
        assert_eq!(r.query_end, 8);
        assert_eq!(r.target_end, 8);
    }

    #[test]
    fn zdrop_terminates_early() {
        let q = dna("ACGTACGTAAAAAAAAAAAAAAAAAAAAAAAA");
        let t = dna("ACGTACGTTTTTTTTTTTTTTTTTTTTTTTTT");
        let with_drop = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 16, 10);
        assert!(with_drop.zdropped);
        assert_eq!(with_drop.score, 16);
        let without = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 16, i32::MAX);
        assert!(!without.zdropped);
        assert_eq!(without.score, 16);
    }

    #[test]
    fn handles_indel_within_band() {
        // Query has one extra base; band 4 accommodates it.
        let q = dna("ACGTTACGTACG");
        let t = dna("ACGTACGTACG");
        let r = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 4, i32::MAX);
        assert_eq!(r.score, 11 * 2 - (5 + 2));
        assert_eq!(r.query_end, 12);
        assert_eq!(r.target_end, 11);
    }

    #[test]
    fn empty_query_scores_zero() {
        let r = ksw_extend(&[], dna("ACGT").codes(), &SUB, GAPS, 8, 10);
        assert_eq!(r.score, 0);
        assert_eq!(r.query_end, 0);
    }

    #[test]
    fn narrow_band_misses_large_indel() {
        // A 3-base insertion bridges to 16 more matches — profitable, but
        // only reachable when the band admits the diagonal shift.
        let q = dna("ACGTAAAACGTACGTACGTACGT");
        let t = dna("ACGTACGTACGTACGTACGT");
        let narrow = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 2, i32::MAX);
        let wide = ksw_extend(q.codes(), t.codes(), &SUB, GAPS, 10, i32::MAX);
        assert!(
            wide.score > narrow.score,
            "wide {} vs narrow {}",
            wide.score,
            narrow.score
        );
    }
}
