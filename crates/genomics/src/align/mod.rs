//! Pairwise sequence alignment: global (Needleman-Wunsch), local
//! (Smith-Waterman), semi-global, banded, and KSW2-style extension
//! alignment with z-drop.
//!
//! All algorithms operate on symbol slices (2-bit DNA codes or ASCII amino
//! acids) and are generic over a [`SubstScore`](crate::SubstScore).

mod ksw;
mod nw;
mod semiglobal;
mod sw;

pub use ksw::{ksw_extend, KswResult};
pub use nw::{nw_align, nw_align_banded, nw_score};
pub use semiglobal::{semiglobal_align, semiglobal_score};
pub use sw::{sw_align, sw_score};

/// One CIGAR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Alignment match or mismatch (`M`).
    Match,
    /// Insertion to the query relative to the target (`I`).
    Ins,
    /// Deletion from the query relative to the target (`D`).
    Del,
}

impl CigarOp {
    /// SAM character.
    pub fn as_char(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }
}

/// A pairwise alignment: score, CIGAR, and aligned coordinate ranges
/// (half-open) on the query and target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score.
    pub score: i32,
    /// Run-length encoded CIGAR.
    pub cigar: Vec<(CigarOp, u32)>,
    /// Aligned query range `[start, end)`.
    pub query: (usize, usize),
    /// Aligned target range `[start, end)`.
    pub target: (usize, usize),
}

impl Alignment {
    /// SAM-style CIGAR string (`"3M1I2M"`).
    pub fn cigar_string(&self) -> String {
        self.cigar
            .iter()
            .map(|(op, n)| format!("{n}{}", op.as_char()))
            .collect()
    }

    /// Number of query symbols consumed by the CIGAR.
    pub fn query_len(&self) -> usize {
        self.cigar
            .iter()
            .filter(|(op, _)| matches!(op, CigarOp::Match | CigarOp::Ins))
            .map(|(_, n)| *n as usize)
            .sum()
    }

    /// Number of target symbols consumed by the CIGAR.
    pub fn target_len(&self) -> usize {
        self.cigar
            .iter()
            .filter(|(op, _)| matches!(op, CigarOp::Match | CigarOp::Del))
            .map(|(_, n)| *n as usize)
            .sum()
    }

    /// Fraction of aligned columns that are exact matches, given the two
    /// sequences (used for clustering identity).
    pub fn identity(&self, query: &[u8], target: &[u8]) -> f64 {
        let mut qi = self.query.0;
        let mut ti = self.target.0;
        let mut matches = 0usize;
        let mut columns = 0usize;
        for &(op, n) in &self.cigar {
            match op {
                CigarOp::Match => {
                    for _ in 0..n {
                        if query[qi] == target[ti] {
                            matches += 1;
                        }
                        qi += 1;
                        ti += 1;
                        columns += 1;
                    }
                }
                CigarOp::Ins => {
                    qi += n as usize;
                    columns += n as usize;
                }
                CigarOp::Del => {
                    ti += n as usize;
                    columns += n as usize;
                }
            }
        }
        if columns == 0 {
            0.0
        } else {
            matches as f64 / columns as f64
        }
    }
}

/// Push an op onto a run-length CIGAR, merging adjacent runs.
pub(crate) fn push_op(cigar: &mut Vec<(CigarOp, u32)>, op: CigarOp) {
    match cigar.last_mut() {
        Some((last, n)) if *last == op => *n += 1,
        _ => cigar.push((op, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cigar_string_and_lengths() {
        let a = Alignment {
            score: 5,
            cigar: vec![(CigarOp::Match, 3), (CigarOp::Ins, 1), (CigarOp::Del, 2)],
            query: (0, 4),
            target: (0, 5),
        };
        assert_eq!(a.cigar_string(), "3M1I2D");
        assert_eq!(a.query_len(), 4);
        assert_eq!(a.target_len(), 5);
    }

    #[test]
    fn identity_counts_matches_over_columns() {
        // query ACG vs target ATG aligned 3M: 2/3 identity.
        let a = Alignment {
            score: 0,
            cigar: vec![(CigarOp::Match, 3)],
            query: (0, 3),
            target: (0, 3),
        };
        let q = [0u8, 1, 2];
        let t = [0u8, 3, 2];
        assert!((a.identity(&q, &t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn push_op_merges_runs() {
        let mut c = Vec::new();
        push_op(&mut c, CigarOp::Match);
        push_op(&mut c, CigarOp::Match);
        push_op(&mut c, CigarOp::Ins);
        push_op(&mut c, CigarOp::Match);
        assert_eq!(
            c,
            vec![(CigarOp::Match, 2), (CigarOp::Ins, 1), (CigarOp::Match, 1)]
        );
    }
}
