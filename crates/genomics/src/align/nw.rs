//! Needleman-Wunsch global alignment (linear and affine gaps, full and
//! banded).

use crate::scoring::{GapModel, SubstScore};

use super::{push_op, Alignment, CigarOp};

const NEG_INF: i32 = i32::MIN / 4;

/// Global alignment score only (no traceback) under `gaps`.
pub fn nw_score(query: &[u8], target: &[u8], subst: &impl SubstScore, gaps: GapModel) -> i32 {
    match gaps {
        GapModel::Linear { penalty } => nw_score_linear(query, target, subst, penalty),
        GapModel::Affine { open, extend } => {
            // Two-row Gotoh.
            let m = target.len();
            let mut h_prev = vec![0i32; m + 1];
            let mut e_prev = vec![NEG_INF; m + 1];
            #[allow(clippy::needless_range_loop)] // j is also the gap length
            for j in 1..=m {
                h_prev[j] = -(open + extend * j as i32);
            }
            let mut h = vec![0i32; m + 1];
            let mut e = vec![0i32; m + 1];
            for (i, &qc) in query.iter().enumerate() {
                h[0] = -(open + extend * (i as i32 + 1));
                let mut f = NEG_INF;
                for j in 1..=m {
                    e[j] = (e_prev[j] - extend).max(h_prev[j] - open - extend);
                    f = (f - extend).max(h[j - 1] - open - extend);
                    let diag = h_prev[j - 1] + subst.score(qc, target[j - 1]);
                    h[j] = diag.max(e[j]).max(f);
                }
                std::mem::swap(&mut h_prev, &mut h);
                std::mem::swap(&mut e_prev, &mut e);
            }
            h_prev[m]
        }
    }
}

fn nw_score_linear(query: &[u8], target: &[u8], subst: &impl SubstScore, penalty: i32) -> i32 {
    let m = target.len();
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| -penalty * j).collect();
    let mut cur = vec![0i32; m + 1];
    for (i, &qc) in query.iter().enumerate() {
        cur[0] = -penalty * (i as i32 + 1);
        for j in 1..=m {
            cur[j] = (prev[j - 1] + subst.score(qc, target[j - 1]))
                .max(prev[j] - penalty)
                .max(cur[j - 1] - penalty);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Full global alignment with traceback (affine gaps via Gotoh).
pub fn nw_align(query: &[u8], target: &[u8], subst: &impl SubstScore, gaps: GapModel) -> Alignment {
    nw_align_banded(query, target, subst, gaps, usize::MAX)
}

/// Banded global alignment: cells with `|i - j| > band` are excluded. Pass
/// `usize::MAX` for an unbanded alignment. The band is widened to at least
/// the length difference so an alignment always exists.
pub fn nw_align_banded(
    query: &[u8],
    target: &[u8],
    subst: &impl SubstScore,
    gaps: GapModel,
    band: usize,
) -> Alignment {
    let n = query.len();
    let m = target.len();
    let band = band.max(n.abs_diff(m) + 1);
    let (open, extend) = match gaps {
        GapModel::Affine { open, extend } => (open, extend),
        GapModel::Linear { penalty } => (0, penalty),
    };
    let w = m + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut h = vec![NEG_INF; (n + 1) * w];
    let mut e = vec![NEG_INF; (n + 1) * w]; // gap in query (Del from target view)
    let mut f = vec![NEG_INF; (n + 1) * w]; // gap in target (Ins)
    h[0] = 0;
    for j in 1..=m {
        if j > band {
            break;
        }
        e[idx(0, j)] = -(open + extend * j as i32);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for i in 1..=n {
        if i <= band {
            f[idx(i, 0)] = -(open + extend * i as i32);
            h[idx(i, 0)] = f[idx(i, 0)];
        }
        let lo = i.saturating_sub(band).max(1);
        let hi = i.saturating_add(band).min(m);
        for j in lo..=hi {
            let ii = idx(i, j);
            e[ii] = (e[ii - 1] - extend).max(h[ii - 1] - open - extend);
            f[ii] = (f[ii - w] - extend).max(h[ii - w] - open - extend);
            let diag = h[ii - w - 1].saturating_add(subst.score(query[i - 1], target[j - 1]));
            h[ii] = diag.max(e[ii]).max(f[ii]);
        }
    }

    // Traceback from (n, m).
    let mut cigar_rev: Vec<(CigarOp, u32)> = Vec::new();
    let (mut i, mut j) = (n, m);
    // Track whether we are inside an E (deletion) or F (insertion) run.
    let mut state = 0u8; // 0=H, 1=E, 2=F
    while i > 0 || j > 0 {
        let ii = idx(i, j);
        match state {
            0 => {
                if i > 0 && j > 0 {
                    let diag = h[idx(i - 1, j - 1)]
                        .saturating_add(subst.score(query[i - 1], target[j - 1]));
                    if h[ii] == diag {
                        push_rev(&mut cigar_rev, CigarOp::Match);
                        i -= 1;
                        j -= 1;
                        continue;
                    }
                }
                if j > 0 && h[ii] == e[ii] {
                    state = 1;
                } else if i > 0 {
                    state = 2;
                } else {
                    state = 1;
                }
            }
            1 => {
                // Deletion (consume target).
                push_rev(&mut cigar_rev, CigarOp::Del);
                let from_open = h[ii - 1] - open - extend;
                if e[ii] != from_open && j > 1 {
                    // stay in E
                } else {
                    state = 0;
                }
                j -= 1;
            }
            _ => {
                // Insertion (consume query).
                push_rev(&mut cigar_rev, CigarOp::Ins);
                let from_open = h[ii - w] - open - extend;
                if f[ii] != from_open && i > 1 {
                    // stay in F
                } else {
                    state = 0;
                }
                i -= 1;
            }
        }
    }
    cigar_rev.reverse();
    Alignment {
        score: h[idx(n, m)],
        cigar: cigar_rev,
        query: (0, n),
        target: (0, m),
    }
}

fn push_rev(cigar: &mut Vec<(CigarOp, u32)>, op: CigarOp) {
    push_op(cigar, op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Simple;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    const SUB: Simple = Simple {
        matches: 2,
        mismatch: -3,
    };
    const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

    #[test]
    fn identical_sequences_score_perfect() {
        let s = dna("ACGTACGT");
        let a = nw_align(s.codes(), s.codes(), &SUB, GAPS);
        assert_eq!(a.score, 16);
        assert_eq!(a.cigar_string(), "8M");
        assert_eq!(nw_score(s.codes(), s.codes(), &SUB, GAPS), 16);
    }

    #[test]
    fn single_mismatch() {
        let a = nw_align(dna("ACGT").codes(), dna("AGGT").codes(), &SUB, GAPS);
        assert_eq!(a.score, 3 * 2 - 3);
        assert_eq!(a.cigar_string(), "4M");
    }

    #[test]
    fn single_gap() {
        // ACGT vs ACT: one deletion of G.
        let a = nw_align(dna("ACGT").codes(), dna("ACT").codes(), &SUB, GAPS);
        assert_eq!(a.score, 3 * 2 - (5 + 2));
        assert_eq!(a.query_len(), 4);
        assert_eq!(a.target_len(), 3);
        // CIGAR consumes one more query symbol than target.
        let ins: u32 = a
            .cigar
            .iter()
            .filter(|(op, _)| *op == CigarOp::Ins)
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(ins, 1);
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // Removing "GG" should be one gap of length 2, not two gaps.
        let q = dna("AAAAGGTTTT");
        let t = dna("AAAATTTT");
        let a = nw_align(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(a.score, 8 * 2 - (5 + 2 * 2));
        let ins_runs = a.cigar.iter().filter(|(op, _)| *op == CigarOp::Ins).count();
        assert_eq!(ins_runs, 1, "CIGAR {}", a.cigar_string());
    }

    #[test]
    fn score_matches_traceback_score() {
        let q = dna("ACGTAGCTAGCTTACG");
        let t = dna("ACGTTAGCTAGTTACG");
        let a = nw_align(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(a.score, nw_score(q.codes(), t.codes(), &SUB, GAPS));
        assert_eq!(a.query_len(), q.len());
        assert_eq!(a.target_len(), t.len());
    }

    #[test]
    fn linear_gap_model() {
        let gaps = GapModel::Linear { penalty: 2 };
        let a = nw_score(dna("ACGT").codes(), dna("ACT").codes(), &SUB, gaps);
        assert_eq!(a, 3 * 2 - 2);
    }

    #[test]
    fn banded_equals_full_when_band_wide_enough() {
        let q = dna("ACGTAGCTAGCTTACGACGT");
        let t = dna("ACGTTAGCTAGTTACGTCGT");
        let full = nw_align(q.codes(), t.codes(), &SUB, GAPS);
        let banded = nw_align_banded(q.codes(), t.codes(), &SUB, GAPS, 8);
        assert_eq!(full.score, banded.score);
    }

    #[test]
    fn empty_sequences() {
        let a = nw_align(&[], &[], &SUB, GAPS);
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
        let b = nw_align(dna("ACG").codes(), &[], &SUB, GAPS);
        assert_eq!(b.score, -(5 + 3 * 2));
        assert_eq!(b.cigar_string(), "3I");
    }
}
