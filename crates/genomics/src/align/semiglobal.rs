//! Semi-global alignment: the whole query aligns, but gaps at the
//! beginning and end of the *target* are free (GASAL2's semi-global mode,
//! used to place a read inside a longer reference window).

use crate::scoring::{GapModel, SubstScore};

use super::{push_op, Alignment, CigarOp};

const NEG_INF: i32 = i32::MIN / 4;

/// Semi-global score only.
pub fn semiglobal_score(
    query: &[u8],
    target: &[u8],
    subst: &impl SubstScore,
    gaps: GapModel,
) -> i32 {
    semiglobal_align(query, target, subst, gaps).score
}

/// Semi-global alignment with traceback. [`Alignment::target`] reports the
/// spanned target window; the query range is always `(0, query.len())`.
pub fn semiglobal_align(
    query: &[u8],
    target: &[u8],
    subst: &impl SubstScore,
    gaps: GapModel,
) -> Alignment {
    let (open, extend) = match gaps {
        GapModel::Affine { open, extend } => (open, extend),
        GapModel::Linear { penalty } => (0, penalty),
    };
    let n = query.len();
    let m = target.len();
    let w = m + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut h = vec![NEG_INF; (n + 1) * w];
    let mut e = vec![NEG_INF; (n + 1) * w];
    let mut f = vec![NEG_INF; (n + 1) * w];
    // Free leading target gaps: whole first row is zero.
    for j in 0..=m {
        h[idx(0, j)] = 0;
    }
    for i in 1..=n {
        // Query must align fully: leading query gaps cost.
        f[idx(i, 0)] = -(open + extend * i as i32);
        h[idx(i, 0)] = f[idx(i, 0)];
        for j in 1..=m {
            let ii = idx(i, j);
            e[ii] = (e[ii - 1] - extend).max(h[ii - 1] - open - extend);
            f[ii] = (f[ii - w] - extend).max(h[ii - w] - open - extend);
            let diag = h[ii - w - 1].saturating_add(subst.score(query[i - 1], target[j - 1]));
            h[ii] = diag.max(e[ii]).max(f[ii]);
        }
    }
    // Free trailing target gaps: best cell anywhere in the last row.
    let mut best = NEG_INF;
    let mut best_j = 0;
    for j in 0..=m {
        if h[idx(n, j)] > best {
            best = h[idx(n, j)];
            best_j = j;
        }
    }

    // Traceback from (n, best_j) to row 0.
    let mut cigar: Vec<(CigarOp, u32)> = Vec::new();
    let (mut i, mut j) = (n, best_j);
    let mut state = 0u8;
    while i > 0 {
        let ii = idx(i, j);
        match state {
            0 => {
                if j > 0 {
                    let diag = h[idx(i - 1, j - 1)]
                        .saturating_add(subst.score(query[i - 1], target[j - 1]));
                    if h[ii] == diag {
                        push_op(&mut cigar, CigarOp::Match);
                        i -= 1;
                        j -= 1;
                        continue;
                    }
                }
                if j > 0 && h[ii] == e[ii] {
                    state = 1;
                } else {
                    state = 2;
                }
            }
            1 => {
                push_op(&mut cigar, CigarOp::Del);
                let from_open = h[ii - 1] - open - extend;
                if e[ii] == from_open || j <= 1 {
                    state = 0;
                }
                j -= 1;
            }
            _ => {
                push_op(&mut cigar, CigarOp::Ins);
                let from_open = h[ii - w] - open - extend;
                if f[ii] == from_open || i <= 1 {
                    state = 0;
                }
                i -= 1;
            }
        }
    }
    cigar.reverse();
    Alignment {
        score: best,
        cigar,
        query: (0, n),
        target: (j, best_j),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Simple;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    const SUB: Simple = Simple {
        matches: 2,
        mismatch: -3,
    };
    const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

    #[test]
    fn read_placed_inside_reference_window() {
        let read = dna("ACGTACGT");
        let window = dna("TTTTTACGTACGTTTTT");
        let a = semiglobal_align(read.codes(), window.codes(), &SUB, GAPS);
        assert_eq!(a.score, 16, "full-length free placement");
        assert_eq!(a.cigar_string(), "8M");
        assert_eq!(a.target, (5, 13));
    }

    #[test]
    fn query_end_gaps_are_charged() {
        // Query longer than target: must pay for the overhang.
        let read = dna("AAACGTACGTAA");
        let window = dna("CGTACGT");
        let a = semiglobal_align(read.codes(), window.codes(), &SUB, GAPS);
        assert!(a.score < 14, "overhang must cost, got {}", a.score);
        assert_eq!(a.query_len(), read.len());
    }

    #[test]
    fn mismatch_in_middle() {
        let read = dna("ACGAACGT");
        let window = dna("GGACGTACGTGG");
        let a = semiglobal_align(read.codes(), window.codes(), &SUB, GAPS);
        assert_eq!(a.score, 7 * 2 - 3);
    }

    #[test]
    fn score_function_agrees() {
        let read = dna("ACGTAC");
        let window = dna("TTACGTACTT");
        assert_eq!(
            semiglobal_score(read.codes(), window.codes(), &SUB, GAPS),
            semiglobal_align(read.codes(), window.codes(), &SUB, GAPS).score
        );
    }

    #[test]
    fn empty_query_is_free() {
        let a = semiglobal_align(&[], dna("ACGT").codes(), &SUB, GAPS);
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
    }
}
