//! Smith-Waterman local alignment with affine gaps.

use crate::scoring::{GapModel, SubstScore};

use super::{push_op, Alignment, CigarOp};

const NEG_INF: i32 = i32::MIN / 4;

/// Local alignment score only (two-row Gotoh with a zero floor).
pub fn sw_score(query: &[u8], target: &[u8], subst: &impl SubstScore, gaps: GapModel) -> i32 {
    let (open, extend) = affine(gaps);
    let m = target.len();
    let mut h_prev = vec![0i32; m + 1];
    let mut e_prev = vec![NEG_INF; m + 1];
    let mut h = vec![0i32; m + 1];
    let mut e = vec![0i32; m + 1];
    let mut best = 0;
    for &qc in query {
        let mut f = NEG_INF;
        h[0] = 0;
        for j in 1..=m {
            e[j] = (e_prev[j] - extend).max(h_prev[j] - open - extend);
            f = (f - extend).max(h[j - 1] - open - extend);
            let diag = h_prev[j - 1] + subst.score(qc, target[j - 1]);
            h[j] = diag.max(e[j]).max(f).max(0);
            best = best.max(h[j]);
        }
        std::mem::swap(&mut h_prev, &mut h);
        std::mem::swap(&mut e_prev, &mut e);
    }
    best
}

/// Full local alignment with traceback. The returned
/// [`Alignment::query`] / [`Alignment::target`] ranges give the aligned
/// substrings.
pub fn sw_align(query: &[u8], target: &[u8], subst: &impl SubstScore, gaps: GapModel) -> Alignment {
    let (open, extend) = affine(gaps);
    let n = query.len();
    let m = target.len();
    let w = m + 1;
    let idx = |i: usize, j: usize| i * w + j;
    let mut h = vec![0i32; (n + 1) * w];
    let mut e = vec![NEG_INF; (n + 1) * w];
    let mut f = vec![NEG_INF; (n + 1) * w];
    let mut best = 0;
    let mut best_at = (0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let ii = idx(i, j);
            e[ii] = (e[ii - 1] - extend).max(h[ii - 1] - open - extend);
            f[ii] = (f[ii - w] - extend).max(h[ii - w] - open - extend);
            let diag = h[ii - w - 1] + subst.score(query[i - 1], target[j - 1]);
            h[ii] = diag.max(e[ii]).max(f[ii]).max(0);
            if h[ii] > best {
                best = h[ii];
                best_at = (i, j);
            }
        }
    }

    // Traceback from the best cell until a zero cell.
    let mut cigar: Vec<(CigarOp, u32)> = Vec::new();
    let (mut i, mut j) = best_at;
    let (end_i, end_j) = best_at;
    let mut state = 0u8;
    while i > 0 && j > 0 && h[idx(i, j)] > 0 {
        let ii = idx(i, j);
        match state {
            0 => {
                let diag = h[idx(i - 1, j - 1)] + subst.score(query[i - 1], target[j - 1]);
                if h[ii] == diag {
                    push_op(&mut cigar, CigarOp::Match);
                    i -= 1;
                    j -= 1;
                } else if h[ii] == e[ii] {
                    state = 1;
                } else {
                    state = 2;
                }
            }
            1 => {
                push_op(&mut cigar, CigarOp::Del);
                let from_open = h[ii - 1] - open - extend;
                if e[ii] == from_open || j <= 1 {
                    state = 0;
                }
                j -= 1;
            }
            _ => {
                push_op(&mut cigar, CigarOp::Ins);
                let from_open = h[ii - w] - open - extend;
                if f[ii] == from_open || i <= 1 {
                    state = 0;
                }
                i -= 1;
            }
        }
    }
    cigar.reverse();
    Alignment {
        score: best,
        cigar,
        query: (i, end_i),
        target: (j, end_j),
    }
}

fn affine(gaps: GapModel) -> (i32, i32) {
    match gaps {
        GapModel::Affine { open, extend } => (open, extend),
        GapModel::Linear { penalty } => (0, penalty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Simple;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    const SUB: Simple = Simple {
        matches: 2,
        mismatch: -3,
    };
    const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

    #[test]
    fn finds_embedded_match() {
        // Query CCC GTACGT AAA vs target TT GTACGT GG: local region GTACGT.
        let q = dna("CCCGTACGTAAA");
        let t = dna("TTGTACGTGG");
        let a = sw_align(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(a.score, 12);
        assert_eq!(a.cigar_string(), "6M");
        assert_eq!(&q.codes()[a.query.0..a.query.1], dna("GTACGT").codes());
        assert_eq!(&t.codes()[a.target.0..a.target.1], dna("GTACGT").codes());
    }

    #[test]
    fn score_matches_align() {
        let q = dna("ACGTAGCTAGCTT");
        let t = dna("GGACGTAGTAGCTTAC");
        let a = sw_align(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(a.score, sw_score(q.codes(), t.codes(), &SUB, GAPS));
        assert!(a.score > 0);
    }

    #[test]
    fn disjoint_sequences_score_low() {
        let q = dna("AAAAAAAA");
        let t = dna("TTTTTTTT");
        assert_eq!(sw_score(q.codes(), t.codes(), &SUB, GAPS), 0);
        let a = sw_align(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
    }

    #[test]
    fn local_beats_global_on_partial_overlap() {
        // Local alignment of partially overlapping sequences scores the
        // overlap; SW's signature property per the paper's description.
        let q = dna("AAAACGTACGT");
        let t = dna("CGTACGTTTTT");
        let local = sw_score(q.codes(), t.codes(), &SUB, GAPS);
        assert_eq!(local, 14, "overlap CGTACGT = 7 matches");
    }

    #[test]
    fn gap_in_local_alignment() {
        let q = dna("GGGACGTTACGTGGG");
        let t = dna("ACGTACGT");
        let cheap = GapModel::Affine { open: 2, extend: 1 };
        let a = sw_align(q.codes(), t.codes(), &SUB, cheap);
        // Aligns ACGT[T]ACGT against ACGTACGT with one insertion:
        // 8 matches - (open 2 + extend 1) = 13, beating any ungapped run.
        assert_eq!(a.score, 8 * 2 - 3);
        let ins: u32 = a
            .cigar
            .iter()
            .filter(|(op, _)| *op == CigarOp::Ins)
            .map(|(_, n)| *n)
            .sum();
        assert_eq!(ins, 1, "CIGAR {}", a.cigar_string());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sw_score(&[], &[], &SUB, GAPS), 0);
        let a = sw_align(&[], dna("ACGT").codes(), &SUB, GAPS);
        assert_eq!(a.score, 0);
    }
}
