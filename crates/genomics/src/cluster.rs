//! Greedy incremental alignment-based clustering (the CLUSTER benchmark's
//! nGIA algorithm): sort by length, keep a growing set of representatives,
//! and assign each sequence to the first representative it matches above
//! an identity threshold — with a short-word (k-mer) pre-filter that
//! rejects most candidate pairs without alignment.

use std::collections::HashMap;

use crate::align::nw_align_banded;
use crate::scoring::{GapModel, Simple};

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Required identity (aligned-column match fraction), e.g. `0.9`.
    pub identity: f64,
    /// Short-word length for the k-mer filter.
    pub word_len: usize,
    /// Band width for the verification alignment.
    pub band: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            identity: 0.9,
            word_len: 8,
            band: 16,
        }
    }
}

/// One output cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Input index of the representative sequence.
    pub representative: usize,
    /// Input indices of all members (including the representative).
    pub members: Vec<usize>,
}

/// Minimum number of shared k-mers for two sequences of length `len` to
/// possibly reach `identity` (CD-HIT-style short-word bound): each of the
/// up-to `(1-t)·len` differing bases destroys at most `k` words.
pub fn kmer_lower_bound(len: usize, k: usize, identity: f64) -> i64 {
    let words = len as i64 + 1 - k as i64;
    let diffs = (len as f64 * (1.0 - identity)).floor() as i64;
    words - diffs * k as i64
}

fn kmer_counts(seq: &[u8], k: usize) -> HashMap<u64, u32> {
    let mut m = HashMap::new();
    if seq.len() < k {
        return m;
    }
    for i in 0..=seq.len() - k {
        let mut v = 0u64;
        for &c in &seq[i..i + k] {
            v = (v << 2) | c as u64;
        }
        *m.entry(v).or_insert(0) += 1;
    }
    m
}

fn shared_kmers(a: &HashMap<u64, u32>, b: &HashMap<u64, u32>) -> i64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .map(|(k, &na)| large.get(k).map(|&nb| na.min(nb) as i64).unwrap_or(0))
        .sum()
}

/// Greedy incremental clustering of `seqs` (2-bit DNA codes).
///
/// Clusters are returned in order of representative discovery; `members`
/// preserve input order within a cluster.
pub fn greedy_cluster(seqs: &[Vec<u8>], params: ClusterParams) -> Vec<Cluster> {
    let subst = Simple::new(2, -3);
    let gaps = GapModel::Affine { open: 5, extend: 2 };

    // Process longest-first (greedy incremental order).
    let mut order: Vec<usize> = (0..seqs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(seqs[i].len()));

    struct Rep {
        idx: usize,
        kmers: HashMap<u64, u32>,
        cluster: usize,
    }
    let mut reps: Vec<Rep> = Vec::new();
    let mut clusters: Vec<Cluster> = Vec::new();

    for &i in &order {
        let seq = &seqs[i];
        let my_kmers = kmer_counts(seq, params.word_len);
        let need = kmer_lower_bound(seq.len(), params.word_len, params.identity);
        let mut assigned = false;
        for rep in &reps {
            let rep_seq = &seqs[rep.idx];
            // Representatives are at least as long (sorted order); a pair
            // can't reach the identity threshold if the length ratio is
            // already below it.
            if (seq.len() as f64) < params.identity * rep_seq.len() as f64 {
                continue;
            }
            // Short-word filter.
            if need > 0 && shared_kmers(&my_kmers, &rep.kmers) < need {
                continue;
            }
            // Verification alignment.
            let aln = nw_align_banded(seq, rep_seq, &subst, gaps, params.band);
            if aln.identity(seq, rep_seq) >= params.identity {
                clusters[rep.cluster].members.push(i);
                assigned = true;
                break;
            }
        }
        if !assigned {
            let cluster = clusters.len();
            clusters.push(Cluster {
                representative: i,
                members: vec![i],
            });
            reps.push(Rep {
                idx: i,
                kmers: my_kmers,
                cluster,
            });
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> Vec<u8> {
        s.parse::<DnaSeq>().unwrap().codes().to_vec()
    }

    #[test]
    fn identical_sequences_form_one_cluster() {
        let s = dna("ACGTACGTACGTACGTACGTACGTACGTACGT");
        let seqs = vec![s.clone(), s.clone(), s];
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members.len(), 3);
    }

    #[test]
    fn dissimilar_sequences_split() {
        let seqs = vec![
            dna("ACGTACGTACGTACGTACGTACGTACGTACGT"),
            dna("TTGGCCAATTGGCCAATTGGCCAATTGGCCAA"),
        ];
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn near_identical_cluster_together() {
        let base = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT";
        let mut variant = base.to_string();
        // One substitution out of 40 bases: 97.5% identity.
        variant.replace_range(10..11, "T");
        let seqs = vec![dna(base), dna(&variant)];
        let clusters = greedy_cluster(
            &seqs,
            ClusterParams {
                identity: 0.9,
                ..ClusterParams::default()
            },
        );
        assert_eq!(clusters.len(), 1, "97.5% identical at t=0.9");
    }

    #[test]
    fn representative_is_longest() {
        let long = "ACGTACGTACGTACGTACGTACGTACGTACGTACGT";
        let short = &long[..32];
        let seqs = vec![dna(short), dna(long)];
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        assert_eq!(clusters[0].representative, 1, "longest first");
    }

    #[test]
    fn length_ratio_prefilter() {
        // A very short sequence can never reach 90% identity with a long
        // representative (global alignment pays the overhang).
        let seqs = vec![dna("ACGTACGTACGTACGTACGTACGTACGTACGT"), dna("ACGTACGT")];
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn kmer_bound_math() {
        // 32-base sequence, k=8, t=1.0: all 25 words must be shared.
        assert_eq!(kmer_lower_bound(32, 8, 1.0), 25);
        // At t=0.9: 3 diffs × 8 = 24 words may vanish.
        assert_eq!(kmer_lower_bound(32, 8, 0.9), 1);
        // Low identity: filter disabled (negative bound).
        assert!(kmer_lower_bound(32, 8, 0.5) < 0);
    }

    #[test]
    fn all_members_accounted_for() {
        let seqs: Vec<Vec<u8>> = (0..10)
            .map(|i| {
                let mut s = dna("ACGTACGTACGTACGTACGTACGTACGTACGT");
                let n = s.len();
                s[i % n] = (i % 4) as u8;
                s
            })
            .collect();
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        assert!(greedy_cluster(&[], ClusterParams::default()).is_empty());
    }
}
