//! FM-index over 2-bit DNA: suffix array (prefix doubling), Burrows-Wheeler
//! transform, rank (Occ) structure, backward search, and locate — the
//! substrate under the NvBowtie-style read mapper.

/// Sentinel symbol appended to the text (sorts before A/C/G/T).
pub const SENTINEL: u8 = 4;

/// Build the suffix array of `text` (values `0..=4`) by prefix doubling.
///
/// `O(n log² n)`; fine for the megabase-scale synthetic references this
/// suite uses.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<i64> = text.iter().map(|&c| c as i64).collect();
    let mut tmp = vec![0i64; n];
    let mut k = 1usize;
    while k < n {
        let key = |i: u32| {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + if key(cur) == key(prev) { 0 } else { 1 };
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Burrows-Wheeler transform from a text and its suffix array.
pub fn bwt_from_sa(text: &[u8], sa: &[u32]) -> Vec<u8> {
    sa.iter()
        .map(|&i| {
            if i == 0 {
                text[text.len() - 1]
            } else {
                text[i as usize - 1]
            }
        })
        .collect()
}

/// Occ checkpoint spacing.
const OCC_BLOCK: usize = 64;
/// SA sampling rate for locate.
const SA_SAMPLE: usize = 8;

/// An FM-index over a 2-bit DNA text.
///
/// ```
/// use ggpu_genomics::{DnaSeq, FmIndex};
/// let genome: DnaSeq = "ACGTACGTTACG".parse().unwrap();
/// let fm = FmIndex::new(&genome);
/// let hits = fm.find(&"ACG".parse::<DnaSeq>().unwrap());
/// assert_eq!(hits, vec![0, 4, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct FmIndex {
    bwt: Vec<u8>,
    /// `c_table[c]` = number of symbols strictly smaller than `c` in the
    /// text (over the 5-symbol alphabet with the sentinel).
    c_table: [usize; 6],
    /// Occ checkpoints every `OCC_BLOCK` positions, for symbols 0..5.
    checkpoints: Vec<[u32; 5]>,
    /// Sampled suffix array: entries at SA positions divisible by
    /// `SA_SAMPLE`, keyed densely.
    sa_samples: Vec<(u32, u32)>,
    text_len: usize,
}

impl FmIndex {
    /// Index a DNA sequence (the sentinel is appended internally).
    pub fn new(seq: &crate::seq::DnaSeq) -> Self {
        let mut text = seq.codes().to_vec();
        text.push(SENTINEL);
        Self::from_text(text)
    }

    fn from_text(text: Vec<u8>) -> Self {
        let sa = suffix_array(&text);
        let bwt = bwt_from_sa(&text, &sa);
        let n = bwt.len();

        let mut counts = [0usize; 6];
        for &c in &text {
            counts[c as usize + 1] += 1;
        }
        let mut c_table = [0usize; 6];
        for c in 1..6 {
            c_table[c] = c_table[c - 1] + counts[c];
        }

        let mut checkpoints = Vec::with_capacity(n / OCC_BLOCK + 2);
        let mut running = [0u32; 5];
        for (i, &c) in bwt.iter().enumerate() {
            if i.is_multiple_of(OCC_BLOCK) {
                checkpoints.push(running);
            }
            running[c as usize] += 1;
        }
        checkpoints.push(running);

        let mut sa_samples = Vec::new();
        for (pos, &s) in sa.iter().enumerate() {
            if (s as usize).is_multiple_of(SA_SAMPLE) {
                sa_samples.push((pos as u32, s));
            }
        }
        sa_samples.sort_unstable();

        FmIndex {
            bwt,
            c_table,
            checkpoints,
            sa_samples,
            text_len: n,
        }
    }

    /// Text length including the sentinel.
    pub fn len(&self) -> usize {
        self.text_len
    }

    /// True when the index holds only the sentinel.
    pub fn is_empty(&self) -> bool {
        self.text_len <= 1
    }

    /// Number of occurrences of symbol `c` in `bwt[0..pos)`.
    pub fn occ(&self, c: u8, pos: usize) -> usize {
        let block = pos / OCC_BLOCK;
        let mut count = self.checkpoints[block][c as usize] as usize;
        for &b in &self.bwt[block * OCC_BLOCK..pos] {
            if b == c {
                count += 1;
            }
        }
        count
    }

    /// One LF-mapping step from BWT row `row`.
    fn lf(&self, row: usize) -> usize {
        let c = self.bwt[row];
        self.c_table[c as usize] + self.occ(c, row)
    }

    /// Backward search: the SA interval `[lo, hi)` of suffixes prefixed by
    /// `pattern` (2-bit codes). Empty interval when absent.
    pub fn backward_search(&self, pattern: &[u8]) -> (usize, usize) {
        let mut lo = 0usize;
        let mut hi = self.text_len;
        for &c in pattern.iter().rev() {
            debug_assert!(c < 4);
            lo = self.c_table[c as usize] + self.occ(c, lo);
            hi = self.c_table[c as usize] + self.occ(c, hi);
            if lo >= hi {
                return (0, 0);
            }
        }
        (lo, hi)
    }

    /// Count occurrences of `pattern`.
    pub fn count(&self, pattern: &crate::seq::DnaSeq) -> usize {
        let (lo, hi) = self.backward_search(pattern.codes());
        hi - lo
    }

    /// Text position of the suffix at SA row `row`, via sampled SA +
    /// LF-stepping.
    pub fn locate_row(&self, row: usize) -> usize {
        let mut r = row;
        let mut steps = 0usize;
        loop {
            if let Ok(i) = self
                .sa_samples
                .binary_search_by_key(&(r as u32), |&(p, _)| p)
            {
                return (self.sa_samples[i].1 as usize + steps) % self.text_len;
            }
            r = self.lf(r);
            steps += 1;
        }
    }

    /// All text positions where `pattern` occurs, sorted.
    pub fn find(&self, pattern: &crate::seq::DnaSeq) -> Vec<usize> {
        let (lo, hi) = self.backward_search(pattern.codes());
        let mut out: Vec<usize> = (lo..hi).map(|r| self.locate_row(r)).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn suffix_array_of_banana_like_text() {
        // text "ACCA$"-ish in codes: [0,1,1,0,4]
        let text = vec![0u8, 1, 1, 0, 4];
        let sa = suffix_array(&text);
        // Suffixes sorted: positions by lexicographic order.
        let mut expected: Vec<u32> = (0..5).collect();
        expected.sort_by_key(|&i| text[i as usize..].to_vec());
        assert_eq!(sa, expected);
    }

    #[test]
    fn suffix_array_matches_naive_on_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(1..200);
            let mut text: Vec<u8> = (0..n).map(|_| rng.gen_range(0..4)).collect();
            text.push(SENTINEL);
            let sa = suffix_array(&text);
            let mut expected: Vec<u32> = (0..text.len() as u32).collect();
            expected.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
            assert_eq!(sa, expected, "n={n}");
        }
    }

    #[test]
    fn count_and_find() {
        let genome = dna("ACGTACGTTACG");
        let fm = FmIndex::new(&genome);
        assert_eq!(fm.count(&dna("ACG")), 3);
        assert_eq!(fm.find(&dna("ACG")), vec![0, 4, 9]);
        assert_eq!(fm.count(&dna("ACGT")), 2);
        assert_eq!(fm.count(&dna("TTT")), 0);
        assert_eq!(fm.find(&dna("TTT")), Vec::<usize>::new());
    }

    #[test]
    fn find_agrees_with_naive_scan() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let genome_codes: Vec<u8> = (0..500).map(|_| rng.gen_range(0..4)).collect();
        let genome = crate::seq::DnaSeq::from_codes(genome_codes.clone());
        let fm = FmIndex::new(&genome);
        for _ in 0..20 {
            let len = rng.gen_range(2..12);
            let start = rng.gen_range(0..genome_codes.len() - len);
            let pat = genome.slice(start, len);
            let naive: Vec<usize> = (0..=genome_codes.len() - len)
                .filter(|&i| &genome_codes[i..i + len] == pat.codes())
                .collect();
            assert_eq!(fm.find(&pat), naive, "pattern {pat}");
        }
    }

    #[test]
    fn whole_text_occurs_once() {
        let genome = dna("ACGGCTAGCATCG");
        let fm = FmIndex::new(&genome);
        assert_eq!(fm.find(&genome), vec![0]);
    }

    #[test]
    fn single_base_counts() {
        let genome = dna("AACCGGTTAA");
        let fm = FmIndex::new(&genome);
        assert_eq!(fm.count(&dna("A")), 4);
        assert_eq!(fm.count(&dna("C")), 2);
        assert_eq!(fm.count(&dna("G")), 2);
        assert_eq!(fm.count(&dna("T")), 2);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let genome = dna("ACGT");
        let fm = FmIndex::new(&genome);
        let (lo, hi) = fm.backward_search(&[]);
        assert_eq!(hi - lo, 5); // 4 bases + sentinel
    }
}
