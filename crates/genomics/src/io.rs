//! FASTA / FASTQ parsing and writing.

use std::fmt;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line without the leading `>`.
    pub id: String,
    /// Sequence letters (ASCII, possibly multi-line in the source).
    pub seq: Vec<u8>,
}

/// One FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Header line without the leading `@`.
    pub id: String,
    /// Sequence letters (ASCII).
    pub seq: Vec<u8>,
    /// Phred+33 quality characters, same length as `seq`.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Phred quality values (0-based, i.e. ASCII minus 33).
    pub fn phred(&self) -> Vec<u8> {
        self.qual.iter().map(|&q| q.saturating_sub(33)).collect()
    }
}

/// Errors from the FASTA/FASTQ parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseFastxError {
    /// Record at this line lacked the expected marker (`>` or `@`).
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A FASTQ record was truncated.
    Truncated {
        /// 1-based line number where input ended.
        line: usize,
    },
    /// FASTQ `+` separator missing.
    MissingPlus {
        /// 1-based line number.
        line: usize,
    },
    /// FASTQ quality string length mismatch.
    QualLength {
        /// 1-based line number of the record header.
        line: usize,
    },
    /// A sequence line contained a byte that is not an IUPAC nucleotide
    /// code, `*`, or `-`.
    BadSequenceChar {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A FASTQ quality line contained a byte outside the printable
    /// Phred+33 range (`!`..=`~`).
    BadQualityChar {
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for ParseFastxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastxError::BadHeader { line } => write!(f, "bad record header at line {line}"),
            ParseFastxError::Truncated { line } => write!(f, "truncated record at line {line}"),
            ParseFastxError::MissingPlus { line } => {
                write!(f, "missing '+' separator at line {line}")
            }
            ParseFastxError::QualLength { line } => {
                write!(f, "quality length mismatch for record at line {line}")
            }
            ParseFastxError::BadSequenceChar { line, byte } => write!(
                f,
                "invalid sequence character {} at line {line}",
                printable(*byte)
            ),
            ParseFastxError::BadQualityChar { line, byte } => write!(
                f,
                "invalid quality character {} at line {line}",
                printable(*byte)
            ),
        }
    }
}

fn printable(b: u8) -> String {
    if b.is_ascii_graphic() {
        format!("'{}'", b as char)
    } else {
        format!("0x{b:02x}")
    }
}

impl std::error::Error for ParseFastxError {}

/// Whether `b` is acceptable in a sequence line. The IUPAC nucleotide and
/// amino-acid alphabets (with their ambiguity codes) jointly cover every
/// ASCII letter, so any letter is accepted in either case, plus `*`
/// (stop / unknown) and `-` (gap). Digits, punctuation, and non-ASCII
/// bytes — the signature of truncated or binary input — are rejected.
fn is_sequence_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'*' || b == b'-'
}

/// Whether `b` is a printable Phred+33 quality character.
fn is_quality_byte(b: u8) -> bool {
    (b'!'..=b'~').contains(&b)
}

fn validate_seq_line(bytes: &[u8], line: usize) -> Result<(), ParseFastxError> {
    match bytes.iter().find(|&&b| !is_sequence_byte(b)) {
        Some(&byte) => Err(ParseFastxError::BadSequenceChar { line, byte }),
        None => Ok(()),
    }
}

/// Parse FASTA text (multi-line sequences supported).
///
/// # Errors
///
/// Returns [`ParseFastxError::BadHeader`] if the first non-empty line of a
/// record does not start with `>`.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, ParseFastxError> {
    let mut records = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            current = Some(FastaRecord {
                id: rest.trim().to_string(),
                seq: Vec::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => {
                    let bytes: Vec<u8> =
                        line.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
                    validate_seq_line(&bytes, i + 1)?;
                    rec.seq.extend(bytes);
                }
                None => return Err(ParseFastxError::BadHeader { line: i + 1 }),
            }
        }
    }
    if let Some(rec) = current {
        records.push(rec);
    }
    Ok(records)
}

/// Write records as FASTA text with lines wrapped at `width` (0 = no wrap).
pub fn write_fasta(records: &[FastaRecord], width: usize) -> String {
    let mut out = String::new();
    for r in records {
        out.push('>');
        out.push_str(&r.id);
        out.push('\n');
        if width == 0 {
            out.push_str(&String::from_utf8_lossy(&r.seq));
            out.push('\n');
        } else {
            for chunk in r.seq.chunks(width) {
                out.push_str(&String::from_utf8_lossy(chunk));
                out.push('\n');
            }
        }
    }
    out
}

/// Parse FASTQ text (4-line records).
///
/// # Errors
///
/// Returns a [`ParseFastxError`] describing the first malformed record.
pub fn parse_fastq(text: &str) -> Result<Vec<FastqRecord>, ParseFastxError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let mut records = Vec::new();
    while let Some((i, header)) = lines.next() {
        let id = header
            .strip_prefix('@')
            .ok_or(ParseFastxError::BadHeader { line: i + 1 })?
            .trim()
            .to_string();
        let (si, seq) = lines
            .next()
            .ok_or(ParseFastxError::Truncated { line: i + 2 })?;
        let (pi, plus) = lines
            .next()
            .ok_or(ParseFastxError::Truncated { line: i + 3 })?;
        if !plus.starts_with('+') {
            return Err(ParseFastxError::MissingPlus { line: pi + 1 });
        }
        let (qi, qual) = lines
            .next()
            .ok_or(ParseFastxError::Truncated { line: i + 4 })?;
        let seq: Vec<u8> = seq.trim().bytes().collect();
        let qual: Vec<u8> = qual.trim().bytes().collect();
        validate_seq_line(&seq, si + 1)?;
        if let Some(&byte) = qual.iter().find(|&&b| !is_quality_byte(b)) {
            return Err(ParseFastxError::BadQualityChar { line: qi + 1, byte });
        }
        if seq.len() != qual.len() {
            return Err(ParseFastxError::QualLength { line: i + 1 });
        }
        records.push(FastqRecord { id, seq, qual });
    }
    Ok(records)
}

/// Write records as FASTQ text.
pub fn write_fastq(records: &[FastqRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push('@');
        out.push_str(&r.id);
        out.push('\n');
        out.push_str(&String::from_utf8_lossy(&r.seq));
        out.push_str("\n+\n");
        out.push_str(&String::from_utf8_lossy(&r.qual));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fasta_roundtrip() {
        let recs = vec![
            FastaRecord {
                id: "seq1 description".into(),
                seq: b"ACGTACGTACGT".to_vec(),
            },
            FastaRecord {
                id: "seq2".into(),
                seq: b"TTTT".to_vec(),
            },
        ];
        let text = write_fasta(&recs, 5);
        let parsed = parse_fasta(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn fasta_multiline_and_blank_lines() {
        let text = ">a\nACGT\nACGT\n\n>b\nTT\n";
        let recs = parse_fasta(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGTACGT");
        assert_eq!(recs[1].seq, b"TT");
    }

    #[test]
    fn fasta_rejects_headerless_sequence() {
        let err = parse_fasta("ACGT\n").unwrap_err();
        assert_eq!(err, ParseFastxError::BadHeader { line: 1 });
    }

    #[test]
    fn fastq_roundtrip() {
        let recs = vec![FastqRecord {
            id: "read1".into(),
            seq: b"ACGT".to_vec(),
            qual: b"IIII".to_vec(),
        }];
        let text = write_fastq(&recs);
        assert_eq!(parse_fastq(&text).unwrap(), recs);
    }

    #[test]
    fn fastq_phred_conversion() {
        let r = FastqRecord {
            id: "r".into(),
            seq: b"AC".to_vec(),
            qual: b"I!".to_vec(), // 'I' = 40, '!' = 0
        };
        assert_eq!(r.phred(), vec![40, 0]);
    }

    #[test]
    fn fastq_error_cases() {
        assert!(matches!(
            parse_fastq("ACGT\n"),
            Err(ParseFastxError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_fastq("@r\nACGT\n"),
            Err(ParseFastxError::Truncated { .. })
        ));
        assert!(matches!(
            parse_fastq("@r\nACGT\nXXXX\nIIII\n"),
            Err(ParseFastxError::MissingPlus { .. })
        ));
        assert!(matches!(
            parse_fastq("@r\nACGT\n+\nII\n"),
            Err(ParseFastxError::QualLength { .. })
        ));
    }

    #[test]
    fn empty_inputs() {
        assert!(parse_fasta("").unwrap().is_empty());
        assert!(parse_fastq("").unwrap().is_empty());
    }

    #[test]
    fn fasta_rejects_garbage_sequence_byte() {
        let err = parse_fasta(">a\nAC1T\n").unwrap_err();
        assert_eq!(
            err,
            ParseFastxError::BadSequenceChar {
                line: 2,
                byte: b'1'
            }
        );
        assert_eq!(err.to_string(), "invalid sequence character '1' at line 2");
        // Non-printable bytes are reported in hex.
        let err = parse_fasta(">a\nAC\u{7f}T\n").unwrap_err();
        assert_eq!(err.to_string(), "invalid sequence character 0x7f at line 2");
    }

    #[test]
    fn fasta_accepts_iupac_gaps_and_lowercase() {
        let recs = parse_fasta(">a\nacgtn-RYSWKM\nBDHVU*\n").unwrap();
        assert_eq!(recs[0].seq, b"acgtn-RYSWKMBDHVU*");
    }

    #[test]
    fn fastq_rejects_bad_sequence_and_quality_bytes() {
        let err = parse_fastq("@r\nAC?T\n+\nIIII\n").unwrap_err();
        assert_eq!(
            err,
            ParseFastxError::BadSequenceChar {
                line: 2,
                byte: b'?'
            }
        );
        // A quality byte below '!' (here a tab embedded mid-string) faults.
        let err = parse_fastq("@r\nACGT\n+\nII\tI\n").unwrap_err();
        assert_eq!(
            err,
            ParseFastxError::BadQualityChar {
                line: 4,
                byte: b'\t'
            }
        );
        assert_eq!(err.to_string(), "invalid quality character 0x09 at line 4");
    }

    #[test]
    fn fastq_reports_first_bad_line_in_later_records() {
        let text = "@r1\nACGT\n+\nIIII\n@r2\nACG5\n+\nIIII\n";
        let err = parse_fastq(text).unwrap_err();
        assert_eq!(
            err,
            ParseFastxError::BadSequenceChar {
                line: 6,
                byte: b'5'
            }
        );
    }
}
