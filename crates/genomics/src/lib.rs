//! # ggpu-genomics — CPU reference genome-analysis algorithms
//!
//! The algorithmic substrate of the Genomics-GPU suite, implemented from
//! scratch on the CPU. These are both (a) the CPU baselines of the paper's
//! Figure 2 and (b) the functional oracles the simulated-GPU kernels in
//! `ggpu-kernels` are validated against:
//!
//! * [`align`] — Needleman-Wunsch global (linear/affine/banded),
//!   Smith-Waterman local, semi-global, and KSW2-style extension alignment
//!   with z-drop (the SW / NW / GG / GL / GSG / GKSW benchmarks).
//! * [`msa`] — center-star multiple sequence alignment (STAR).
//! * [`pairhmm`] — GATK-style Pair-HMM forward algorithm (PairHMM).
//! * [`cluster`] — greedy incremental alignment-based clustering with a
//!   short-word filter (CLUSTER / nGIA).
//! * [`fmindex`] + [`mapper`] — suffix array, BWT, FM-index backward
//!   search, and a Bowtie2-style seed-and-extend read mapper (NvBowtie).
//! * [`variant`] — pileups and a genotype caller (variant selection).
//! * [`io`] — FASTA/FASTQ parsing and writing.
//! * [`synth`] — synthetic genomes, sequence families and simulated reads
//!   standing in for the paper's datasets (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod align;
pub mod cluster;
pub mod fmindex;
pub mod io;
pub mod mapper;
pub mod msa;
pub mod pairhmm;
pub mod scoring;
pub mod seq;
pub mod synth;
pub mod variant;

pub use align::{
    ksw_extend, nw_align, nw_align_banded, nw_score, semiglobal_align, semiglobal_score, sw_align,
    sw_score, Alignment, CigarOp, KswResult,
};
pub use cluster::{greedy_cluster, Cluster, ClusterParams};
pub use fmindex::FmIndex;
pub use io::{parse_fasta, parse_fastq, write_fasta, write_fastq, FastaRecord, FastqRecord};
pub use mapper::{MapHit, Mapper, MapperParams};
pub use msa::{center_star, choose_center, Msa, GAP};
pub use pairhmm::{phred_to_error, PairHmm};
pub use scoring::{
    blosum62_index_matrix, encode_protein, Blosum62, GapModel, IndexedMatrix, Simple, SubstScore,
};
pub use seq::{complement, decode_base, encode_base, DnaSeq, ParseSeqError};
pub use synth::{
    mutate, random_genome, random_protein, sequence_family, simulate_reads, ReadProfile,
    SimulatedRead,
};
pub use variant::{call_variants, genotype_likelihoods, CallerParams, Genotype, Pileup, Variant};
