//! Bowtie2-style seed-and-extend read mapper over the FM-index (the CPU
//! reference for the NvBowtie benchmark): exact-match seeds via backward
//! search, banded global verification of candidate placements, best-hit
//! reporting on either strand.

use crate::align::{semiglobal_align, Alignment};
use crate::fmindex::FmIndex;
use crate::scoring::{GapModel, Simple};
use crate::seq::DnaSeq;

/// Mapper parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperParams {
    /// Seed length extracted from the read.
    pub seed_len: usize,
    /// Offsets between consecutive seeds along the read.
    pub seed_interval: usize,
    /// Maximum SA-interval size per seed (repetitive seeds are skipped).
    pub max_seed_hits: usize,
    /// Band width for the verification alignment.
    pub band: usize,
    /// Minimum accepted alignment score (match=2): reads scoring below are
    /// unmapped.
    pub min_score: i32,
}

impl Default for MapperParams {
    fn default() -> Self {
        MapperParams {
            seed_len: 20,
            seed_interval: 10,
            max_seed_hits: 16,
            band: 8,
            min_score: 0,
        }
    }
}

/// A read placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapHit {
    /// Leftmost reference position of the alignment.
    pub position: usize,
    /// True when the read aligned as its reverse complement.
    pub reverse: bool,
    /// The verification alignment (read vs reference window).
    pub alignment: Alignment,
}

/// An FM-index-backed reference ready for mapping.
#[derive(Debug)]
pub struct Mapper {
    reference: DnaSeq,
    index: FmIndex,
    params: MapperParams,
}

impl Mapper {
    /// Index `reference` for mapping.
    pub fn new(reference: DnaSeq, params: MapperParams) -> Self {
        let index = FmIndex::new(&reference);
        Mapper {
            reference,
            index,
            params,
        }
    }

    /// The indexed reference.
    pub fn reference(&self) -> &DnaSeq {
        &self.reference
    }

    /// The parameters in effect.
    pub fn params(&self) -> &MapperParams {
        &self.params
    }

    /// Map one read; returns the best-scoring placement, if any reaches
    /// `min_score`.
    pub fn map(&self, read: &DnaSeq) -> Option<MapHit> {
        let fwd = self.map_strand(read, false);
        let rev = self.map_strand(&read.revcomp(), true);
        match (fwd, rev) {
            (Some(f), Some(r)) => Some(if f.alignment.score >= r.alignment.score {
                f
            } else {
                r
            }),
            (f, r) => f.or(r),
        }
    }

    fn map_strand(&self, read: &DnaSeq, reverse: bool) -> Option<MapHit> {
        let p = &self.params;
        let n = read.len();
        if n == 0 {
            return None;
        }
        let seed_len = p.seed_len.min(n);
        let subst = Simple::new(2, -3);
        let gaps = GapModel::Affine { open: 5, extend: 2 };

        let mut best: Option<MapHit> = None;
        let mut tried: Vec<usize> = Vec::new();

        let mut offset = 0usize;
        while offset + seed_len <= n {
            let seed = read.slice(offset, seed_len);
            let (lo, hi) = self.index.backward_search(seed.codes());
            let hits = hi.saturating_sub(lo);
            if hits > 0 && hits <= p.max_seed_hits {
                for row in lo..hi {
                    let seed_pos = self.index.locate_row(row);
                    // Candidate window: read placed so its start aligns to
                    // seed_pos - offset, padded by the band.
                    let start = seed_pos.saturating_sub(offset + p.band);
                    let end = (seed_pos + (n - offset) + p.band).min(self.reference.len());
                    if end <= start {
                        continue;
                    }
                    if tried.contains(&start) {
                        continue;
                    }
                    tried.push(start);
                    let window = &self.reference.codes()[start..end];
                    let aln = semiglobal_align(read.codes(), window, &subst, gaps);
                    if aln.score >= p.min_score
                        && best
                            .as_ref()
                            .map(|b| aln.score > b.alignment.score)
                            .unwrap_or(true)
                    {
                        best = Some(MapHit {
                            position: start + aln.target.0,
                            reverse,
                            alignment: aln,
                        });
                    }
                }
            }
            if offset + seed_len == n {
                break;
            }
            offset = (offset + p.seed_interval).min(n - seed_len);
        }
        best
    }

    /// Map a batch of reads; `None` entries are unmapped.
    pub fn map_all(&self, reads: &[DnaSeq]) -> Vec<Option<MapHit>> {
        reads.iter().map(|r| self.map(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{random_genome, simulate_reads, ReadProfile};
    use rand::SeedableRng;

    fn mapper_with_genome(len: usize, seed: u64) -> (Mapper, DnaSeq) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let genome = random_genome(len, &mut rng);
        (Mapper::new(genome.clone(), MapperParams::default()), genome)
    }

    #[test]
    fn exact_read_maps_to_origin() {
        let (mapper, genome) = mapper_with_genome(2000, 11);
        let read = genome.slice(512, 80);
        let hit = mapper.map(&read).expect("exact read must map");
        assert_eq!(hit.position, 512);
        assert!(!hit.reverse);
        assert_eq!(hit.alignment.score, 160);
    }

    #[test]
    fn reverse_complement_read_maps() {
        let (mapper, genome) = mapper_with_genome(2000, 12);
        let read = genome.slice(700, 60).revcomp();
        let hit = mapper.map(&read).expect("revcomp read must map");
        assert_eq!(hit.position, 700);
        assert!(hit.reverse);
    }

    #[test]
    fn read_with_mismatches_maps_near_origin() {
        let (mapper, genome) = mapper_with_genome(4000, 13);
        let mut codes = genome.slice(1000, 100).codes().to_vec();
        codes[50] = (codes[50] + 1) % 4;
        codes[80] = (codes[80] + 2) % 4;
        let read = DnaSeq::from_codes(codes);
        let hit = mapper.map(&read).expect("2-mismatch read must map");
        assert_eq!(hit.position, 1000);
        assert_eq!(hit.alignment.score, 98 * 2 - 2 * 3);
    }

    #[test]
    fn garbage_read_is_unmapped() {
        let (mapper, _) = mapper_with_genome(2000, 14);
        // Homopolymer unlikely to have a 20-mer exact hit in random DNA.
        let read: DnaSeq = "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA".parse().unwrap();
        let params = MapperParams {
            min_score: 40,
            ..MapperParams::default()
        };
        let mapper2 = Mapper::new(mapper.reference().clone(), params);
        assert!(mapper2.map(&read).is_none());
    }

    #[test]
    fn simulated_reads_mostly_map_to_truth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let genome = random_genome(20_000, &mut rng);
        let profile = ReadProfile {
            length: 100,
            sub_rate: 0.01,
            ..ReadProfile::default()
        };
        let reads = simulate_reads(&genome, 50, profile, &mut rng);
        let mapper = Mapper::new(genome, MapperParams::default());
        let mut correct = 0;
        for r in &reads {
            if let Some(hit) = mapper.map(&r.seq) {
                if hit.position.abs_diff(r.origin) <= 5 && hit.reverse == r.reverse {
                    correct += 1;
                }
            }
        }
        assert!(
            correct >= 45,
            "expected >=45/50 reads mapped to the truth, got {correct}"
        );
    }

    #[test]
    fn empty_read_is_unmapped() {
        let (mapper, _) = mapper_with_genome(1000, 15);
        assert!(mapper.map(&DnaSeq::new()).is_none());
    }
}
