//! Center-star multiple sequence alignment (the STAR benchmark's
//! algorithm): pick the sequence with the best total pairwise score as the
//! center, align every other sequence to it, and merge the pairwise
//! alignments into one gapped matrix.

use crate::align::{nw_align, nw_score, CigarOp};
use crate::scoring::{GapModel, SubstScore};

/// Gap symbol in MSA rows (distinct from all sequence codes).
pub const GAP: u8 = 0xFF;

/// A finished multiple alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msa {
    /// Index of the center sequence in the input slice.
    pub center: usize,
    /// One gapped row per input sequence (same order as the input); every
    /// row has equal length and uses [`GAP`] for gaps.
    pub rows: Vec<Vec<u8>>,
}

impl Msa {
    /// Number of alignment columns.
    pub fn columns(&self) -> usize {
        self.rows.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Sum-of-pairs score of the alignment under `subst`, charging
    /// `gap_penalty` per symbol-against-gap column pair (gap-gap pairs are
    /// free).
    pub fn sp_score(&self, subst: &impl SubstScore, gap_penalty: i32) -> i64 {
        let cols = self.columns();
        let mut total = 0i64;
        for c in 0..cols {
            for a in 0..self.rows.len() {
                for b in a + 1..self.rows.len() {
                    let (x, y) = (self.rows[a][c], self.rows[b][c]);
                    total += match (x == GAP, y == GAP) {
                        (false, false) => subst.score(x, y) as i64,
                        (true, true) => 0,
                        _ => -(gap_penalty as i64),
                    };
                }
            }
        }
        total
    }

    /// Majority-vote consensus (gaps excluded; ties broken by smaller
    /// symbol). Columns that are all-gap are skipped.
    pub fn consensus(&self) -> Vec<u8> {
        let cols = self.columns();
        let mut out = Vec::with_capacity(cols);
        for c in 0..cols {
            let mut counts = std::collections::BTreeMap::new();
            for row in &self.rows {
                if row[c] != GAP {
                    *counts.entry(row[c]).or_insert(0usize) += 1;
                }
            }
            if let Some((&sym, _)) = counts.iter().max_by_key(|(_, &n)| n) {
                out.push(sym);
            }
        }
        out
    }

    /// Render rows as strings using `decode` for symbols and `-` for gaps.
    pub fn to_strings(&self, decode: impl Fn(u8) -> char) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|&c| if c == GAP { '-' } else { decode(c) })
                    .collect()
            })
            .collect()
    }
}

/// Choose the center sequence: the one maximizing the sum of pairwise
/// global-alignment scores against all others.
pub fn choose_center(seqs: &[Vec<u8>], subst: &impl SubstScore, gaps: GapModel) -> usize {
    let n = seqs.len();
    let mut sums = vec![0i64; n];
    for i in 0..n {
        for j in i + 1..n {
            let s = nw_score(&seqs[i], &seqs[j], subst, gaps) as i64;
            sums[i] += s;
            sums[j] += s;
        }
    }
    sums.iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Run the center-star algorithm over `seqs`.
///
/// # Panics
///
/// Panics if `seqs` is empty.
pub fn center_star(seqs: &[Vec<u8>], subst: &impl SubstScore, gaps: GapModel) -> Msa {
    assert!(!seqs.is_empty(), "MSA needs at least one sequence");
    if seqs.len() == 1 {
        return Msa {
            center: 0,
            rows: vec![seqs[0].clone()],
        };
    }
    let center = choose_center(seqs, subst, gaps);
    let c = &seqs[center];

    // Pairwise alignments of each sequence (query) to the center (target).
    let alns: Vec<_> = seqs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i == center {
                None
            } else {
                Some(nw_align(s, c, subst, gaps))
            }
        })
        .collect();

    // gaps_before[j]: maximum run of center-gaps (query insertions) any
    // alignment needs before center position j (j in 0..=len).
    let mut gaps_before = vec![0u32; c.len() + 1];
    for aln in alns.iter().flatten() {
        let mut j = 0usize;
        let mut run = 0u32;
        for &(op, n) in &aln.cigar {
            match op {
                CigarOp::Ins => run += n,
                CigarOp::Match | CigarOp::Del => {
                    gaps_before[j] = gaps_before[j].max(run);
                    run = 0;
                    j += n as usize;
                }
            }
        }
        gaps_before[j] = gaps_before[j].max(run);
    }

    // Re-emit every row against the master gap pattern.
    let mut rows = vec![Vec::new(); seqs.len()];
    for (i, seq) in seqs.iter().enumerate() {
        let row = &mut rows[i];
        if i == center {
            for (j, &sym) in c.iter().enumerate() {
                for _ in 0..gaps_before[j] {
                    row.push(GAP);
                }
                row.push(sym);
            }
            for _ in 0..gaps_before[c.len()] {
                row.push(GAP);
            }
            continue;
        }
        let aln = alns[i].as_ref().expect("non-center rows have alignments");
        let mut qi = 0usize; // position in seq
        let mut j = 0usize; // center position
                            // Flatten the CIGAR into per-column ops, consuming the master gap
                            // budget before each center position.
        let mut flat: Vec<CigarOp> = Vec::new();
        for &(op, n) in &aln.cigar {
            for _ in 0..n {
                flat.push(op);
            }
        }
        let mut fi = 0usize;
        while j <= c.len() {
            // Count this alignment's insertions before center position j.
            let mut pending_ins: u32 = 0;
            while fi < flat.len() && flat[fi] == CigarOp::Ins {
                pending_ins += 1;
                fi += 1;
            }
            let budget = gaps_before[j];
            // Emit this row's own inserted symbols, padded to the budget.
            for _ in 0..pending_ins {
                row.push(seq[qi]);
                qi += 1;
            }
            for _ in pending_ins..budget {
                row.push(GAP);
            }
            if j == c.len() {
                break;
            }
            // Column for center position j.
            match flat.get(fi) {
                Some(CigarOp::Match) => {
                    row.push(seq[qi]);
                    qi += 1;
                    fi += 1;
                }
                Some(CigarOp::Del) => {
                    row.push(GAP);
                    fi += 1;
                }
                _ => row.push(GAP),
            }
            j += 1;
        }
    }

    debug_assert!(rows.iter().all(|r| r.len() == rows[0].len()));
    Msa { center, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Simple;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> Vec<u8> {
        s.parse::<DnaSeq>().unwrap().codes().to_vec()
    }

    const SUB: Simple = Simple {
        matches: 2,
        mismatch: -3,
    };
    const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

    fn degap(row: &[u8]) -> Vec<u8> {
        row.iter().copied().filter(|&c| c != GAP).collect()
    }

    #[test]
    fn identical_sequences_align_trivially() {
        let seqs = vec![dna("ACGTACGT"), dna("ACGTACGT"), dna("ACGTACGT")];
        let msa = center_star(&seqs, &SUB, GAPS);
        assert_eq!(msa.columns(), 8);
        for row in &msa.rows {
            assert_eq!(row, &dna("ACGTACGT"));
        }
    }

    #[test]
    fn rows_preserve_sequences() {
        let seqs = vec![
            dna("ACGTACGTAC"),
            dna("ACGTCGTAC"),   // one deletion
            dna("ACGTAACGTAC"), // one insertion
            dna("ACGTACGTGC"),  // one substitution
        ];
        let msa = center_star(&seqs, &SUB, GAPS);
        for (i, row) in msa.rows.iter().enumerate() {
            assert_eq!(degap(row), seqs[i], "row {i} must de-gap to its input");
        }
        // All rows equal length.
        let cols = msa.columns();
        assert!(msa.rows.iter().all(|r| r.len() == cols));
        assert!(cols >= 11, "must fit the longest sequence");
    }

    #[test]
    fn center_is_most_similar() {
        // Three similar sequences and one outlier: center must not be the
        // outlier.
        let seqs = vec![
            dna("ACGTACGTACGTACGT"),
            dna("ACGTACGAACGTACGT"),
            dna("ACGTACGTACGTACGA"),
            dna("TTTTTTTTTTTTTTTT"),
        ];
        let c = choose_center(&seqs, &SUB, GAPS);
        assert_ne!(c, 3);
    }

    #[test]
    fn consensus_of_snp_pile() {
        let seqs = vec![
            dna("ACGTACGT"),
            dna("ACGTACGT"),
            dna("ACTTACGT"), // SNP at position 2 in one sequence
        ];
        let msa = center_star(&seqs, &SUB, GAPS);
        assert_eq!(msa.consensus(), dna("ACGTACGT"));
    }

    #[test]
    fn sp_score_prefers_similar_sets() {
        let similar = vec![dna("ACGTACGT"), dna("ACGTACGT"), dna("ACGTACGA")];
        let diverse = vec![dna("ACGTACGT"), dna("TTGCATGC"), dna("GGGGCCCC")];
        let m1 = center_star(&similar, &SUB, GAPS);
        let m2 = center_star(&diverse, &SUB, GAPS);
        assert!(m1.sp_score(&SUB, 4) > m2.sp_score(&SUB, 4));
    }

    #[test]
    fn single_sequence() {
        let msa = center_star(&[dna("ACGT")], &SUB, GAPS);
        assert_eq!(msa.columns(), 4);
        assert_eq!(msa.center, 0);
    }

    #[test]
    fn to_strings_renders_gaps() {
        let seqs = vec![dna("ACGT"), dna("AGT")];
        let msa = center_star(&seqs, &SUB, GAPS);
        let strs = msa.to_strings(|c| crate::seq::decode_base(c) as char);
        assert_eq!(strs.len(), 2);
        assert!(strs[1].contains('-'), "{strs:?}");
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn empty_input_panics() {
        let _ = center_star(&[], &SUB, GAPS);
    }
}
