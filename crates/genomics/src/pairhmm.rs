//! Pair Hidden Markov Model forward algorithm (GATK-HaplotypeCaller
//! style), computing the likelihood that a read was sequenced from a
//! candidate haplotype.

/// Pair-HMM transition parameters.
///
/// The model has three states — match (M), insertion-in-read (X) and
/// deletion-from-read (Y) — with the standard GATK transition structure:
/// gap open `delta`, gap extension `epsilon`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairHmm {
    /// Gap-open probability (M→X, M→Y).
    pub gap_open: f64,
    /// Gap-extension probability (X→X, Y→Y).
    pub gap_ext: f64,
}

impl Default for PairHmm {
    /// GATK-like defaults: gap open 1e-3, extension 0.1.
    fn default() -> Self {
        PairHmm {
            gap_open: 1e-3,
            gap_ext: 0.1,
        }
    }
}

/// Convert a Phred base quality to an error probability.
#[inline]
pub fn phred_to_error(q: u8) -> f64 {
    10f64.powf(-(q as f64) / 10.0)
}

impl PairHmm {
    /// Forward-algorithm likelihood `log10 P(read | haplotype)`.
    ///
    /// `read` and `hap` are symbol slices (2-bit codes); `quals` are Phred
    /// base qualities, one per read base.
    ///
    /// # Panics
    ///
    /// Panics if `quals.len() != read.len()`.
    pub fn forward(&self, read: &[u8], quals: &[u8], hap: &[u8]) -> f64 {
        assert_eq!(read.len(), quals.len(), "one quality per read base");
        let n = read.len();
        let m = hap.len();
        if n == 0 || m == 0 {
            return f64::NEG_INFINITY;
        }
        let t_mm = 1.0 - 2.0 * self.gap_open;
        let t_mx = self.gap_open;
        let t_my = self.gap_open;
        let t_xx = self.gap_ext;
        let t_xm = 1.0 - self.gap_ext;
        let t_yy = self.gap_ext;
        let t_ym = 1.0 - self.gap_ext;

        // Row-wise DP with scaling to avoid underflow on long reads.
        let w = m + 1;
        let mut m_prev = vec![0f64; w];
        let mut x_prev = vec![0f64; w];
        let mut y_prev = vec![0f64; w];
        let mut m_cur = vec![0f64; w];
        let mut x_cur = vec![0f64; w];
        let mut y_cur = vec![0f64; w];
        // Free start anywhere in the haplotype: probability mass enters
        // through the Y (deletion) state of row 0.
        let init = 1.0 / m as f64;
        y_prev.iter_mut().for_each(|y| *y = init);
        let mut log_scale = 0f64;

        for i in 1..=n {
            let err = phred_to_error(quals[i - 1]);
            m_cur[0] = 0.0;
            x_cur[0] = 0.0;
            y_cur[0] = 0.0;
            for j in 1..=m {
                let prior = if read[i - 1] == hap[j - 1] {
                    1.0 - err
                } else {
                    err / 3.0
                };
                m_cur[j] =
                    prior * (t_mm * m_prev[j - 1] + t_xm * x_prev[j - 1] + t_ym * y_prev[j - 1]);
                x_cur[j] = t_mx * m_prev[j] + t_xx * x_prev[j];
                y_cur[j] = t_my * m_cur[j - 1] + t_yy * y_cur[j - 1];
            }
            // Rescale the row to keep values in range.
            let row_max = m_cur
                .iter()
                .chain(x_cur.iter())
                .chain(y_cur.iter())
                .fold(0f64, |a, &b| a.max(b));
            if row_max > 0.0 && !(1e-100..=1e100).contains(&row_max) {
                let inv = 1.0 / row_max;
                for v in m_cur
                    .iter_mut()
                    .chain(x_cur.iter_mut())
                    .chain(y_cur.iter_mut())
                {
                    *v *= inv;
                }
                log_scale += row_max.log10();
            }
            std::mem::swap(&mut m_prev, &mut m_cur);
            std::mem::swap(&mut x_prev, &mut x_cur);
            std::mem::swap(&mut y_prev, &mut y_cur);
        }

        // Free end anywhere: sum M and X mass over the final row.
        let total: f64 = (1..=m).map(|j| m_prev[j] + x_prev[j]).sum();
        if total <= 0.0 {
            f64::NEG_INFINITY
        } else {
            total.log10() + log_scale
        }
    }

    /// Likelihood of a read against each haplotype in `haps`, as
    /// `log10` values (the GATK genotyping inner loop).
    pub fn forward_all(&self, read: &[u8], quals: &[u8], haps: &[Vec<u8>]) -> Vec<f64> {
        haps.iter().map(|h| self.forward(read, quals, h)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn dna(s: &str) -> Vec<u8> {
        s.parse::<DnaSeq>().unwrap().codes().to_vec()
    }

    #[test]
    fn phred_conversion() {
        assert!((phred_to_error(10) - 0.1).abs() < 1e-12);
        assert!((phred_to_error(30) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn perfect_match_beats_mismatch() {
        let hmm = PairHmm::default();
        let read = dna("ACGTACGTACGT");
        let quals = vec![30u8; read.len()];
        let hap_exact = dna("TTTTACGTACGTACGTTTTT");
        let hap_mut = dna("TTTTACGAACGTACGTTTTT"); // one substitution
        let exact = hmm.forward(&read, &quals, &hap_exact);
        let with_mismatch = hmm.forward(&read, &quals, &hap_mut);
        assert!(exact > with_mismatch, "{exact} vs {with_mismatch}");
    }

    #[test]
    fn lower_quality_softens_mismatch_penalty() {
        let hmm = PairHmm::default();
        let read = dna("ACGTACGTACGT");
        let hap = dna("ACGAACGTACGT"); // mismatch at position 3
        let mut quals_high = vec![40u8; read.len()];
        let mut quals_low = quals_high.clone();
        quals_high[3] = 40;
        quals_low[3] = 5; // the mismatched base is low-confidence
        let high = hmm.forward(&read, &quals_high, &hap);
        let low = hmm.forward(&read, &quals_low, &hap);
        assert!(
            low > high,
            "low-quality mismatch should be likelier: {low} vs {high}"
        );
    }

    #[test]
    fn indel_haplotype_scores_below_exact() {
        let hmm = PairHmm::default();
        let read = dna("ACGTACGTACGTACGT");
        let quals = vec![30u8; read.len()];
        let exact = hmm.forward(&read, &quals, &dna("ACGTACGTACGTACGT"));
        let del = hmm.forward(&read, &quals, &dna("ACGTACGACGTACGT"));
        assert!(exact > del);
        // But an indel is far better than a random haplotype.
        let random = hmm.forward(&read, &quals, &dna("GGGGGGGGGGGGGGGG"));
        assert!(del > random);
    }

    #[test]
    fn forward_all_ranks_haplotypes() {
        let hmm = PairHmm::default();
        let read = dna("ACGTACGT");
        let quals = vec![30u8; 8];
        let haps = vec![dna("ACGTACGT"), dna("ACGTTCGT"), dna("TTTTTTTT")];
        let lks = hmm.forward_all(&read, &quals, &haps);
        assert!(lks[0] > lks[1]);
        assert!(lks[1] > lks[2]);
    }

    #[test]
    fn long_reads_do_not_underflow() {
        let hmm = PairHmm::default();
        let read: Vec<u8> = (0..2000).map(|i| (i % 4) as u8).collect();
        let quals = vec![30u8; read.len()];
        let lk = hmm.forward(&read, &quals, &read.clone());
        assert!(lk.is_finite(), "got {lk}");
    }

    #[test]
    fn empty_inputs_are_impossible() {
        let hmm = PairHmm::default();
        assert_eq!(hmm.forward(&[], &[], &dna("ACGT")), f64::NEG_INFINITY);
        assert_eq!(hmm.forward(&dna("AC"), &[0, 0], &[]), f64::NEG_INFINITY);
    }
}
