//! Substitution scoring and gap penalty models.

/// Substitution scorer over sequence symbols (2-bit DNA codes or ASCII
/// amino acids, depending on the implementation).
pub trait SubstScore {
    /// Score of aligning symbol `a` against symbol `b`.
    fn score(&self, a: u8, b: u8) -> i32;
}

/// Simple match/mismatch scoring (DNA-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simple {
    /// Score for `a == b`.
    pub matches: i32,
    /// Score for `a != b` (typically negative).
    pub mismatch: i32,
}

impl Simple {
    /// The GASAL2 / KSW2 default: +1 / -4... scaled variant +2/-3 is also
    /// common; this constructor takes both explicitly.
    pub fn new(matches: i32, mismatch: i32) -> Self {
        Simple { matches, mismatch }
    }
}

impl Default for Simple {
    /// match=+2, mismatch=-3 (BWA-ish defaults).
    fn default() -> Self {
        Simple {
            matches: 2,
            mismatch: -3,
        }
    }
}

impl SubstScore for Simple {
    #[inline]
    fn score(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matches
        } else {
            self.mismatch
        }
    }
}

/// Gap penalty model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Cost `penalty` per gapped base (penalty is positive; subtracted).
    Linear {
        /// Per-base gap cost (positive).
        penalty: i32,
    },
    /// Affine `open + extend * len` (both positive; subtracted).
    Affine {
        /// Cost to open a gap (positive).
        open: i32,
        /// Cost per gapped base (positive).
        extend: i32,
    },
}

impl GapModel {
    /// Total penalty (positive) for a gap of `len` bases.
    pub fn cost(&self, len: u32) -> i32 {
        match *self {
            GapModel::Linear { penalty } => penalty * len as i32,
            GapModel::Affine { open, extend } => {
                if len == 0 {
                    0
                } else {
                    open + extend * len as i32
                }
            }
        }
    }
}

impl Default for GapModel {
    /// Affine open=5, extend=2 (common NGS defaults).
    fn default() -> Self {
        GapModel::Affine { open: 5, extend: 2 }
    }
}

/// BLOSUM62 amino-acid substitution matrix (indexed by ASCII residues).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Blosum62;

/// Residue order of the packed BLOSUM62 table.
const B62_ORDER: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// Packed 20×20 BLOSUM62 scores in `B62_ORDER` order.
#[rustfmt::skip]
const B62: [[i8; 20]; 20] = [
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1], // Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4], // V
];

fn b62_index(c: u8) -> Option<usize> {
    B62_ORDER.iter().position(|&x| x == c.to_ascii_uppercase())
}

/// The BLOSUM62 table indexed by residue *indices* (0..20 in
/// [`crate::seq::PROTEIN_ALPHABET`] order) rather than ASCII — the encoding
/// shared with the GPU kernels, whose constant memory holds this matrix.
pub fn blosum62_index_matrix() -> [[i8; 20]; 20] {
    B62
}

/// Substitution scorer over index-encoded residues (0..20), backed by an
/// explicit matrix. Out-of-range symbols score the `default` penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedMatrix {
    /// The 20×20 score table.
    pub table: [[i8; 20]; 20],
    /// Score for any symbol outside 0..20.
    pub default: i32,
}

impl IndexedMatrix {
    /// BLOSUM62 over index-encoded residues.
    pub fn blosum62() -> Self {
        IndexedMatrix {
            table: B62,
            default: -1,
        }
    }
}

impl SubstScore for IndexedMatrix {
    fn score(&self, a: u8, b: u8) -> i32 {
        match (self.table.get(a as usize), b) {
            (Some(row), b) if (b as usize) < 20 => row[b as usize] as i32,
            _ => self.default,
        }
    }
}

/// Encode an ASCII protein sequence to residue indices; unknown residues
/// map to index 0.
pub fn encode_protein(ascii: &[u8]) -> Vec<u8> {
    ascii
        .iter()
        .map(|&c| b62_index(c).unwrap_or(0) as u8)
        .collect()
}

impl SubstScore for Blosum62 {
    fn score(&self, a: u8, b: u8) -> i32 {
        match (b62_index(a), b62_index(b)) {
            (Some(i), Some(j)) => B62[i][j] as i32,
            // Unknown residues (X, B, Z, ...) get a flat mild penalty.
            _ => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_scoring() {
        let s = Simple::new(1, -4);
        assert_eq!(s.score(0, 0), 1);
        assert_eq!(s.score(0, 3), -4);
    }

    #[test]
    fn gap_costs() {
        assert_eq!(GapModel::Linear { penalty: 2 }.cost(3), 6);
        let affine = GapModel::Affine { open: 5, extend: 2 };
        assert_eq!(affine.cost(0), 0);
        assert_eq!(affine.cost(1), 7);
        assert_eq!(affine.cost(4), 13);
    }

    #[test]
    fn blosum62_is_symmetric() {
        let m = Blosum62;
        for &a in B62_ORDER {
            for &b in B62_ORDER {
                assert_eq!(
                    m.score(a, b),
                    m.score(b, a),
                    "{} vs {}",
                    a as char,
                    b as char
                );
            }
        }
    }

    #[test]
    fn indexed_matrix_matches_ascii_blosum() {
        let by_ascii = Blosum62;
        let by_index = IndexedMatrix::blosum62();
        for (i, &a) in B62_ORDER.iter().enumerate() {
            for (j, &b) in B62_ORDER.iter().enumerate() {
                assert_eq!(
                    by_ascii.score(a, b),
                    by_index.score(i as u8, j as u8),
                    "{} vs {}",
                    a as char,
                    b as char
                );
            }
        }
        assert_eq!(by_index.score(25, 0), -1, "out of range uses default");
    }

    #[test]
    fn encode_protein_roundtrip() {
        let idx = encode_protein(b"ARNDV");
        assert_eq!(idx, vec![0, 1, 2, 3, 19]);
        assert_eq!(encode_protein(b"?"), vec![0]);
    }

    #[test]
    fn blosum62_spot_checks() {
        let m = Blosum62;
        assert_eq!(m.score(b'W', b'W'), 11);
        assert_eq!(m.score(b'A', b'A'), 4);
        assert_eq!(m.score(b'A', b'R'), -1);
        assert_eq!(m.score(b'w', b'w'), 11, "case-insensitive");
        assert_eq!(m.score(b'X', b'A'), -1, "unknown residue");
    }
}
