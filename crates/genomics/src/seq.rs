//! Nucleotide/protein sequences and encodings.

use std::fmt;

/// 2-bit DNA codes: A=0, C=1, G=2, T=3.
pub const DNA_ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// The 20 standard amino acids (plus `X` handled as unknown).
pub const PROTEIN_ALPHABET: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// Encode an ASCII nucleotide to its 2-bit code; `None` for non-ACGT
/// (including N).
#[inline]
pub fn encode_base(c: u8) -> Option<u8> {
    match c.to_ascii_uppercase() {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' | b'U' => Some(3),
        _ => None,
    }
}

/// Decode a 2-bit code to ASCII.
///
/// # Panics
///
/// Panics if `code > 3`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    DNA_ALPHABET[code as usize]
}

/// Complement of a 2-bit code.
#[inline]
pub fn complement(code: u8) -> u8 {
    3 - code
}

/// A DNA sequence stored as 2-bit codes (one per byte).
///
/// ```
/// use ggpu_genomics::DnaSeq;
/// let s: DnaSeq = "ACGT".parse().unwrap();
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.revcomp().to_string(), "ACGT"); // ACGT is its own revcomp
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

/// Error parsing a DNA string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeqError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The character that was not a nucleotide.
    pub found: char,
}

impl fmt::Display for ParseSeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid nucleotide {:?} at position {}",
            self.found, self.position
        )
    }
}

impl std::error::Error for ParseSeqError {}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// From raw 2-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if any code exceeds 3.
    pub fn from_codes(codes: Vec<u8>) -> Self {
        assert!(codes.iter().all(|&c| c < 4), "invalid 2-bit code");
        DnaSeq { codes }
    }

    /// The 2-bit codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Length in bases.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Subsequence `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> DnaSeq {
        DnaSeq {
            codes: self.codes[start..start + len].to_vec(),
        }
    }

    /// Reverse complement.
    pub fn revcomp(&self) -> DnaSeq {
        DnaSeq {
            codes: self.codes.iter().rev().map(|&c| complement(c)).collect(),
        }
    }

    /// Append one code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn push(&mut self, code: u8) {
        assert!(code < 4);
        self.codes.push(code);
    }

    /// ASCII bytes (`A`/`C`/`G`/`T`).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.codes.iter().map(|&c| decode_base(c)).collect()
    }

    /// Iterate over k-mers as packed 2-bit integers (`k <= 31`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 31`.
    pub fn kmers(&self, k: usize) -> Kmers<'_> {
        assert!(k > 0 && k <= 31, "k must be in 1..=31");
        Kmers {
            seq: &self.codes,
            k,
            pos: 0,
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = ParseSeqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut codes = Vec::with_capacity(s.len());
        for (i, b) in s.bytes().enumerate() {
            match encode_base(b) {
                Some(c) => codes.push(c),
                None => {
                    return Err(ParseSeqError {
                        position: i,
                        found: b as char,
                    })
                }
            }
        }
        Ok(DnaSeq { codes })
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &c in &self.codes {
            write!(f, "{}", decode_base(c) as char)?;
        }
        Ok(())
    }
}

/// Iterator over packed k-mers of a [`DnaSeq`]; see [`DnaSeq::kmers`].
#[derive(Debug)]
pub struct Kmers<'a> {
    seq: &'a [u8],
    k: usize,
    pos: usize,
}

impl Iterator for Kmers<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.pos + self.k > self.seq.len() {
            return None;
        }
        let mut v = 0u64;
        for &c in &self.seq[self.pos..self.pos + self.k] {
            v = (v << 2) | c as u64;
        }
        self.pos += 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for (i, &b) in DNA_ALPHABET.iter().enumerate() {
            assert_eq!(encode_base(b), Some(i as u8));
            assert_eq!(decode_base(i as u8), b);
        }
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b'u'), Some(3));
        assert_eq!(encode_base(b'N'), None);
    }

    #[test]
    fn parse_and_display() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
        let err = "ACGN".parse::<DnaSeq>().unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.found, 'N');
    }

    #[test]
    fn revcomp() {
        let s: DnaSeq = "AACGTT".parse().unwrap();
        assert_eq!(s.revcomp().to_string(), "AACGTT");
        let s2: DnaSeq = "AAAC".parse().unwrap();
        assert_eq!(s2.revcomp().to_string(), "GTTT");
        // Double revcomp is identity.
        assert_eq!(s2.revcomp().revcomp(), s2);
    }

    #[test]
    fn slicing() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.slice(2, 4).to_string(), "GTAC");
    }

    #[test]
    fn kmers_packed() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let kmers: Vec<u64> = s.kmers(2).collect();
        // AC=0b0001, CG=0b0110, GT=0b1011
        assert_eq!(kmers, vec![0b0001, 0b0110, 0b1011]);
        assert_eq!(s.kmers(4).count(), 1);
        assert_eq!(s.kmers(5).count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid 2-bit code")]
    fn bad_codes_panic() {
        let _ = DnaSeq::from_codes(vec![4]);
    }
}
