//! Synthetic data generation: random genomes, mutated variants, sequencing
//! reads with configurable error profiles, and protein sequences.
//!
//! These generators stand in for the paper's datasets (hg19 + SRR493095
//! reads, `protein.txt`, `query_batch.fasta`, `testData.fasta`): the
//! microarchitectural behaviour of the kernels depends on workload *shape*
//! (sequence counts, lengths, divergence), which these reproduce.

use rand::Rng;

use crate::seq::{DnaSeq, PROTEIN_ALPHABET};

/// Uniform random genome of `len` bases.
pub fn random_genome(len: usize, rng: &mut impl Rng) -> DnaSeq {
    DnaSeq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
}

/// Random protein sequence of `len` residues (ASCII).
pub fn random_protein(len: usize, rng: &mut impl Rng) -> Vec<u8> {
    (0..len)
        .map(|_| PROTEIN_ALPHABET[rng.gen_range(0..PROTEIN_ALPHABET.len())])
        .collect()
}

/// Copy `seq` with random substitutions and indels at the given rates —
/// used to make related sequence families (MSA and clustering inputs).
pub fn mutate(seq: &DnaSeq, sub_rate: f64, indel_rate: f64, rng: &mut impl Rng) -> DnaSeq {
    let mut out = Vec::with_capacity(seq.len() + 8);
    for &c in seq.codes() {
        let r: f64 = rng.gen();
        if r < indel_rate / 2.0 {
            // Deletion: skip the base.
            continue;
        } else if r < indel_rate {
            // Insertion: emit a random base, then the original.
            out.push(rng.gen_range(0..4u8));
            out.push(c);
        } else if r < indel_rate + sub_rate {
            out.push((c + rng.gen_range(1..4u8)) % 4);
        } else {
            out.push(c);
        }
    }
    if out.is_empty() {
        out.push(rng.gen_range(0..4u8));
    }
    DnaSeq::from_codes(out)
}

/// A family of `n` sequences derived from one random ancestor (each child
/// mutated independently) — the shape of the STAR/CLUSTER datasets.
pub fn sequence_family(
    n: usize,
    len: usize,
    sub_rate: f64,
    indel_rate: f64,
    rng: &mut impl Rng,
) -> Vec<DnaSeq> {
    let ancestor = random_genome(len, rng);
    (0..n)
        .map(|i| {
            if i == 0 {
                ancestor.clone()
            } else {
                mutate(&ancestor, sub_rate, indel_rate, rng)
            }
        })
        .collect()
}

/// Sequencing-read error profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadProfile {
    /// Read length in bases.
    pub length: usize,
    /// Per-base substitution error rate.
    pub sub_rate: f64,
    /// Per-base indel error rate.
    pub indel_rate: f64,
    /// Baseline Phred quality assigned to correct bases.
    pub base_qual: u8,
    /// Fraction of reads drawn from the reverse strand.
    pub reverse_fraction: f64,
}

impl Default for ReadProfile {
    /// Illumina-like: 100bp, 0.5% substitutions, few indels, Q30.
    fn default() -> Self {
        ReadProfile {
            length: 100,
            sub_rate: 0.005,
            indel_rate: 0.0005,
            base_qual: 30,
            reverse_fraction: 0.5,
        }
    }
}

/// A simulated read with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulatedRead {
    /// The (possibly errored, possibly reverse-complemented) read sequence.
    pub seq: DnaSeq,
    /// Phred qualities, one per base.
    pub quals: Vec<u8>,
    /// True 0-based position on the forward reference.
    pub origin: usize,
    /// True strand.
    pub reverse: bool,
}

/// Simulate `n` reads from `genome` under `profile`.
///
/// # Panics
///
/// Panics if the genome is shorter than the read length.
pub fn simulate_reads(
    genome: &DnaSeq,
    n: usize,
    profile: ReadProfile,
    rng: &mut impl Rng,
) -> Vec<SimulatedRead> {
    assert!(
        genome.len() >= profile.length,
        "genome shorter than read length"
    );
    (0..n)
        .map(|_| {
            let origin = rng.gen_range(0..=genome.len() - profile.length);
            let fragment = genome.slice(origin, profile.length);
            let reverse = rng.gen_bool(profile.reverse_fraction);
            let template = if reverse {
                fragment.revcomp()
            } else {
                fragment
            };
            let mut codes = Vec::with_capacity(profile.length);
            let mut quals = Vec::with_capacity(profile.length);
            for &c in template.codes() {
                let r: f64 = rng.gen();
                if r < profile.sub_rate {
                    codes.push((c + rng.gen_range(1..4u8)) % 4);
                    quals.push(profile.base_qual.saturating_sub(15));
                } else if r < profile.sub_rate + profile.indel_rate {
                    // Small indel error: drop the base.
                    continue;
                } else {
                    codes.push(c);
                    quals.push(profile.base_qual);
                }
            }
            if codes.is_empty() {
                codes.push(0);
                quals.push(profile.base_qual);
            }
            SimulatedRead {
                seq: DnaSeq::from_codes(codes),
                quals,
                origin,
                reverse,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_genome_has_requested_length_and_alphabet() {
        let g = random_genome(1000, &mut rng(1));
        assert_eq!(g.len(), 1000);
        assert!(g.codes().iter().all(|&c| c < 4));
        // All four bases should appear in 1000 random draws.
        for base in 0..4u8 {
            assert!(g.codes().contains(&base), "missing base {base}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(
            random_genome(100, &mut rng(5)),
            random_genome(100, &mut rng(5))
        );
        assert_ne!(
            random_genome(100, &mut rng(5)),
            random_genome(100, &mut rng(6))
        );
    }

    #[test]
    fn mutate_zero_rates_is_identity() {
        let g = random_genome(200, &mut rng(2));
        assert_eq!(mutate(&g, 0.0, 0.0, &mut rng(3)), g);
    }

    #[test]
    fn mutate_changes_roughly_sub_rate() {
        let g = random_genome(10_000, &mut rng(4));
        let m = mutate(&g, 0.1, 0.0, &mut rng(5));
        assert_eq!(m.len(), g.len());
        let diffs = g
            .codes()
            .iter()
            .zip(m.codes())
            .filter(|(a, b)| a != b)
            .count();
        assert!((800..1200).contains(&diffs), "got {diffs} diffs");
    }

    #[test]
    fn family_members_resemble_ancestor() {
        let fam = sequence_family(5, 500, 0.02, 0.002, &mut rng(6));
        assert_eq!(fam.len(), 5);
        for s in &fam[1..] {
            assert!((450..550).contains(&s.len()));
        }
    }

    #[test]
    fn protein_alphabet_respected() {
        let p = random_protein(500, &mut rng(7));
        assert_eq!(p.len(), 500);
        assert!(p.iter().all(|c| PROTEIN_ALPHABET.contains(c)));
    }

    #[test]
    fn simulated_reads_carry_truth() {
        let g = random_genome(5000, &mut rng(8));
        // Substitutions only: a single indel shifts every later base, so the
        // position-wise identity check below is only meaningful without them.
        let profile = ReadProfile {
            indel_rate: 0.0,
            ..ReadProfile::default()
        };
        let reads = simulate_reads(&g, 20, profile, &mut rng(9));
        assert_eq!(reads.len(), 20);
        for r in &reads {
            assert!(r.origin + 100 <= 5000);
            assert_eq!(r.seq.len(), r.quals.len());
            // Error-free portion should match the reference fragment.
            let frag = g.slice(r.origin, 100);
            let template = if r.reverse { frag.revcomp() } else { frag };
            let matches = r
                .seq
                .codes()
                .iter()
                .zip(template.codes())
                .filter(|(a, b)| a == b)
                .count();
            assert!(matches * 10 >= r.seq.len() * 9, "read too corrupted");
        }
    }

    #[test]
    fn perfect_profile_reads_are_exact() {
        let g = random_genome(1000, &mut rng(10));
        let profile = ReadProfile {
            sub_rate: 0.0,
            indel_rate: 0.0,
            reverse_fraction: 0.0,
            ..ReadProfile::default()
        };
        for r in simulate_reads(&g, 5, profile, &mut rng(11)) {
            assert_eq!(r.seq, g.slice(r.origin, 100));
        }
    }
}
