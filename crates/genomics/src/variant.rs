//! Variant selection: pileup construction and a simple genotype caller —
//! the "variant selection" algorithm family the paper lists among the
//! suite's coverage, and the downstream consumer of the Pair-HMM scores.

use crate::pairhmm::PairHmm;
use crate::seq::DnaSeq;

/// Per-position base counts over a reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pileup {
    counts: Vec<[u32; 4]>,
}

impl Pileup {
    /// Empty pileup over a reference of `len` bases.
    pub fn new(len: usize) -> Self {
        Pileup {
            counts: vec![[0; 4]; len],
        }
    }

    /// Add one aligned read: `seq` (2-bit codes) placed at `pos` on the
    /// forward reference (gapless placement; bases running off the end are
    /// ignored).
    pub fn add_read(&mut self, pos: usize, seq: &[u8]) {
        for (i, &c) in seq.iter().enumerate() {
            if let Some(slot) = self.counts.get_mut(pos + i) {
                slot[c as usize] += 1;
            }
        }
    }

    /// Base counts at `pos` (`[A, C, G, T]`).
    pub fn counts(&self, pos: usize) -> [u32; 4] {
        self.counts.get(pos).copied().unwrap_or([0; 4])
    }

    /// Total depth at `pos`.
    pub fn depth(&self, pos: usize) -> u32 {
        self.counts(pos).iter().sum()
    }

    /// Reference length covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the pileup covers nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Diploid genotype at a biallelic site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Genotype {
    /// Homozygous reference (0/0).
    HomRef,
    /// Heterozygous (0/1).
    Het,
    /// Homozygous alternate (1/1).
    HomAlt,
}

impl std::fmt::Display for Genotype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Genotype::HomRef => "0/0",
            Genotype::Het => "0/1",
            Genotype::HomAlt => "1/1",
        };
        f.write_str(s)
    }
}

/// One called variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variant {
    /// 0-based reference position.
    pub pos: usize,
    /// Reference base (2-bit code).
    pub ref_base: u8,
    /// Alternate base (2-bit code).
    pub alt_base: u8,
    /// Read depth at the site.
    pub depth: u32,
    /// Reads supporting the alternate allele.
    pub alt_count: u32,
    /// Called genotype.
    pub genotype: Genotype,
}

/// Caller thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallerParams {
    /// Minimum read depth to call a site.
    pub min_depth: u32,
    /// Minimum alternate-allele fraction to emit a variant.
    pub min_alt_fraction: f64,
    /// Alternate fraction above which the call is homozygous alt.
    pub hom_alt_fraction: f64,
}

impl Default for CallerParams {
    fn default() -> Self {
        CallerParams {
            min_depth: 4,
            min_alt_fraction: 0.2,
            hom_alt_fraction: 0.8,
        }
    }
}

/// Call variants from a pileup against the reference.
pub fn call_variants(reference: &DnaSeq, pileup: &Pileup, params: CallerParams) -> Vec<Variant> {
    let mut out = Vec::new();
    for (pos, &ref_base) in reference.codes().iter().enumerate() {
        let counts = pileup.counts(pos);
        let depth: u32 = counts.iter().sum();
        if depth < params.min_depth {
            continue;
        }
        // Strongest non-reference allele.
        let (alt_base, alt_count) = counts
            .iter()
            .enumerate()
            .filter(|&(b, _)| b as u8 != ref_base)
            .max_by_key(|&(_, &n)| n)
            .map(|(b, &n)| (b as u8, n))
            .unwrap_or((ref_base, 0));
        let frac = alt_count as f64 / depth as f64;
        if frac < params.min_alt_fraction {
            continue;
        }
        let genotype = if frac >= params.hom_alt_fraction {
            Genotype::HomAlt
        } else {
            Genotype::Het
        };
        out.push(Variant {
            pos,
            ref_base,
            alt_base,
            depth,
            alt_count,
            genotype,
        });
    }
    out
}

/// Pair-HMM genotype likelihoods at a candidate site: `log10` likelihood
/// of the covering reads under the reference haplotype and under the
/// alternate haplotype (the GATK-style refinement of a pileup call).
///
/// `reads` are `(sequence, quals, leftmost position)` placements; only
/// reads overlapping `pos` contribute. Returns `(lk_ref, lk_alt, n_used)`.
pub fn genotype_likelihoods(
    reference: &DnaSeq,
    reads: &[(Vec<u8>, Vec<u8>, usize)],
    pos: usize,
    alt_base: u8,
    window: usize,
    hmm: &PairHmm,
) -> (f64, f64, usize) {
    let lo = pos.saturating_sub(window);
    let hi = (pos + window).min(reference.len());
    let hap_ref: Vec<u8> = reference.codes()[lo..hi].to_vec();
    let mut hap_alt = hap_ref.clone();
    hap_alt[pos - lo] = alt_base;
    let (mut lk_ref, mut lk_alt, mut used) = (0.0, 0.0, 0);
    for (seq, quals, rpos) in reads {
        if *rpos > pos || rpos + seq.len() <= pos {
            continue;
        }
        lk_ref += hmm.forward(seq, quals, &hap_ref);
        lk_alt += hmm.forward(seq, quals, &hap_alt);
        used += 1;
    }
    (lk_ref, lk_alt, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::random_genome;
    use rand::SeedableRng;

    fn reference(len: usize) -> DnaSeq {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        random_genome(len, &mut rng)
    }

    #[test]
    fn pileup_counts_reads() {
        let mut p = Pileup::new(10);
        p.add_read(2, &[0, 1, 2]);
        p.add_read(3, &[1, 2]);
        assert_eq!(p.counts(2), [1, 0, 0, 0]);
        assert_eq!(p.counts(3), [0, 2, 0, 0]);
        assert_eq!(p.counts(4), [0, 0, 2, 0]);
        assert_eq!(p.depth(3), 2);
        // Off-the-end bases are dropped.
        p.add_read(9, &[3, 3, 3]);
        assert_eq!(p.depth(9), 1);
    }

    #[test]
    fn calls_homozygous_snp() {
        let r = reference(50);
        let mut p = Pileup::new(50);
        let snp = 20usize;
        let alt = (r.codes()[snp] + 1) % 4;
        for _ in 0..10 {
            let mut read = r.slice(15, 10).codes().to_vec();
            read[snp - 15] = alt;
            p.add_read(15, &read);
        }
        let vars = call_variants(&r, &p, CallerParams::default());
        assert_eq!(vars.len(), 1, "exactly the planted SNP: {vars:?}");
        let v = vars[0];
        assert_eq!(v.pos, snp);
        assert_eq!(v.alt_base, alt);
        assert_eq!(v.genotype, Genotype::HomAlt);
        assert_eq!(v.depth, 10);
        assert_eq!(v.alt_count, 10);
    }

    #[test]
    fn calls_heterozygous_snp() {
        let r = reference(50);
        let mut p = Pileup::new(50);
        let snp = 20usize;
        let alt = (r.codes()[snp] + 2) % 4;
        for i in 0..10 {
            let mut read = r.slice(15, 10).codes().to_vec();
            if i % 2 == 0 {
                read[snp - 15] = alt;
            }
            p.add_read(15, &read);
        }
        let vars = call_variants(&r, &p, CallerParams::default());
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].genotype, Genotype::Het);
        assert_eq!(vars[0].alt_count, 5);
    }

    #[test]
    fn low_depth_and_noise_are_filtered() {
        let r = reference(50);
        let mut p = Pileup::new(50);
        // Depth 2 < min_depth 4.
        p.add_read(10, &[(r.codes()[10] + 1) % 4]);
        p.add_read(10, &[(r.codes()[10] + 1) % 4]);
        // Depth 10 but only 1 alt read (10% < 20%).
        for i in 0..10 {
            let base = if i == 0 {
                (r.codes()[30] + 1) % 4
            } else {
                r.codes()[30]
            };
            p.add_read(30, &[base]);
        }
        assert!(call_variants(&r, &p, CallerParams::default()).is_empty());
    }

    #[test]
    fn genotype_likelihoods_prefer_truth() {
        let r = reference(200);
        let pos = 100usize;
        let alt = (r.codes()[pos] + 1) % 4;
        let hmm = PairHmm::default();
        // Reads carrying the alt allele.
        let mut reads = Vec::new();
        for start in [90usize, 95] {
            let mut seq = r.slice(start, 20).codes().to_vec();
            seq[pos - start] = alt;
            reads.push((seq, vec![35u8; 20], start));
        }
        let (lk_ref, lk_alt, used) = genotype_likelihoods(&r, &reads, pos, alt, 15, &hmm);
        assert_eq!(used, 2);
        assert!(lk_alt > lk_ref, "alt reads favour the alt haplotype");
        // Reads carrying the reference allele.
        let ref_reads: Vec<_> = [90usize, 95]
            .iter()
            .map(|&s| (r.slice(s, 20).codes().to_vec(), vec![35u8; 20], s))
            .collect();
        let (lk_ref2, lk_alt2, _) = genotype_likelihoods(&r, &ref_reads, pos, alt, 15, &hmm);
        assert!(lk_ref2 > lk_alt2);
    }

    #[test]
    fn genotype_display() {
        assert_eq!(Genotype::Het.to_string(), "0/1");
        assert_eq!(Genotype::HomAlt.to_string(), "1/1");
        assert_eq!(Genotype::HomRef.to_string(), "0/0");
    }
}
