//! # ggpu-icnt — on-chip interconnect models
//!
//! Flit-level network models connecting SMs to memory partitions, covering
//! the paper's Table II configuration space and Figures 20-22:
//!
//! * [`Topology::LocalXbar`] — the RTX 3070 baseline: a single-stage
//!   crossbar with dedicated input/output ports.
//! * [`Topology::Mesh`] — 2-D mesh with dimension-order (XY) routing.
//! * [`Topology::FatTree`] — binary fat tree with nearest-common-ancestor
//!   routing; link capacity doubles toward the root.
//! * [`Topology::Butterfly`] — log₂N-stage butterfly with destination-tag
//!   routing.
//!
//! The model is a *flow* model rather than a per-cycle router simulation:
//! a packet's route is resolved to a sequence of links at send time, each
//! link transmits one flit per cycle (scaled by fat-tree capacity), and
//! contention appears as queueing on each link's `free_at` horizon. This
//! captures the three first-order effects the paper sweeps — hop count ×
//! router delay (Fig 21), serialization ∝ packet bytes / flit size
//! (Fig 22), and topology distance (Fig 20) — while staying fast enough to
//! run inside a cycle-level GPU simulation.
//!
//! ## Example
//!
//! ```
//! use ggpu_icnt::{Icnt, IcntConfig, Topology};
//!
//! let cfg = IcntConfig { topology: Topology::Mesh, ..IcntConfig::default() };
//! let mut net = Icnt::new(cfg, 4, 2); // 4 SMs, 2 memory partitions
//! let t = net.send(net.src_node(0), net.dst_node(1), 128, 100);
//! assert!(t > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Deterministic timestamped in-flight packet store.
///
/// The simulator models the network as a flow: [`Icnt::send`] resolves a
/// packet to a delivery time, and the packet then sits in a
/// `DeliveryQueue` until that cycle arrives. Items delivered at the same
/// cycle pop in insertion order (a monotone sequence number breaks ties),
/// which is what makes event delivery — and therefore the whole engine —
/// deterministic regardless of how the producing SMs were scheduled.
#[derive(Debug, Clone)]
pub struct DeliveryQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, T)>>,
    seq: u64,
}

impl<T: Ord> DeliveryQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DeliveryQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `item` for delivery at `time`.
    pub fn push(&mut self, time: u64, item: T) {
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, item)));
    }

    /// Delivery time of the earliest in-flight item, if any — a
    /// non-destructive peek used by the engine's idle-cycle fast-forward to
    /// bound how far it may jump without missing a delivery.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pop the next item due at or before `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse((t, _, _))) if *t <= now => {
                self.heap.pop().map(|Reverse((_, _, item))| item)
            }
            _ => None,
        }
    }

    /// Number of items in flight.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every in-flight item (device halt).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T: Ord> Default for DeliveryQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Network topologies from Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Single-stage local crossbar (baseline).
    LocalXbar,
    /// 2-D mesh, dimension-order routing.
    Mesh,
    /// Binary fat tree, nearest-common-ancestor routing.
    FatTree,
    /// Butterfly, destination-tag routing.
    Butterfly,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Topology::LocalXbar => "local-xbar",
            Topology::Mesh => "mesh",
            Topology::FatTree => "fat-tree",
            Topology::Butterfly => "butterfly",
        };
        f.write_str(s)
    }
}

/// Interconnect configuration (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcntConfig {
    /// Network topology.
    pub topology: Topology,
    /// Flit (channel) width in bytes; Table II sweeps 8/16/32/40.
    pub flit_bytes: u32,
    /// Extra per-hop router pipeline delay in cycles (Figure 21 sweeps
    /// 0/4/8/16 on top of the 1-cycle base hop).
    pub router_delay: u64,
    /// Virtual channels per link.
    pub virtual_channels: u32,
    /// Buffer depth per virtual channel, in flits.
    pub vc_buffers: u32,
    /// Bytes of header added to every packet.
    pub header_bytes: u32,
}

impl Default for IcntConfig {
    /// Table II defaults: 40-byte flits, 2 VCs × 4 buffers, zero extra
    /// routing delay, local crossbar.
    fn default() -> Self {
        IcntConfig {
            topology: Topology::LocalXbar,
            flit_bytes: 40,
            router_delay: 0,
            virtual_channels: 2,
            vc_buffers: 4,
            header_bytes: 8,
        }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcntStats {
    /// Packets delivered.
    pub packets: u64,
    /// Flits transmitted (summed over links).
    pub flits: u64,
    /// Sum of end-to-end packet latencies in cycles.
    pub total_latency: u64,
    /// Sum of queueing delay (time waiting for busy links).
    pub queueing: u64,
}

impl IcntStats {
    /// Mean end-to-end packet latency; zero when no traffic.
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets as f64
        }
    }
}

/// A node endpoint handle. Obtain via [`Icnt::src_node`] / [`Icnt::dst_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// The interconnection network. One instance models one direction
/// (requests or replies); the simulator owns one of each, as GPGPU-Sim
/// does.
#[derive(Debug, Clone)]
pub struct Icnt {
    config: IcntConfig,
    n_src: usize,
    n_total: usize,
    /// `free_at` horizon per link.
    links: Vec<u64>,
    /// Capacity multiplier per link (fat tree's fatter upper levels).
    link_capacity: Vec<u32>,
    stats: IcntStats,
    /// Packets injected per endpoint node (spatial attribution axis).
    injected: Vec<u64>,
    /// Packets delivered per endpoint node (spatial attribution axis).
    delivered: Vec<u64>,
    /// Mesh side length (router grid is side × side).
    side: usize,
    /// Butterfly: number of stages over `fly_n = 2^stages` endpoints.
    stages: u32,
    fly_n: usize,
}

impl Icnt {
    /// Build a network with `n_src` source endpoints (SMs) and `n_dst`
    /// destination endpoints (memory partitions).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint count is zero.
    pub fn new(config: IcntConfig, n_src: usize, n_dst: usize) -> Self {
        assert!(n_src > 0 && n_dst > 0, "network needs endpoints");
        let n_total = n_src + n_dst;
        let side = (n_total as f64).sqrt().ceil() as usize;
        let stages = (n_total.next_power_of_two().trailing_zeros()).max(1);
        let fly_n = 1usize << stages;

        let (n_links, capacities) = match config.topology {
            // One input port per source, one output port per destination.
            Topology::LocalXbar => (n_total * 2, vec![1u32; n_total * 2]),
            // 4 outgoing directions per router plus inject/eject per node.
            Topology::Mesh => {
                let n = side * side * 4 + n_total * 2;
                (n, vec![1u32; n])
            }
            // Heap-shaped binary tree over fly_n leaves: up and down link
            // per tree edge (edge of heap node c connects c to c/2).
            Topology::FatTree => {
                let n_edges = 2 * fly_n;
                let mut caps = vec![1u32; n_edges * 2];
                let leaf_depth = stages;
                for c in 2..2 * fly_n {
                    let depth = usize::BITS - 1 - (c as u32).leading_zeros();
                    let level_above_leaf = leaf_depth.saturating_sub(depth);
                    let cap = 1u32 << level_above_leaf.min(3);
                    caps[c * 2] = cap; // up link
                    caps[c * 2 + 1] = cap; // down link
                }
                (n_edges * 2, caps)
            }
            // stages × fly_n inter-stage links plus inject/eject.
            Topology::Butterfly => {
                let n = stages as usize * fly_n + n_total * 2;
                (n, vec![1u32; n])
            }
        };

        Icnt {
            config,
            n_src,
            n_total,
            links: vec![0; n_links],
            link_capacity: capacities,
            stats: IcntStats::default(),
            injected: vec![0; n_total],
            delivered: vec![0; n_total],
            side,
            stages,
            fly_n,
        }
    }

    /// Handle for SM endpoint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn src_node(&self, i: usize) -> NodeId {
        assert!(i < self.n_src, "source endpoint {i} out of range");
        NodeId(i)
    }

    /// Handle for memory-partition endpoint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dst_node(&self, i: usize) -> NodeId {
        assert!(
            self.n_src + i < self.n_total,
            "dest endpoint {i} out of range"
        );
        NodeId(self.n_src + i)
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &IcntConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IcntStats {
        &self.stats
    }

    /// Reset statistics; link horizons are kept.
    pub fn reset_stats(&mut self) {
        self.stats = IcntStats::default();
        for c in &mut self.injected {
            *c = 0;
        }
        for c in &mut self.delivered {
            *c = 0;
        }
    }

    /// Packets injected per endpoint node. Endpoints `0..n_src` are the
    /// source side ([`Icnt::src_node`]), `n_src..` the destination side
    /// ([`Icnt::dst_node`]); each marginal (injected, delivered) sums to
    /// the aggregate packet count because every packet has exactly one
    /// source and one destination endpoint.
    pub fn injected_per_node(&self) -> &[u64] {
        &self.injected
    }

    /// Packets delivered per endpoint node (same indexing as
    /// [`Icnt::injected_per_node`]).
    pub fn delivered_per_node(&self) -> &[u64] {
        &self.delivered
    }

    /// Flits needed for a payload of `bytes`.
    pub fn flits_for(&self, bytes: u32) -> u64 {
        ((bytes + self.config.header_bytes).div_ceil(self.config.flit_bytes)) as u64
    }

    /// Send a packet of `bytes` from `from` to `to` at time `now`; returns
    /// the delivery (tail arrival) time.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u32, now: u64) -> u64 {
        let flits = self.flits_for(bytes);
        let path = self.route(from.0, to.0);
        let hop_latency = 1 + self.config.router_delay;
        let mut head = now;
        let mut queueing = 0;
        let mut last_serialize = 1;
        for &link in &path {
            let cap = self.link_capacity[link].max(1) as u64;
            let serialize = flits.div_ceil(cap);
            let start = head.max(self.links[link]);
            queueing += start - head;
            self.links[link] = start + serialize;
            head = start + hop_latency;
            last_serialize = serialize;
            self.stats.flits += flits;
        }
        let arrival = head + last_serialize.saturating_sub(1);
        self.stats.packets += 1;
        self.injected[from.0] += 1;
        self.delivered[to.0] += 1;
        self.stats.total_latency += arrival - now;
        self.stats.queueing += queueing;
        arrival
    }

    /// Hop count between two endpoints (path length in links).
    pub fn hops(&self, from: NodeId, to: NodeId) -> usize {
        self.route(from.0, to.0).len()
    }

    fn route(&self, from: usize, to: usize) -> Vec<usize> {
        match self.config.topology {
            Topology::LocalXbar => vec![from * 2, to * 2 + 1],
            Topology::Mesh => {
                let mut path = Vec::with_capacity(8);
                let inject_base = self.side * self.side * 4;
                path.push(inject_base + from * 2);
                let (mut x, mut y) = (from % self.side, from / self.side);
                let (tx, ty) = (to % self.side, to / self.side);
                // Dimension-order: x first, then y. Directions: 0=E,1=W,2=N,3=S.
                while x != tx {
                    let cell = y * self.side + x;
                    if x < tx {
                        path.push(cell * 4);
                        x += 1;
                    } else {
                        path.push(cell * 4 + 1);
                        x -= 1;
                    }
                }
                while y != ty {
                    let cell = y * self.side + x;
                    if y < ty {
                        path.push(cell * 4 + 2);
                        y += 1;
                    } else {
                        path.push(cell * 4 + 3);
                        y -= 1;
                    }
                }
                path.push(inject_base + to * 2 + 1);
                path
            }
            Topology::FatTree => {
                // Heap leaves are fly_n + index.
                let mut a = self.fly_n + from;
                let mut b = self.fly_n + to;
                let mut up = Vec::new();
                let mut down = Vec::new();
                while a != b {
                    if a > b {
                        up.push(a * 2); // up link from a
                        a /= 2;
                    } else {
                        down.push(b * 2 + 1); // down link into b
                        b /= 2;
                    }
                }
                down.reverse();
                up.extend(down);
                up
            }
            Topology::Butterfly => {
                let inject_base = self.stages as usize * self.fly_n;
                let mut path = Vec::with_capacity(self.stages as usize + 2);
                path.push(inject_base + from * 2);
                // Destination-tag routing: at stage s the switch corrects
                // bit (stages-1-s) of the current position toward `to`.
                let mut pos = from;
                for s in 0..self.stages {
                    let bit = self.stages - 1 - s;
                    let want = (to >> bit) & 1;
                    pos = (pos & !(1 << bit)) | (want << bit);
                    path.push(s as usize * self.fly_n + pos);
                }
                path.push(inject_base + to * 2 + 1);
                path
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_queue_orders_by_time_then_insertion() {
        let mut q: DeliveryQueue<&str> = DeliveryQueue::new();
        q.push(5, "late");
        q.push(3, "early-a");
        q.push(3, "early-b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_due(2), None);
        assert_eq!(q.pop_due(3), Some("early-a"));
        assert_eq!(q.pop_due(3), Some("early-b"));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn delivery_queue_clear_drops_everything() {
        let mut q: DeliveryQueue<u32> = DeliveryQueue::default();
        q.push(1, 7);
        q.push(2, 8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_due(u64::MAX), None);
    }

    fn net(topology: Topology) -> Icnt {
        Icnt::new(
            IcntConfig {
                topology,
                ..IcntConfig::default()
            },
            8,
            4,
        )
    }

    #[test]
    fn all_topologies_deliver() {
        for t in [
            Topology::LocalXbar,
            Topology::Mesh,
            Topology::FatTree,
            Topology::Butterfly,
        ] {
            let mut n = net(t);
            let at = n.send(n.src_node(0), n.dst_node(3), 128, 10);
            assert!(at > 10, "{t}: delivery must take time");
            assert_eq!(n.stats().packets, 1);
        }
    }

    #[test]
    fn endpoint_packet_counts_telescope_to_totals() {
        let mut n = net(Topology::LocalXbar);
        n.send(n.src_node(0), n.dst_node(3), 128, 0);
        n.send(n.src_node(0), n.dst_node(1), 32, 0);
        n.send(n.src_node(5), n.dst_node(3), 32, 0);
        // Reply direction: destination-side node injecting toward a source.
        n.send(n.dst_node(3), n.src_node(5), 32, 0);
        assert_eq!(n.injected_per_node().iter().sum::<u64>(), n.stats().packets);
        assert_eq!(
            n.delivered_per_node().iter().sum::<u64>(),
            n.stats().packets
        );
        assert_eq!(n.injected_per_node()[0], 2);
        assert_eq!(n.delivered_per_node()[8 + 3], 2);
        assert_eq!(n.injected_per_node()[8 + 3], 1);
        assert_eq!(n.delivered_per_node()[5], 1);
        n.reset_stats();
        assert!(n.injected_per_node().iter().all(|&c| c == 0));
        assert!(n.delivered_per_node().iter().all(|&c| c == 0));
    }

    #[test]
    fn xbar_is_two_hops() {
        let n = net(Topology::LocalXbar);
        assert_eq!(n.hops(n.src_node(0), n.dst_node(0)), 2);
        assert_eq!(n.hops(n.src_node(7), n.dst_node(3)), 2);
    }

    #[test]
    fn mesh_distance_grows_with_manhattan_distance() {
        let n = net(Topology::Mesh);
        let near = n.hops(n.src_node(0), n.src_node(1));
        let far = n.hops(n.src_node(0), n.dst_node(3));
        assert!(far > near, "far {far} vs near {near}");
    }

    #[test]
    fn mesh_slower_than_xbar_on_average() {
        let mut xb = net(Topology::LocalXbar);
        let mut mesh = net(Topology::Mesh);
        for i in 0..8 {
            for j in 0..4 {
                xb.send(xb.src_node(i), xb.dst_node(j), 128, 0);
                mesh.send(mesh.src_node(i), mesh.dst_node(j), 128, 0);
            }
        }
        assert!(
            mesh.stats().avg_latency() > xb.stats().avg_latency(),
            "mesh {} should exceed xbar {}",
            mesh.stats().avg_latency(),
            xb.stats().avg_latency()
        );
    }

    #[test]
    fn router_delay_increases_latency() {
        let mk = |delay: u64| {
            Icnt::new(
                IcntConfig {
                    topology: Topology::Mesh,
                    router_delay: delay,
                    ..IcntConfig::default()
                },
                8,
                4,
            )
        };
        let mut base = mk(0);
        let mut slow = mk(16);
        let t0 = base.send(base.src_node(0), base.dst_node(3), 128, 0);
        let t1 = slow.send(slow.src_node(0), slow.dst_node(3), 128, 0);
        assert!(t1 > t0 + 16, "16-cycle router delay must compound per hop");
    }

    #[test]
    fn narrow_flits_serialize_more() {
        let mk = |flit: u32| {
            Icnt::new(
                IcntConfig {
                    topology: Topology::Mesh,
                    flit_bytes: flit,
                    ..IcntConfig::default()
                },
                8,
                4,
            )
        };
        let mut wide = mk(40);
        let mut narrow = mk(8);
        let mut t_wide = 0;
        let mut t_narrow = 0;
        for _ in 0..16 {
            t_wide = wide.send(wide.src_node(0), wide.dst_node(0), 128, 0);
            t_narrow = narrow.send(narrow.src_node(0), narrow.dst_node(0), 128, 0);
        }
        assert!(
            t_narrow > t_wide,
            "8B flits ({t_narrow}) must be slower than 40B ({t_wide})"
        );
    }

    #[test]
    fn contention_queues_on_shared_output() {
        let mut n = net(Topology::LocalXbar);
        let a = n.send(n.src_node(0), n.dst_node(0), 128, 0);
        let b = n.send(n.src_node(1), n.dst_node(0), 128, 0);
        assert!(b > a, "second packet to same output must queue");
        assert!(n.stats().queueing > 0);
    }

    #[test]
    fn fat_tree_sibling_vs_distant_leaves() {
        let n = net(Topology::FatTree);
        assert_eq!(n.hops(n.src_node(0), n.src_node(1)), 2);
        let far = n.hops(n.src_node(0), n.dst_node(3));
        assert!(far >= 4);
    }

    #[test]
    fn butterfly_hops_are_stages_plus_inject_eject() {
        let n = net(Topology::Butterfly);
        // 12 endpoints → 16-wide fly, 4 stages, +2 inject/eject.
        assert_eq!(n.hops(n.src_node(0), n.dst_node(3)), 6);
    }

    #[test]
    fn flits_for_includes_header() {
        let n = net(Topology::LocalXbar);
        // 128B payload + 8B header at 40B flits = ceil(136/40) = 4.
        assert_eq!(n.flits_for(128), 4);
        assert_eq!(n.flits_for(0), 1);
    }

    #[test]
    fn fat_tree_root_is_fatter() {
        // Saturating the root with capacity >1 must beat a capacity-1 root;
        // verified indirectly: fat-tree distant traffic is not catastrophically
        // slower than sibling traffic despite sharing the root.
        let mut n = net(Topology::FatTree);
        let mut last = 0;
        for i in 0..8 {
            last = n.send(n.src_node(i), n.dst_node(3), 128, 0);
        }
        // 8 × 4-flit packets through a capacity-8-root would take ~4 cycles
        // of serialization each at the top; allow generous slack but ensure
        // it's far below the 8×4×hops cost a thin root would give.
        assert!(last < 200, "fat tree root should absorb bursts, got {last}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_src_panics() {
        let n = net(Topology::LocalXbar);
        let _ = n.src_node(100);
    }

    #[test]
    fn stats_reset() {
        let mut n = net(Topology::LocalXbar);
        n.send(n.src_node(0), n.dst_node(0), 128, 0);
        assert_eq!(n.stats().packets, 1);
        n.reset_stats();
        assert_eq!(n.stats().packets, 0);
    }
}
