//! Structured assembler for [`Kernel`]s.
//!
//! The builder allocates virtual registers, resolves labels, and — most
//! importantly — emits *structured* control flow (`if_then`, `if_then_else`,
//! `while_loop`, `for_range`) whose divergent branches always carry correct
//! immediate-post-dominator reconvergence points for the SIMT stack.

use crate::instr::{Instr, Space, Width};
use crate::kernel::Kernel;
use crate::op::{AluOp, AtomOp, CmpOp, CvtKind, ScalarType};
use crate::reg::{Operand, Reg, SpecialReg};
use crate::MAX_REGS;

/// A forward-referenceable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum PatchSlot {
    Target,
    Reconv,
}

/// Builder/assembler for a [`Kernel`]. See the crate-level docs for an
/// end-to-end example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: u16,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, PatchSlot, Label)>,
    smem_cursor: u32,
    local_bytes: u32,
    cmem_bytes: u32,
    regs_override: Option<u32>,
}

impl KernelBuilder {
    /// Start building a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            labels: Vec::new(),
            patches: Vec::new(),
            smem_cursor: 0,
            local_bytes: 0,
            cmem_bytes: 0,
            regs_override: None,
        }
    }

    // ---- resources ----------------------------------------------------

    /// Allocate a fresh virtual register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_REGS`] registers are allocated.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < MAX_REGS, "kernel uses too many registers");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate `bytes` of static shared memory, returning the byte offset
    /// (8-byte aligned).
    pub fn alloc_smem(&mut self, bytes: u32) -> u32 {
        let off = self.smem_cursor;
        self.smem_cursor = off + bytes.div_ceil(8) * 8;
        off
    }

    /// Declare the per-thread local-memory footprint in bytes.
    pub fn set_local_bytes(&mut self, bytes: u32) -> &mut Self {
        self.local_bytes = bytes;
        self
    }

    /// Declare the constant-memory footprint in bytes (bound by the host at
    /// run time).
    pub fn set_cmem_bytes(&mut self, bytes: u32) -> &mut Self {
        self.cmem_bytes = bytes;
        self
    }

    /// Override the reported registers-per-thread (e.g. to model compiler
    /// register pressure beyond the virtual registers actually used).
    pub fn set_regs_per_thread(&mut self, regs: u32) -> &mut Self {
        self.regs_override = Some(regs);
        self
    }

    // ---- labels and raw emission ---------------------------------------

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Current PC (index of the next emitted instruction).
    pub fn pc(&self) -> usize {
        self.instrs.len()
    }

    /// Emit a raw instruction.
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    // ---- ALU convenience wrappers --------------------------------------

    /// Emit `dst = op(a, b)`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Instr::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Integer add.
    pub fn iadd(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IAdd, dst, a, b);
    }

    /// Integer subtract.
    pub fn isub(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::ISub, dst, a, b);
    }

    /// Integer multiply.
    pub fn imul(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IMul, dst, a, b);
    }

    /// Signed minimum.
    pub fn imin(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IMin, dst, a, b);
    }

    /// Signed maximum.
    pub fn imax(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IMax, dst, a, b);
    }

    /// Bitwise and.
    pub fn iand(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IAnd, dst, a, b);
    }

    /// Bitwise or.
    pub fn ior(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IOr, dst, a, b);
    }

    /// Bitwise xor.
    pub fn ixor(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IXor, dst, a, b);
    }

    /// Shift left.
    pub fn ishl(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IShl, dst, a, b);
    }

    /// Logical shift right.
    pub fn ishr(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.alu(AluOp::IShr, dst, a, b);
    }

    /// Move.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Select: `dst = cond != 0 ? t : f`.
    pub fn sel(&mut self, dst: Reg, cond: Reg, t: impl Into<Operand>, f: impl Into<Operand>) {
        self.push(Instr::Sel {
            dst,
            cond,
            if_true: t.into(),
            if_false: f.into(),
        });
    }

    /// Set predicate: `pred = a <cmp> b` under `ty`.
    pub fn setp(
        &mut self,
        pred: Reg,
        cmp: CmpOp,
        ty: ScalarType,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.push(Instr::SetP {
            pred,
            cmp,
            ty,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Signed-integer comparison into a fresh predicate register.
    pub fn cmp_s(&mut self, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let p = self.reg();
        self.setp(p, cmp, ScalarType::S64, a, b);
        p
    }

    /// Conversion.
    pub fn cvt(&mut self, kind: CvtKind, dst: Reg, src: impl Into<Operand>) {
        self.push(Instr::Cvt {
            kind,
            dst,
            src: src.into(),
        });
    }

    /// Fused multiply-add (f32 or f64).
    pub fn fma(
        &mut self,
        f64: bool,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.push(Instr::Fma {
            f64,
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
    }

    /// Read a special register.
    pub fn sreg(&mut self, dst: Reg, sreg: SpecialReg) {
        self.push(Instr::Sreg { dst, sreg });
    }

    /// Compute the global 1-D thread index `ctaid.x * ntid.x + tid.x` into a
    /// fresh register.
    pub fn global_tid(&mut self) -> Reg {
        let tid = self.reg();
        self.sreg(tid, SpecialReg::TidX);
        let ctaid = self.reg();
        self.sreg(ctaid, SpecialReg::CtaIdX);
        let ntid = self.reg();
        self.sreg(ntid, SpecialReg::NTidX);
        let g = self.reg();
        self.imul(g, ctaid, Operand::reg(ntid));
        self.iadd(g, g, Operand::reg(tid));
        g
    }

    // ---- memory ---------------------------------------------------------

    /// Load.
    pub fn ld(
        &mut self,
        space: Space,
        width: Width,
        dst: Reg,
        addr: impl Into<Operand>,
        offset: i64,
    ) {
        self.push(Instr::Ld {
            space,
            width,
            dst,
            addr: addr.into(),
            offset,
        });
    }

    /// Store.
    pub fn st(
        &mut self,
        space: Space,
        width: Width,
        src: impl Into<Operand>,
        addr: impl Into<Operand>,
        offset: i64,
    ) {
        self.push(Instr::St {
            space,
            width,
            src: src.into(),
            addr: addr.into(),
            offset,
        });
    }

    /// Load the `word`-th 64-bit kernel parameter.
    pub fn ld_param(&mut self, dst: Reg, word: u32) {
        self.ld(
            Space::Param,
            Width::B64,
            dst,
            Operand::imm(0),
            (word as i64) * 8,
        );
    }

    /// Atomic operation (old value into `dst`).
    #[allow(clippy::too_many_arguments)]
    pub fn atom(
        &mut self,
        op: AtomOp,
        space: Space,
        dst: Reg,
        addr: impl Into<Operand>,
        src: impl Into<Operand>,
        cas_cmp: impl Into<Operand>,
    ) {
        self.push(Instr::Atom {
            op,
            space,
            dst,
            addr: addr.into(),
            src: src.into(),
            cas_cmp: cas_cmp.into(),
        });
    }

    // ---- control flow ---------------------------------------------------

    /// CTA barrier.
    pub fn bar(&mut self) {
        self.push(Instr::Bar);
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.push(Instr::Exit);
    }

    /// `cudaDeviceSynchronize()` (wait for child kernels).
    pub fn dsync(&mut self) {
        self.push(Instr::Dsync);
    }

    /// Device-side child-kernel launch (CDP).
    pub fn launch(
        &mut self,
        kernel: u32,
        grid_x: impl Into<Operand>,
        block_x: impl Into<Operand>,
        params_ptr: impl Into<Operand>,
        param_words: u32,
    ) {
        self.push(Instr::Launch {
            kernel,
            grid_x: grid_x.into(),
            block_x: block_x.into(),
            params_ptr: params_ptr.into(),
            param_words,
        });
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) {
        let pc = self.pc();
        self.patches.push((pc, PatchSlot::Target, label));
        // Unconditional branches never diverge; reconv is set to the target
        // during patching purely so it is in range.
        self.patches.push((pc, PatchSlot::Reconv, label));
        self.push(Instr::Bra {
            pred: None,
            target: usize::MAX,
            reconv: usize::MAX,
        });
    }

    /// Conditional branch: lanes where `pred`'s truth equals `expect` jump
    /// to `label`; the rest fall through. `reconv` is the reconvergence
    /// label for the SIMT stack.
    pub fn bra_if(&mut self, pred: Reg, expect: bool, label: Label, reconv: Label) {
        let pc = self.pc();
        self.patches.push((pc, PatchSlot::Target, label));
        self.patches.push((pc, PatchSlot::Reconv, reconv));
        self.push(Instr::Bra {
            pred: Some((pred, expect)),
            target: usize::MAX,
            reconv: usize::MAX,
        });
    }

    /// Structured `if pred { then }`.
    pub fn if_then(&mut self, pred: Reg, then: impl FnOnce(&mut Self)) {
        let end = self.label();
        self.bra_if(pred, false, end, end);
        then(self);
        self.bind(end);
    }

    /// Structured `if pred { then } else { els }`.
    pub fn if_then_else(
        &mut self,
        pred: Reg,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let l_else = self.label();
        let l_end = self.label();
        self.bra_if(pred, false, l_else, l_end);
        then(self);
        self.bra(l_end);
        self.bind(l_else);
        els(self);
        self.bind(l_end);
    }

    /// Structured `while cond { body }`. `cond` computes and returns a
    /// predicate register each iteration.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Reg,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.label();
        let end = self.label();
        self.bind(head);
        let pred = cond(self);
        self.bra_if(pred, false, end, end);
        body(self);
        self.bra(head);
        self.bind(end);
    }

    /// Structured counted loop: `for i in (start..end).step_by(step)`.
    ///
    /// Allocates the induction register, passes it to `body`, and returns it
    /// (it holds `end` or the first value `>= end` afterwards).
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self, Reg),
    ) -> Reg {
        let i = self.reg();
        let start = start.into();
        let end = end.into();
        self.mov(i, start);
        self.while_loop(
            |b| b.cmp_s(CmpOp::Lt, Operand::reg(i), end),
            |b| {
                body(b, i);
                b.iadd(i, i, Operand::imm(step));
            },
        );
        i
    }

    // ---- finish -----------------------------------------------------------

    /// Resolve labels and produce the [`Kernel`].
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Kernel {
        for (pc, slot, label) in &self.patches {
            let target = self.labels[label.0].expect("label referenced but never bound");
            match (&mut self.instrs[*pc], slot) {
                (Instr::Bra { target: t, .. }, PatchSlot::Target) => *t = target,
                (Instr::Bra { reconv: r, .. }, PatchSlot::Reconv) => *r = target,
                _ => unreachable!("patch slot on non-branch instruction"),
            }
        }
        // A label bound at the very end of the instruction stream must still
        // be a valid PC; ensure the program ends with Exit so such branches
        // land on a real instruction.
        if !matches!(self.instrs.last(), Some(Instr::Exit)) {
            self.instrs.push(Instr::Exit);
        }
        Kernel {
            name: self.name,
            instrs: self.instrs,
            regs_per_thread: self
                .regs_override
                .map(|o| o.max(self.next_reg as u32))
                .unwrap_or(self.next_reg.max(1) as u32),
            smem_per_cta: self.smem_cursor,
            cmem_bytes: self.cmem_bytes,
            local_bytes_per_thread: self.local_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_appends_exit_and_counts_regs() {
        let mut b = KernelBuilder::new("k");
        let r = b.reg();
        b.mov(r, Operand::imm(1));
        let k = b.finish();
        assert!(matches!(k.instrs.last(), Some(Instr::Exit)));
        assert_eq!(k.regs_per_thread, 1);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn if_then_reconverges_at_end() {
        let mut b = KernelBuilder::new("k");
        let p = b.reg();
        b.mov(p, Operand::imm(1));
        let r = b.reg();
        b.if_then(p, |b| b.mov(r, Operand::imm(2)));
        b.exit();
        let k = b.finish();
        // instrs: mov p; bra !p -> 3 (reconv 3); mov r; exit
        match &k.instrs[1] {
            Instr::Bra {
                pred,
                target,
                reconv,
            } => {
                assert_eq!(*pred, Some((p, false)));
                assert_eq!(*target, 3);
                assert_eq!(*reconv, 3);
            }
            other => panic!("expected branch, got {other}"),
        }
        assert!(k.validate().is_ok());
    }

    #[test]
    fn if_then_else_layout() {
        let mut b = KernelBuilder::new("k");
        let p = b.reg();
        let r = b.reg();
        b.mov(p, Operand::imm(0));
        b.if_then_else(
            p,
            |b| b.mov(r, Operand::imm(1)),
            |b| b.mov(r, Operand::imm(2)),
        );
        b.exit();
        let k = b.finish();
        // 0: mov p
        // 1: bra !p -> 4 (reconv 5)
        // 2: mov r, 1
        // 3: bra 5
        // 4: mov r, 2
        // 5: exit
        match &k.instrs[1] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(*target, 4);
                assert_eq!(*reconv, 5);
            }
            other => panic!("expected branch, got {other}"),
        }
        match &k.instrs[3] {
            Instr::Bra { pred, target, .. } => {
                assert_eq!(*pred, None);
                assert_eq!(*target, 5);
            }
            other => panic!("expected branch, got {other}"),
        }
        assert!(k.validate().is_ok());
    }

    #[test]
    fn while_loop_branches_back() {
        let mut b = KernelBuilder::new("k");
        let i = b.reg();
        b.mov(i, Operand::imm(0));
        b.while_loop(
            |b| b.cmp_s(CmpOp::Lt, Operand::reg(i), Operand::imm(10)),
            |b| b.iadd(i, i, Operand::imm(1)),
        );
        b.exit();
        let k = b.finish();
        assert!(k.validate().is_ok());
        // Find the back-edge: an unconditional branch to the loop head (pc 1).
        let back = k
            .instrs
            .iter()
            .filter_map(|ins| match ins {
                Instr::Bra {
                    pred: None, target, ..
                } => Some(*target),
                _ => None,
            })
            .any(|t| t == 1);
        assert!(back, "missing loop back-edge:\n{}", k.disassemble());
    }

    #[test]
    fn for_range_structure_validates() {
        let mut b = KernelBuilder::new("k");
        let acc = b.reg();
        b.mov(acc, Operand::imm(0));
        b.for_range(Operand::imm(0), Operand::imm(8), 2, |b, i| {
            b.iadd(acc, acc, Operand::reg(i));
        });
        b.exit();
        let k = b.finish();
        assert!(k.validate().is_ok());
    }

    #[test]
    fn smem_allocation_is_aligned() {
        let mut b = KernelBuilder::new("k");
        assert_eq!(b.alloc_smem(3), 0);
        assert_eq!(b.alloc_smem(16), 8);
        assert_eq!(b.alloc_smem(1), 24);
        b.exit();
        assert_eq!(b.finish().smem_per_cta, 32);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = KernelBuilder::new("k");
        let l = b.label();
        b.bra(l);
        let _ = b.finish();
    }

    #[test]
    fn global_tid_emits_expected_sequence() {
        let mut b = KernelBuilder::new("k");
        let g = b.global_tid();
        b.exit();
        let k = b.finish();
        assert_eq!(g, Reg(3));
        assert_eq!(k.regs_per_thread, 4);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn resource_overrides() {
        let mut b = KernelBuilder::new("k");
        b.set_regs_per_thread(64);
        b.set_local_bytes(256);
        b.set_cmem_bytes(1024);
        b.exit();
        let k = b.finish();
        assert_eq!(k.regs_per_thread, 64);
        assert_eq!(k.local_bytes_per_thread, 256);
        assert_eq!(k.cmem_bytes, 1024);
    }
}
