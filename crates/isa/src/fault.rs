//! Guest-fault taxonomy.
//!
//! A [`FaultKind`] names the architectural reason a warp trapped. The ISA
//! crate owns the taxonomy so that both the SM model (which detects faults)
//! and the device model (which reports them to the host) agree on the
//! vocabulary without depending on each other.

use crate::instr::Instr;
use std::fmt;

/// The architectural class of a guest fault.
///
/// Mirrors the fault classes a real CUDA device reports through
/// `cudaErrorIllegalAddress` and friends, but split finer so diagnostics can
/// say *why* an access was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An off-chip access touched an address outside any live allocation.
    IllegalAddress,
    /// An off-chip access was not naturally aligned for its width.
    MisalignedAccess,
    /// The program counter left the kernel's instruction stream.
    InvalidPc,
    /// A shared-memory access fell outside the CTA's allocation.
    SharedMemOverflow,
    /// A barrier was reached by a divergent subset of a warp.
    BarrierDivergence,
    /// A device-side launch found the pending-launch queue full.
    CdpQueueOverflow,
    /// A device-side launch exceeded the maximum nesting depth.
    CdpNestingExceeded,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::IllegalAddress => "illegal address",
            FaultKind::MisalignedAccess => "misaligned access",
            FaultKind::InvalidPc => "invalid program counter",
            FaultKind::SharedMemOverflow => "shared memory access out of bounds",
            FaultKind::BarrierDivergence => "barrier reached by divergent warp",
            FaultKind::CdpQueueOverflow => "device-side launch queue overflow",
            FaultKind::CdpNestingExceeded => "device-side launch nesting depth exceeded",
        };
        f.write_str(s)
    }
}

impl Instr {
    /// The fault classes this instruction can architecturally raise.
    ///
    /// This is static metadata (it ignores operand values): a global load can
    /// raise [`FaultKind::IllegalAddress`] or [`FaultKind::MisalignedAccess`],
    /// a barrier can raise [`FaultKind::BarrierDivergence`], and so on. Used
    /// by diagnostics and by tests that want to enumerate trap sites.
    pub fn fault_kinds(&self) -> &'static [FaultKind] {
        use crate::instr::Space;
        match self {
            Instr::Ld { space, .. } | Instr::St { space, .. } => match space {
                Space::Global | Space::Local | Space::Tex => {
                    &[FaultKind::IllegalAddress, FaultKind::MisalignedAccess]
                }
                Space::Shared => &[FaultKind::SharedMemOverflow],
                _ => &[],
            },
            Instr::Atom { space, .. } => match space {
                Space::Global => &[FaultKind::IllegalAddress, FaultKind::MisalignedAccess],
                Space::Shared => &[FaultKind::SharedMemOverflow],
                _ => &[],
            },
            Instr::Bar => &[FaultKind::BarrierDivergence],
            Instr::Launch { .. } => &[
                FaultKind::CdpQueueOverflow,
                FaultKind::CdpNestingExceeded,
                FaultKind::IllegalAddress,
            ],
            Instr::Bra { .. } => &[FaultKind::InvalidPc],
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Space, Width};
    use crate::reg::{Operand, Reg};

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FaultKind::IllegalAddress.to_string(), "illegal address");
        assert_eq!(
            FaultKind::CdpNestingExceeded.to_string(),
            "device-side launch nesting depth exceeded"
        );
    }

    #[test]
    fn metadata_covers_memory_ops() {
        let ld = Instr::Ld {
            dst: Reg(0),
            space: Space::Global,
            width: Width::B32,
            addr: Operand::reg(Reg(1)),
            offset: 0,
        };
        assert!(ld.fault_kinds().contains(&FaultKind::IllegalAddress));
        assert!(ld.fault_kinds().contains(&FaultKind::MisalignedAccess));

        let sh = Instr::Ld {
            dst: Reg(0),
            space: Space::Shared,
            width: Width::B32,
            addr: Operand::reg(Reg(1)),
            offset: 0,
        };
        assert_eq!(sh.fault_kinds(), &[FaultKind::SharedMemOverflow]);

        assert_eq!(Instr::Bar.fault_kinds(), &[FaultKind::BarrierDivergence]);
        assert!(Instr::Exit.fault_kinds().is_empty());
    }
}
