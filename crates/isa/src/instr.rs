//! The instruction set proper: memory spaces, access widths, and [`Instr`].

use std::fmt;

use crate::op::{AluOp, AtomOp, CmpOp, CvtKind, InstrClass, ScalarType};
use crate::reg::{Operand, Reg, SpecialReg};

/// GPU memory spaces, matching the categories of Figure 9 in the paper
/// (shared / texture / constant / parameter / local / global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip global memory, cached in L1/L2.
    Global,
    /// Per-thread local memory (register spill space); physically resides in
    /// global memory and is cached, but addresses are thread-relative.
    Local,
    /// Per-CTA on-chip scratchpad with 32 banks.
    Shared,
    /// Read-only constant memory, served by the per-SM constant cache.
    Const,
    /// Kernel parameter buffer (written by the launch, read-only on device).
    Param,
    /// Read-only texture path; modelled as global data through the texture
    /// cache.
    Tex,
}

impl Space {
    /// All spaces, in Figure 9's display order.
    pub const ALL: [Space; 6] = [
        Space::Shared,
        Space::Tex,
        Space::Const,
        Space::Param,
        Space::Local,
        Space::Global,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Local => "local",
            Space::Shared => "shared",
            Space::Const => "const",
            Space::Param => "param",
            Space::Tex => "tex",
        }
    }

    /// Whether accesses to this space leave the SM (and therefore traverse
    /// the interconnect / cache hierarchy).
    pub fn is_offchip(self) -> bool {
        matches!(self, Space::Global | Space::Local | Space::Tex)
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte, zero-extended on load.
    B8,
    /// 2 bytes, zero-extended on load.
    B16,
    /// 4 bytes, zero-extended on load.
    B32,
    /// 8 bytes.
    B64,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B8 => 1,
            Width::B16 => 2,
            Width::B32 => 4,
            Width::B64 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.bytes() * 8)
    }
}

/// A single machine instruction.
///
/// Program counters are indices into [`crate::Kernel::instrs`]. Conditional
/// branches carry their immediate post-dominator (`reconv`) so the SIMT
/// stack can reconverge diverged warps; the [`crate::KernelBuilder`]
/// structured-control-flow helpers compute these automatically.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = op(a, b)` — integer, floating-point or SFU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source (ignored by unary SFU ops).
        b: Operand,
    },
    /// Fused multiply-add: `dst = a * b + c` (f32 when `f64` is false).
    Fma {
        /// Double precision if true.
        f64: bool,
        /// Destination register.
        dst: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = cond != 0 ? if_true : if_false`.
    Sel {
        /// Destination register.
        dst: Reg,
        /// Condition register (non-zero selects `if_true`).
        cond: Reg,
        /// Value when the condition holds.
        if_true: Operand,
        /// Value when it does not.
        if_false: Operand,
    },
    /// `pred = (a <cmp> b)` under interpretation `ty`; writes 1 or 0.
    SetP {
        /// Destination predicate register.
        pred: Reg,
        /// Comparison.
        cmp: CmpOp,
        /// How the operands are interpreted.
        ty: ScalarType,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Type conversion `dst = cvt(src)`.
    Cvt {
        /// Conversion kind.
        kind: CvtKind,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Read a special register.
    Sreg {
        /// Destination register.
        dst: Reg,
        /// Which special register to read.
        sreg: SpecialReg,
    },
    /// Load `width` bytes from `space` at `addr + offset` into `dst`.
    Ld {
        /// Memory space.
        space: Space,
        /// Access width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Base address operand.
        addr: Operand,
        /// Constant byte offset.
        offset: i64,
    },
    /// Store `width` bytes of `src` to `space` at `addr + offset`.
    St {
        /// Memory space.
        space: Space,
        /// Access width.
        width: Width,
        /// Value to store.
        src: Operand,
        /// Base address operand.
        addr: Operand,
        /// Constant byte offset.
        offset: i64,
    },
    /// Atomic read-modify-write on `space` (global or shared); `dst`
    /// receives the old value. 64-bit only.
    Atom {
        /// RMW operation.
        op: AtomOp,
        /// Memory space (global or shared).
        space: Space,
        /// Receives the previous value.
        dst: Reg,
        /// Address operand.
        addr: Operand,
        /// Operand value (the new value for CAS).
        src: Operand,
        /// Compare value for CAS; ignored otherwise.
        cas_cmp: Operand,
    },
    /// CTA-wide barrier (`__syncthreads`).
    Bar,
    /// Branch to `target`. If `pred` is set, only lanes whose predicate
    /// matches `expect` take the branch; `reconv` is the reconvergence PC
    /// pushed on divergence.
    Bra {
        /// Optional (register, expected-truth) predicate guard.
        pred: Option<(Reg, bool)>,
        /// Branch target PC.
        target: usize,
        /// Immediate post-dominator for divergence handling.
        reconv: usize,
    },
    /// Device-side kernel launch (CUDA Dynamic Parallelism).
    ///
    /// Enqueues `grid_x` CTAs of `block_x` threads of kernel `kernel` with a
    /// parameter block previously written to global memory at `params_ptr`
    /// (`param_words` consecutive u64 words). Each active lane issues one
    /// launch.
    Launch {
        /// Kernel id within the [`crate::Program`].
        kernel: u32,
        /// Grid size in CTAs (x dimension).
        grid_x: Operand,
        /// CTA size in threads (x dimension).
        block_x: Operand,
        /// Global-memory address of the parameter block.
        params_ptr: Operand,
        /// Number of u64 parameter words to copy.
        param_words: u32,
    },
    /// Wait for all child kernels launched by this thread's CTA to complete
    /// (`cudaDeviceSynchronize` on device).
    Dsync,
    /// Thread exit.
    Exit,
}

impl Instr {
    /// The accounting class of this instruction (Figure 8 categories).
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { op, .. } => op.class(),
            Instr::Fma { .. } => InstrClass::Fp,
            Instr::Mov { .. }
            | Instr::Sel { .. }
            | Instr::SetP { .. }
            | Instr::Cvt { .. }
            | Instr::Sreg { .. } => InstrClass::Int,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } => InstrClass::LdSt,
            Instr::Bar | Instr::Bra { .. } | Instr::Launch { .. } | Instr::Dsync | Instr::Exit => {
                InstrClass::Ctrl
            }
        }
    }

    /// Destination register written by the instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::Fma { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::Sreg { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::Atom { dst, .. } => Some(*dst),
            Instr::SetP { pred, .. } => Some(*pred),
            _ => None,
        }
    }

    /// Source registers read by the instruction.
    pub fn srcs(&self) -> Vec<Reg> {
        self.src_array().into_iter().flatten().collect()
    }

    /// Source registers as a fixed array (allocation-free variant of
    /// [`Instr::srcs`] for scheduler hot paths).
    pub fn src_array(&self) -> [Option<Reg>; 3] {
        match self {
            Instr::Alu { a, b, .. } | Instr::SetP { a, b, .. } => [a.as_reg(), b.as_reg(), None],
            Instr::Fma { a, b, c, .. } => [a.as_reg(), b.as_reg(), c.as_reg()],
            Instr::Mov { src, .. } | Instr::Cvt { src, .. } => [src.as_reg(), None, None],
            Instr::Sel {
                cond,
                if_true,
                if_false,
                ..
            } => [Some(*cond), if_true.as_reg(), if_false.as_reg()],
            Instr::Ld { addr, .. } => [addr.as_reg(), None, None],
            Instr::St { src, addr, .. } => [src.as_reg(), addr.as_reg(), None],
            Instr::Atom {
                addr, src, cas_cmp, ..
            } => [addr.as_reg(), src.as_reg(), cas_cmp.as_reg()],
            Instr::Bra { pred, .. } => [pred.map(|(r, _)| r), None, None],
            Instr::Launch {
                grid_x,
                block_x,
                params_ptr,
                ..
            } => [grid_x.as_reg(), block_x.as_reg(), params_ptr.as_reg()],
            Instr::Sreg { .. } | Instr::Bar | Instr::Dsync | Instr::Exit => [None, None, None],
        }
    }

    /// True for instructions that access memory (and therefore produce
    /// Figure 9 memory-space counts).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. }
        )
    }

    /// The memory space accessed, if this is a memory instruction.
    pub fn mem_space(&self) -> Option<Space> {
        match self {
            Instr::Ld { space, .. } | Instr::St { space, .. } | Instr::Atom { space, .. } => {
                Some(*space)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => write!(f, "{} {dst}, {a}, {b}", op.mnemonic()),
            Instr::Fma { f64, dst, a, b, c } => {
                write!(
                    f,
                    "fma.{} {dst}, {a}, {b}, {c}",
                    if *f64 { "f64" } else { "f32" }
                )
            }
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Sel {
                dst,
                cond,
                if_true,
                if_false,
            } => write!(f, "selp {dst}, {if_true}, {if_false}, {cond}"),
            Instr::SetP {
                pred,
                cmp,
                ty,
                a,
                b,
            } => {
                write!(f, "setp.{}.{ty:?} {pred}, {a}, {b}", cmp.mnemonic())
            }
            Instr::Cvt { kind, dst, src } => write!(f, "{} {dst}, {src}", kind.mnemonic()),
            Instr::Sreg { dst, sreg } => write!(f, "mov {dst}, {sreg}"),
            Instr::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => write!(f, "ld.{space}.{width} {dst}, [{addr}+{offset}]"),
            Instr::St {
                space,
                width,
                src,
                addr,
                offset,
            } => write!(f, "st.{space}.{width} [{addr}+{offset}], {src}"),
            Instr::Atom {
                op,
                space,
                dst,
                addr,
                src,
                ..
            } => write!(f, "{}.{space} {dst}, [{addr}], {src}", op.mnemonic()),
            Instr::Bar => write!(f, "bar.sync 0"),
            Instr::Bra {
                pred,
                target,
                reconv,
            } => match pred {
                Some((r, true)) => write!(f, "@{r} bra {target} (reconv {reconv})"),
                Some((r, false)) => write!(f, "@!{r} bra {target} (reconv {reconv})"),
                None => write!(f, "bra {target}"),
            },
            Instr::Launch {
                kernel,
                grid_x,
                block_x,
                params_ptr,
                param_words,
            } => write!(
                f,
                "launch k{kernel}<<<{grid_x},{block_x}>>>([{params_ptr}] x{param_words})"
            ),
            Instr::Dsync => write!(f, "cudaDeviceSynchronize"),
            Instr::Exit => write!(f, "exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_accessors() {
        let ld = Instr::Ld {
            space: Space::Global,
            width: Width::B32,
            dst: Reg(1),
            addr: Operand::reg(Reg(2)),
            offset: 4,
        };
        assert_eq!(ld.class(), InstrClass::LdSt);
        assert!(ld.is_mem());
        assert_eq!(ld.mem_space(), Some(Space::Global));
        assert_eq!(ld.dst(), Some(Reg(1)));
        assert_eq!(ld.srcs(), vec![Reg(2)]);

        let bar = Instr::Bar;
        assert_eq!(bar.class(), InstrClass::Ctrl);
        assert!(!bar.is_mem());
        assert_eq!(bar.dst(), None);
    }

    #[test]
    fn srcs_cover_all_operands() {
        let fma = Instr::Fma {
            f64: false,
            dst: Reg(0),
            a: Operand::reg(Reg(1)),
            b: Operand::reg(Reg(2)),
            c: Operand::imm(3),
        };
        assert_eq!(fma.srcs(), vec![Reg(1), Reg(2)]);

        let st = Instr::St {
            space: Space::Shared,
            width: Width::B64,
            src: Operand::reg(Reg(5)),
            addr: Operand::reg(Reg(6)),
            offset: 0,
        };
        assert_eq!(st.srcs(), vec![Reg(5), Reg(6)]);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B8.bytes(), 1);
        assert_eq!(Width::B64.bytes(), 8);
    }

    #[test]
    fn space_properties() {
        assert!(Space::Global.is_offchip());
        assert!(Space::Local.is_offchip());
        assert!(Space::Tex.is_offchip());
        assert!(!Space::Shared.is_offchip());
        assert!(!Space::Const.is_offchip());
        assert_eq!(Space::ALL.len(), 6);
    }

    #[test]
    fn display_is_nonempty() {
        let instrs = [
            Instr::Bar,
            Instr::Exit,
            Instr::Dsync,
            Instr::Mov {
                dst: Reg(0),
                src: Operand::imm(1),
            },
            Instr::Bra {
                pred: Some((Reg(1), false)),
                target: 7,
                reconv: 9,
            },
        ];
        for i in &instrs {
            assert!(!i.to_string().is_empty());
        }
    }
}
