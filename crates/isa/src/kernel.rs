//! Kernels, launch dimensions, and programs.

use std::fmt;

use crate::instr::{Instr, Space};
use crate::{MAX_REGS, WARP_SIZE};

/// Identifier of a kernel within a [`Program`]; this is what device-side
/// [`Instr::Launch`] instructions reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u32);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Grid and CTA dimensions of a launch, as in Table III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchDims {
    /// Grid size in CTAs (x, y, z).
    pub grid: (u32, u32, u32),
    /// CTA size in threads (x, y, z).
    pub cta: (u32, u32, u32),
}

impl LaunchDims {
    /// One-dimensional launch of `grid_x` CTAs with `cta_x` threads each.
    pub fn linear(grid_x: u32, cta_x: u32) -> Self {
        LaunchDims {
            grid: (grid_x, 1, 1),
            cta: (cta_x, 1, 1),
        }
    }

    /// Total number of CTAs in the grid.
    pub fn num_ctas(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.cta.0 * self.cta.1 * self.cta.2
    }

    /// Warps per CTA (rounded up).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta().div_ceil(WARP_SIZE as u32)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.num_ctas() * self.threads_per_cta() as u64
    }
}

impl fmt::Display for LaunchDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<<<({},{},{}),({},{},{})>>>",
            self.grid.0, self.grid.1, self.grid.2, self.cta.0, self.cta.1, self.cta.2
        )
    }
}

/// Errors produced by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch target or reconvergence PC is outside the program.
    BranchOutOfRange {
        /// Instruction index of the offending branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A register index is >= the declared register count.
    RegOutOfRange {
        /// Instruction index.
        pc: usize,
        /// The offending register index.
        reg: u16,
    },
    /// The kernel contains no `Exit` instruction.
    NoExit,
    /// The kernel declares more registers per thread than the ISA allows.
    TooManyRegs {
        /// Declared register count.
        declared: u32,
    },
    /// An atomic targets a space other than global or shared.
    BadAtomicSpace {
        /// Instruction index.
        pc: usize,
        /// The invalid space.
        space: Space,
    },
    /// A device-side launch names a kernel id absent from the program.
    ///
    /// Only [`Program::validate`] can detect this; a lone
    /// [`Kernel::validate`] has no kernel-id namespace to check against.
    LaunchTargetOutOfRange {
        /// Instruction index of the offending launch.
        pc: usize,
        /// The out-of-range kernel id.
        kernel: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range pc {target}")
            }
            ValidateError::RegOutOfRange { pc, reg } => {
                write!(f, "instruction at pc {pc} uses undeclared register r{reg}")
            }
            ValidateError::NoExit => write!(f, "kernel has no exit instruction"),
            ValidateError::TooManyRegs { declared } => {
                write!(
                    f,
                    "kernel declares {declared} registers per thread (max {MAX_REGS})"
                )
            }
            ValidateError::BadAtomicSpace { pc, space } => {
                write!(f, "atomic at pc {pc} targets non-atomic space {space}")
            }
            ValidateError::LaunchTargetOutOfRange { pc, kernel } => {
                write!(f, "launch at pc {pc} targets unknown kernel k{kernel}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// An assembled device function.
///
/// Static resource usage (`regs_per_thread`, `smem_per_cta`, `cmem_bytes`)
/// determines how many CTAs fit on an SM concurrently — the same quantities
/// the paper extracts with `-Xptxas -v` for its Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Human-readable kernel name.
    pub name: String,
    /// The instruction stream; PCs index into this.
    pub instrs: Vec<Instr>,
    /// Architectural registers used per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per CTA, in bytes.
    pub smem_per_cta: u32,
    /// Constant-memory footprint, in bytes.
    pub cmem_bytes: u32,
    /// Per-thread local-memory footprint, in bytes.
    pub local_bytes_per_thread: u32,
}

impl Kernel {
    /// Check structural invariants: branch targets in range, registers within
    /// the declared budget, at least one `Exit`, atomics only on global or
    /// shared memory.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ValidateError`].
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.regs_per_thread > MAX_REGS as u32 {
            return Err(ValidateError::TooManyRegs {
                declared: self.regs_per_thread,
            });
        }
        let n = self.instrs.len();
        let mut has_exit = false;
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Instr::Bra { target, reconv, .. } = instr {
                if *target >= n {
                    return Err(ValidateError::BranchOutOfRange {
                        pc,
                        target: *target,
                    });
                }
                if *reconv > n {
                    return Err(ValidateError::BranchOutOfRange {
                        pc,
                        target: *reconv,
                    });
                }
            }
            if let Instr::Atom { space, .. } = instr {
                if !matches!(space, Space::Global | Space::Shared) {
                    return Err(ValidateError::BadAtomicSpace { pc, space: *space });
                }
            }
            let check = |r: crate::Reg| -> Result<(), ValidateError> {
                if (r.0 as u32) >= self.regs_per_thread {
                    Err(ValidateError::RegOutOfRange { pc, reg: r.0 })
                } else {
                    Ok(())
                }
            };
            if let Some(d) = instr.dst() {
                check(d)?;
            }
            for s in instr.srcs() {
                check(s)?;
            }
            if matches!(instr, Instr::Exit) {
                has_exit = true;
            }
        }
        if !has_exit {
            return Err(ValidateError::NoExit);
        }
        Ok(())
    }

    /// Number of u64 parameter words this kernel statically reads.
    ///
    /// Derived by scanning the instruction stream for parameter loads at
    /// immediate addresses (the form [`crate::KernelBuilder::ld_param`]
    /// emits): the answer is one past the highest parameter word touched.
    /// Parameter loads through a register base cannot be bounded statically
    /// and are ignored. Used by the device model to reject launches that
    /// supply fewer parameters than the kernel will read.
    pub fn param_words_required(&self) -> usize {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Ld {
                    space: Space::Param,
                    addr: crate::Operand::Imm(base),
                    offset,
                    ..
                } => {
                    let byte = (*base as i64).saturating_add(*offset).max(0) as u64;
                    Some((byte / 8) as usize + 1)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Render the kernel as pseudo-assembly, one instruction per line with
    /// PC prefixes. Useful for debugging and documentation.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "// {} (regs={}, smem={}B, cmem={}B, local={}B/thread)",
            self.name,
            self.regs_per_thread,
            self.smem_per_cta,
            self.cmem_bytes,
            self.local_bytes_per_thread
        );
        for (pc, i) in self.instrs.iter().enumerate() {
            let _ = writeln!(s, "{pc:5}: {i}");
        }
        s
    }
}

/// A set of kernels sharing one id namespace.
///
/// Device-side launches ([`Instr::Launch`]) name their child kernel by
/// [`KernelId`], so any kernel that launches children must live in the same
/// program as those children.
#[derive(Debug, Clone, Default)]
pub struct Program {
    kernels: Vec<Kernel>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel, returning its id.
    pub fn add(&mut self, kernel: Kernel) -> KernelId {
        let id = KernelId(self.kernels.len() as u32);
        self.kernels.push(kernel);
        id
    }

    /// Look up a kernel by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`Program::add`] on this program.
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        &self.kernels[id.0 as usize]
    }

    /// Look up a kernel by id, returning `None` when absent.
    pub fn get(&self, id: KernelId) -> Option<&Kernel> {
        self.kernels.get(id.0 as usize)
    }

    /// Number of kernels in the program.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when the program holds no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Iterate over `(id, kernel)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (KernelId, &Kernel)> {
        self.kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (KernelId(i as u32), k))
    }

    /// Validate every kernel in the program, plus the cross-kernel invariant
    /// that every device-side launch targets a kernel present in the program.
    ///
    /// # Errors
    ///
    /// Returns the first kernel's name and error.
    pub fn validate(&self) -> Result<(), (String, ValidateError)> {
        let n = self.kernels.len() as u32;
        for k in &self.kernels {
            k.validate().map_err(|e| (k.name.clone(), e))?;
            for (pc, instr) in k.instrs.iter().enumerate() {
                if let Instr::Launch { kernel, .. } = instr {
                    if *kernel >= n {
                        return Err((
                            k.name.clone(),
                            ValidateError::LaunchTargetOutOfRange {
                                pc,
                                kernel: *kernel,
                            },
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Operand, Reg};
    use crate::Width;

    fn trivial_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            instrs: vec![Instr::Exit],
            regs_per_thread: 1,
            smem_per_cta: 0,
            cmem_bytes: 0,
            local_bytes_per_thread: 0,
        }
    }

    #[test]
    fn launch_dims_math() {
        let d = LaunchDims::linear(40, 128);
        assert_eq!(d.num_ctas(), 40);
        assert_eq!(d.threads_per_cta(), 128);
        assert_eq!(d.warps_per_cta(), 4);
        assert_eq!(d.total_threads(), 5120);
        // Non-multiple-of-32 CTA rounds warps up.
        assert_eq!(LaunchDims::linear(1, 33).warps_per_cta(), 2);
    }

    #[test]
    fn validate_accepts_trivial() {
        assert!(trivial_kernel().validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_exit() {
        let mut k = trivial_kernel();
        k.instrs = vec![Instr::Bar];
        assert_eq!(k.validate(), Err(ValidateError::NoExit));
    }

    #[test]
    fn validate_rejects_bad_branch() {
        let mut k = trivial_kernel();
        k.instrs = vec![
            Instr::Bra {
                pred: None,
                target: 99,
                reconv: 0,
            },
            Instr::Exit,
        ];
        assert!(matches!(
            k.validate(),
            Err(ValidateError::BranchOutOfRange { pc: 0, target: 99 })
        ));
    }

    #[test]
    fn validate_rejects_undeclared_reg() {
        let mut k = trivial_kernel();
        k.instrs = vec![
            Instr::Mov {
                dst: Reg(5),
                src: Operand::imm(0),
            },
            Instr::Exit,
        ];
        assert!(matches!(
            k.validate(),
            Err(ValidateError::RegOutOfRange { pc: 0, reg: 5 })
        ));
    }

    #[test]
    fn validate_rejects_const_atomic() {
        let mut k = trivial_kernel();
        k.regs_per_thread = 3;
        k.instrs = vec![
            Instr::Atom {
                op: crate::AtomOp::Add,
                space: Space::Const,
                dst: Reg(0),
                addr: Operand::reg(Reg(1)),
                src: Operand::imm(1),
                cas_cmp: Operand::imm(0),
            },
            Instr::Exit,
        ];
        assert!(matches!(
            k.validate(),
            Err(ValidateError::BadAtomicSpace { .. })
        ));
    }

    #[test]
    fn program_roundtrip() {
        let mut p = Program::new();
        assert!(p.is_empty());
        let id = p.add(trivial_kernel());
        assert_eq!(p.len(), 1);
        assert_eq!(p.kernel(id).name, "t");
        assert!(p.get(KernelId(7)).is_none());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn program_validate_rejects_unknown_launch_target() {
        let mut p = Program::new();
        let mut k = trivial_kernel();
        k.instrs = vec![
            Instr::Launch {
                kernel: 5,
                grid_x: Operand::imm(1),
                block_x: Operand::imm(32),
                params_ptr: Operand::imm(0),
                param_words: 0,
            },
            Instr::Exit,
        ];
        p.add(k);
        assert!(matches!(
            p.validate(),
            Err((
                _,
                ValidateError::LaunchTargetOutOfRange { pc: 0, kernel: 5 }
            ))
        ));
    }

    #[test]
    fn param_words_required_scans_param_loads() {
        let mut k = trivial_kernel();
        k.regs_per_thread = 2;
        assert_eq!(k.param_words_required(), 0);
        k.instrs = vec![
            Instr::Ld {
                space: Space::Param,
                width: Width::B64,
                dst: Reg(0),
                addr: Operand::imm(0),
                offset: 16,
            },
            Instr::Ld {
                space: Space::Param,
                width: Width::B64,
                dst: Reg(1),
                addr: Operand::imm(0),
                offset: 0,
            },
            Instr::Exit,
        ];
        assert_eq!(k.param_words_required(), 3);
    }

    #[test]
    fn disassembly_mentions_every_pc() {
        let mut k = trivial_kernel();
        k.regs_per_thread = 2;
        k.instrs = vec![
            Instr::Ld {
                space: Space::Global,
                width: Width::B32,
                dst: Reg(0),
                addr: Operand::reg(Reg(1)),
                offset: 0,
            },
            Instr::Exit,
        ];
        let d = k.disassemble();
        assert!(d.contains("0:"));
        assert!(d.contains("1:"));
        assert!(d.contains("ld.global"));
    }
}
