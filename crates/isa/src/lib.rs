//! # ggpu-isa — the Genomics-GPU simulator instruction set
//!
//! This crate defines the PTX-like register ISA that every benchmark kernel
//! in the Genomics-GPU suite is written in, together with the data structures
//! that describe kernels and their launches:
//!
//! * [`Instr`] — the instruction set: integer/floating-point/SFU ALU ops,
//!   loads and stores over six memory spaces ([`Space`]), predicated
//!   branches carrying SIMT reconvergence points, CTA barriers, atomics,
//!   and the CUDA-Dynamic-Parallelism pair [`Instr::Launch`] /
//!   [`Instr::Dsync`].
//! * [`Kernel`] — an assembled device function plus its static resource
//!   declaration (registers/thread, shared memory/CTA, constant memory),
//!   which drives occupancy and the paper's Figure 6 (SRAM utilization).
//! * [`KernelBuilder`] — a structured assembler. Control flow is emitted
//!   through `if_then` / `if_then_else` / `while_loop` so that divergence is
//!   always well-nested and the SIMT reconvergence stack in `ggpu-sm` can
//!   reconverge at immediate post-dominators.
//! * [`Program`] — a set of kernels sharing a kernel-id namespace, which is
//!   what device-side launches index into.
//!
//! The crate is purely descriptive: evaluation helpers live here
//! ([`AluOp::eval`], [`CmpOp::eval`]) so they can be unit-tested in
//! isolation, but all timing lives in `ggpu-sm`/`ggpu-sim`.
//!
//! ## Example
//!
//! ```
//! use ggpu_isa::{KernelBuilder, Operand, Space, Width, SpecialReg};
//!
//! // out[tid] = tid * 2
//! let mut b = KernelBuilder::new("double");
//! let tid = b.reg();
//! b.sreg(tid, SpecialReg::TidX);
//! let v = b.reg();
//! b.imul(v, tid, Operand::imm(2));
//! let addr = b.reg();
//! b.imul(addr, tid, Operand::imm(8));
//! let base = b.reg();
//! b.ld_param(base, 0);
//! b.iadd(addr, addr, Operand::reg(base));
//! b.st(Space::Global, Width::B64, Operand::reg(v), addr, 0);
//! let kernel = b.finish();
//! assert!(kernel.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod fault;
mod instr;
mod kernel;
mod op;
mod reg;

pub use builder::KernelBuilder;
pub use fault::FaultKind;
pub use instr::{Instr, Space, Width};
pub use kernel::{Kernel, KernelId, LaunchDims, Program, ValidateError};
pub use op::{AluOp, AtomOp, CmpOp, CvtKind, InstrClass, ScalarType};
pub use reg::{Operand, Reg, SpecialReg};

/// Number of threads in a warp. Fixed at 32, matching Table I of the paper.
pub const WARP_SIZE: usize = 32;

/// Hard cap on architectural registers per thread.
pub const MAX_REGS: u16 = 255;
