//! ALU/SFU operations, comparisons, conversions, atomics, and the
//! instruction classes used by the paper's Figure 8 instruction-mix
//! breakdown.

use std::fmt;

/// Coarse instruction classes, matching the categories of Figure 8 in the
/// paper (integer, floating point, load/store, special function, control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer ALU (also covers moves, selects, predicates and conversions).
    Int,
    /// Single- or double-precision floating point.
    Fp,
    /// Memory loads/stores/atomics.
    LdSt,
    /// Special function unit (exp, log, sqrt, rcp).
    Sfu,
    /// Branches, barriers, exits and device-side launches.
    Ctrl,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Int => "int",
            InstrClass::Fp => "fp",
            InstrClass::LdSt => "ldst",
            InstrClass::Sfu => "sfu",
            InstrClass::Ctrl => "ctrl",
        };
        f.write_str(s)
    }
}

/// Scalar interpretation of a 64-bit register value, used by comparisons and
/// conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// Signed 64-bit integer.
    S64,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 binary32 in the low 32 bits.
    F32,
    /// IEEE-754 binary64.
    F64,
}

/// Two-operand ALU and SFU operations.
///
/// Integer operations act on the full 64-bit value with wrapping semantics
/// (signed where noted); `F*` act on `f32` bit patterns in the low 32 bits
/// and `D*` on `f64` bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant meanings are given in the enum docs
pub enum AluOp {
    // -- integer --
    IAdd,
    ISub,
    IMul,
    /// Signed division; division by zero yields 0 (GPU-style, no trap).
    IDiv,
    /// Signed remainder; remainder by zero yields 0.
    IRem,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    IAnd,
    IOr,
    IXor,
    /// Logical shift left (count masked to 63).
    IShl,
    /// Logical shift right (count masked to 63).
    IShr,
    /// Arithmetic shift right (count masked to 63).
    ISar,
    // -- f32 --
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
    // -- f64 --
    DAdd,
    DSub,
    DMul,
    DDiv,
    DMin,
    DMax,
    // -- SFU (unary; second operand ignored) --
    /// `exp(a)` on f32.
    FExp,
    /// `ln(a)` on f32; `ln(x<=0)` yields negative infinity / NaN per IEEE.
    FLog,
    /// `sqrt(a)` on f32.
    FSqrt,
    /// `1/a` on f32.
    FRcp,
    /// `exp(a)` on f64.
    DExp,
    /// `ln(a)` on f64.
    DLog,
}

impl AluOp {
    /// The instruction class this operation is accounted under.
    pub fn class(self) -> InstrClass {
        use AluOp::*;
        match self {
            IAdd | ISub | IMul | IDiv | IRem | IMin | IMax | IAnd | IOr | IXor | IShl | IShr
            | ISar => InstrClass::Int,
            FAdd | FSub | FMul | FDiv | FMin | FMax | DAdd | DSub | DMul | DDiv | DMin | DMax => {
                InstrClass::Fp
            }
            FExp | FLog | FSqrt | FRcp | DExp | DLog => InstrClass::Sfu,
        }
    }

    /// True for double-precision operations (which issue at reduced
    /// throughput on consumer GPUs such as the RTX 3070).
    pub fn is_f64(self) -> bool {
        use AluOp::*;
        matches!(self, DAdd | DSub | DMul | DDiv | DMin | DMax | DExp | DLog)
    }

    /// Evaluate the operation on raw 64-bit register values.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        use AluOp::*;
        #[inline]
        fn f(a: u64) -> f32 {
            f32::from_bits(a as u32)
        }
        #[inline]
        fn fb(v: f32) -> u64 {
            v.to_bits() as u64
        }
        #[inline]
        fn d(a: u64) -> f64 {
            f64::from_bits(a)
        }
        #[inline]
        fn db(v: f64) -> u64 {
            v.to_bits()
        }
        match self {
            IAdd => a.wrapping_add(b),
            ISub => a.wrapping_sub(b),
            IMul => a.wrapping_mul(b),
            IDiv => {
                if b == 0 {
                    0
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            IRem => {
                if b == 0 {
                    0
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            IMin => (a as i64).min(b as i64) as u64,
            IMax => (a as i64).max(b as i64) as u64,
            IAnd => a & b,
            IOr => a | b,
            IXor => a ^ b,
            IShl => a.wrapping_shl((b & 63) as u32),
            IShr => a.wrapping_shr((b & 63) as u32),
            ISar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            FAdd => fb(f(a) + f(b)),
            FSub => fb(f(a) - f(b)),
            FMul => fb(f(a) * f(b)),
            FDiv => fb(f(a) / f(b)),
            FMin => fb(f(a).min(f(b))),
            FMax => fb(f(a).max(f(b))),
            DAdd => db(d(a) + d(b)),
            DSub => db(d(a) - d(b)),
            DMul => db(d(a) * d(b)),
            DDiv => db(d(a) / d(b)),
            DMin => db(d(a).min(d(b))),
            DMax => db(d(a).max(d(b))),
            FExp => fb(f(a).exp()),
            FLog => fb(f(a).ln()),
            FSqrt => fb(f(a).sqrt()),
            FRcp => fb(1.0 / f(a)),
            DExp => db(d(a).exp()),
            DLog => db(d(a).ln()),
        }
    }

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        use AluOp::*;
        match self {
            IAdd => "add.s64",
            ISub => "sub.s64",
            IMul => "mul.s64",
            IDiv => "div.s64",
            IRem => "rem.s64",
            IMin => "min.s64",
            IMax => "max.s64",
            IAnd => "and.b64",
            IOr => "or.b64",
            IXor => "xor.b64",
            IShl => "shl.b64",
            IShr => "shr.u64",
            ISar => "shr.s64",
            FAdd => "add.f32",
            FSub => "sub.f32",
            FMul => "mul.f32",
            FDiv => "div.f32",
            FMin => "min.f32",
            FMax => "max.f32",
            DAdd => "add.f64",
            DSub => "sub.f64",
            DMul => "mul.f64",
            DDiv => "div.f64",
            DMin => "min.f64",
            DMax => "max.f64",
            FExp => "ex2.f32",
            FLog => "lg2.f32",
            FSqrt => "sqrt.f32",
            FRcp => "rcp.f32",
            DExp => "ex2.f64",
            DLog => "lg2.f64",
        }
    }
}

/// Comparison predicates for [`crate::Instr::SetP`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on raw values interpreted as `ty`.
    pub fn eval(self, ty: ScalarType, a: u64, b: u64) -> bool {
        use std::cmp::Ordering;
        let ord = match ty {
            ScalarType::S64 => (a as i64).cmp(&(b as i64)),
            ScalarType::U64 => a.cmp(&b),
            ScalarType::F32 => {
                let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
                match x.partial_cmp(&y) {
                    Some(o) => o,
                    // NaN: only Ne is true, like IEEE unordered comparisons.
                    None => return self == CmpOp::Ne,
                }
            }
            ScalarType::F64 => {
                let (x, y) = (f64::from_bits(a), f64::from_bits(b));
                match x.partial_cmp(&y) {
                    Some(o) => o,
                    None => return self == CmpOp::Ne,
                }
            }
        };
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Mnemonic suffix used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// Conversions between register interpretations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CvtKind {
    /// Signed integer to `f32`.
    I2F,
    /// Signed integer to `f64`.
    I2D,
    /// `f32` to signed integer (round toward zero; saturates at i64 bounds).
    F2I,
    /// `f64` to signed integer (round toward zero; saturates at i64 bounds).
    D2I,
    /// `f32` to `f64`.
    F2D,
    /// `f64` to `f32`.
    D2F,
}

impl CvtKind {
    /// Evaluate the conversion on a raw 64-bit value.
    pub fn eval(self, a: u64) -> u64 {
        match self {
            CvtKind::I2F => ((a as i64) as f32).to_bits() as u64,
            CvtKind::I2D => ((a as i64) as f64).to_bits(),
            CvtKind::F2I => (f32::from_bits(a as u32) as i64) as u64,
            CvtKind::D2I => (f64::from_bits(a) as i64) as u64,
            CvtKind::F2D => ((f32::from_bits(a as u32)) as f64).to_bits(),
            CvtKind::D2F => ((f64::from_bits(a)) as f32).to_bits() as u64,
        }
    }

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CvtKind::I2F => "cvt.f32.s64",
            CvtKind::I2D => "cvt.f64.s64",
            CvtKind::F2I => "cvt.s64.f32",
            CvtKind::D2I => "cvt.s64.f64",
            CvtKind::F2D => "cvt.f64.f32",
            CvtKind::D2F => "cvt.f32.f64",
        }
    }
}

/// Atomic read-modify-write operations on global or shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Atomic add; returns the old value.
    Add,
    /// Atomic signed minimum; returns the old value.
    Min,
    /// Atomic signed maximum; returns the old value.
    Max,
    /// Atomic exchange; returns the old value.
    Exch,
    /// Compare-and-swap: the instruction's `src` is the new value, the
    /// `compare` operand is held in the extra field of [`crate::Instr::Atom`].
    Cas,
}

impl AtomOp {
    /// Apply the RMW operation, returning `(new_value, old_value)`.
    ///
    /// For [`AtomOp::Cas`], `extra` is the compare value; for all other
    /// operations it is ignored.
    pub fn apply(self, old: u64, src: u64, extra: u64) -> (u64, u64) {
        let new = match self {
            AtomOp::Add => old.wrapping_add(src),
            AtomOp::Min => (old as i64).min(src as i64) as u64,
            AtomOp::Max => (old as i64).max(src as i64) as u64,
            AtomOp::Exch => src,
            AtomOp::Cas => {
                if old == extra {
                    src
                } else {
                    old
                }
            }
        };
        (new, old)
    }

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomOp::Add => "atom.add",
            AtomOp::Min => "atom.min",
            AtomOp::Max => "atom.max",
            AtomOp::Exch => "atom.exch",
            AtomOp::Cas => "atom.cas",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_wraps_and_signs() {
        assert_eq!(AluOp::IAdd.eval(u64::MAX, 1), 0);
        assert_eq!(AluOp::ISub.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::IMul.eval(3, (-4i64) as u64) as i64, -12);
        assert_eq!(AluOp::IDiv.eval((-9i64) as u64, 2) as i64, -4);
        assert_eq!(AluOp::IRem.eval((-9i64) as u64, 2) as i64, -1);
        assert_eq!(AluOp::IMin.eval((-3i64) as u64, 2) as i64, -3);
        assert_eq!(AluOp::IMax.eval((-3i64) as u64, 2) as i64, 2);
    }

    #[test]
    fn division_by_zero_is_zero_not_trap() {
        assert_eq!(AluOp::IDiv.eval(5, 0), 0);
        assert_eq!(AluOp::IRem.eval(5, 0), 0);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(AluOp::IShl.eval(1, 64), 1); // 64 & 63 == 0
        assert_eq!(AluOp::IShr.eval(0x8000_0000_0000_0000, 63), 1);
        assert_eq!(AluOp::ISar.eval((-8i64) as u64, 1) as i64, -4);
    }

    #[test]
    fn f32_ops_roundtrip_through_bits() {
        let a = 2.0f32.to_bits() as u64;
        let b = 0.5f32.to_bits() as u64;
        assert_eq!(f32::from_bits(AluOp::FAdd.eval(a, b) as u32), 2.5);
        assert_eq!(f32::from_bits(AluOp::FMul.eval(a, b) as u32), 1.0);
        assert_eq!(f32::from_bits(AluOp::FDiv.eval(a, b) as u32), 4.0);
        assert_eq!(f32::from_bits(AluOp::FMax.eval(a, b) as u32), 2.0);
    }

    #[test]
    fn f64_ops() {
        let a = 3.0f64.to_bits();
        let b = 1.5f64.to_bits();
        assert_eq!(f64::from_bits(AluOp::DAdd.eval(a, b)), 4.5);
        assert_eq!(f64::from_bits(AluOp::DMin.eval(a, b)), 1.5);
        assert!(AluOp::DAdd.is_f64());
        assert!(!AluOp::FAdd.is_f64());
    }

    #[test]
    fn sfu_ops() {
        let e = AluOp::FExp.eval(1.0f32.to_bits() as u64, 0);
        assert!((f32::from_bits(e as u32) - std::f32::consts::E).abs() < 1e-6);
        let s = AluOp::FSqrt.eval(9.0f32.to_bits() as u64, 0);
        assert_eq!(f32::from_bits(s as u32), 3.0);
        assert_eq!(AluOp::FExp.class(), InstrClass::Sfu);
    }

    #[test]
    fn classes() {
        assert_eq!(AluOp::IAdd.class(), InstrClass::Int);
        assert_eq!(AluOp::FAdd.class(), InstrClass::Fp);
        assert_eq!(AluOp::DMul.class(), InstrClass::Fp);
    }

    #[test]
    fn comparisons_signed_unsigned_float() {
        let neg1 = (-1i64) as u64;
        assert!(CmpOp::Lt.eval(ScalarType::S64, neg1, 0));
        assert!(!CmpOp::Lt.eval(ScalarType::U64, neg1, 0));
        assert!(CmpOp::Gt.eval(ScalarType::U64, neg1, 0));
        let a = 1.0f32.to_bits() as u64;
        let b = 2.0f32.to_bits() as u64;
        assert!(CmpOp::Le.eval(ScalarType::F32, a, b));
        assert!(CmpOp::Ge.eval(ScalarType::F64, 2.0f64.to_bits(), 2.0f64.to_bits()));
    }

    #[test]
    fn nan_comparisons_are_unordered() {
        let nan = f32::NAN.to_bits() as u64;
        let one = 1.0f32.to_bits() as u64;
        assert!(!CmpOp::Eq.eval(ScalarType::F32, nan, one));
        assert!(!CmpOp::Lt.eval(ScalarType::F32, nan, one));
        assert!(CmpOp::Ne.eval(ScalarType::F32, nan, one));
    }

    #[test]
    fn conversions() {
        assert_eq!(
            f32::from_bits(CvtKind::I2F.eval((-3i64) as u64) as u32),
            -3.0
        );
        assert_eq!(CvtKind::F2I.eval(2.9f32.to_bits() as u64) as i64, 2);
        assert_eq!(CvtKind::D2I.eval((-2.9f64).to_bits()) as i64, -2);
        let d = CvtKind::F2D.eval(0.5f32.to_bits() as u64);
        assert_eq!(f64::from_bits(d), 0.5);
    }

    #[test]
    fn atomics() {
        assert_eq!(AtomOp::Add.apply(10, 5, 0), (15, 10));
        assert_eq!(AtomOp::Min.apply((-2i64) as u64, 3, 0).0 as i64, -2);
        assert_eq!(AtomOp::Exch.apply(1, 9, 0), (9, 1));
        assert_eq!(AtomOp::Cas.apply(7, 9, 7), (9, 7)); // matched: swapped
        assert_eq!(AtomOp::Cas.apply(7, 9, 8), (7, 7)); // unmatched: unchanged
    }
}
