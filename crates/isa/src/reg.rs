//! Registers, operands, and special (read-only) registers.

use std::fmt;

/// An architectural register index within a thread's register file.
///
/// Registers are untyped 64-bit containers; the operating instruction decides
/// how the bits are interpreted (see [`crate::ScalarType`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: either a register or a 64-bit immediate.
///
/// Immediates are stored as `i64` and sign-extended into the 64-bit value
/// domain; floating-point immediates are passed as raw bit patterns via
/// [`Operand::f32imm`] / [`Operand::f64imm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read the value of a register.
    Reg(Reg),
    /// A literal value (raw 64 bits, already encoded).
    Imm(u64),
}

impl Operand {
    /// Register operand.
    #[inline]
    pub fn reg(r: Reg) -> Self {
        Operand::Reg(r)
    }

    /// Signed integer immediate (sign-extended to 64 bits).
    #[inline]
    pub fn imm(v: i64) -> Self {
        Operand::Imm(v as u64)
    }

    /// `f32` immediate, stored as its bit pattern in the low 32 bits.
    #[inline]
    pub fn f32imm(v: f32) -> Self {
        Operand::Imm(v.to_bits() as u64)
    }

    /// `f64` immediate, stored as its bit pattern.
    #[inline]
    pub fn f64imm(v: f64) -> Self {
        Operand::Imm(v.to_bits())
    }

    /// The register read by this operand, if any.
    #[inline]
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{}", *v as i64),
        }
    }
}

/// Read-only per-thread special registers, mirroring PTX `%tid`, `%ctaid`,
/// `%ntid`, `%nctaid`, `%laneid` and `%warpid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// Thread index within the CTA, x dimension.
    TidX,
    /// Thread index within the CTA, y dimension.
    TidY,
    /// Thread index within the CTA, z dimension.
    TidZ,
    /// CTA index within the grid, x dimension.
    CtaIdX,
    /// CTA index within the grid, y dimension.
    CtaIdY,
    /// CTA index within the grid, z dimension.
    CtaIdZ,
    /// CTA size, x dimension.
    NTidX,
    /// CTA size, y dimension.
    NTidY,
    /// CTA size, z dimension.
    NTidZ,
    /// Grid size in CTAs, x dimension.
    NCtaIdX,
    /// Grid size in CTAs, y dimension.
    NCtaIdY,
    /// Grid size in CTAs, z dimension.
    NCtaIdZ,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the CTA.
    WarpId,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::CtaIdY => "%ctaid.y",
            SpecialReg::CtaIdZ => "%ctaid.z",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::NTidY => "%ntid.y",
            SpecialReg::NTidZ => "%ntid.z",
            SpecialReg::NCtaIdX => "%nctaid.x",
            SpecialReg::NCtaIdY => "%nctaid.y",
            SpecialReg::NCtaIdZ => "%nctaid.z",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_immediate_encodings() {
        assert_eq!(Operand::imm(-1), Operand::Imm(u64::MAX));
        assert_eq!(Operand::f32imm(1.5), Operand::Imm(1.5f32.to_bits() as u64));
        assert_eq!(Operand::f64imm(2.5), Operand::Imm(2.5f64.to_bits()));
    }

    #[test]
    fn operand_as_reg() {
        assert_eq!(Operand::reg(Reg(3)).as_reg(), Some(Reg(3)));
        assert_eq!(Operand::imm(7).as_reg(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(12).to_string(), "r12");
        assert_eq!(Operand::imm(-5).to_string(), "-5");
        assert_eq!(SpecialReg::TidX.to_string(), "%tid.x");
        assert_eq!(SpecialReg::NCtaIdZ.to_string(), "%nctaid.z");
    }

    #[test]
    fn reg_into_operand() {
        let op: Operand = Reg(9).into();
        assert_eq!(op, Operand::Reg(Reg(9)));
    }
}
