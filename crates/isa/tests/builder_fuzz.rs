//! Property tests: randomly nested structured control flow always produces
//! kernels that validate, with well-formed forward reconvergence points.

use ggpu_isa::{CmpOp, Instr, KernelBuilder, Operand, Reg};
use proptest::prelude::*;

/// A small recursive program shape.
#[derive(Debug, Clone)]
enum Shape {
    Straight(u8),
    If(Box<Shape>),
    IfElse(Box<Shape>, Box<Shape>),
    While(Box<Shape>),
}

fn shape() -> impl Strategy<Value = Shape> {
    let leaf = (1u8..5).prop_map(Shape::Straight);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| Shape::If(Box::new(s))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Shape::IfElse(Box::new(a), Box::new(b))),
            inner.prop_map(|s| Shape::While(Box::new(s))),
        ]
    })
}

#[allow(clippy::only_used_in_recursion)]
fn emit(b: &mut KernelBuilder, s: &Shape, acc: Reg, depth: u8) {
    match s {
        Shape::Straight(n) => {
            for _ in 0..*n {
                b.iadd(acc, acc, Operand::imm(1));
            }
        }
        Shape::If(inner) => {
            let p = b.cmp_s(CmpOp::Lt, Operand::reg(acc), Operand::imm(1000));
            let inner = inner.clone();
            b.if_then(p, move |b| emit(b, &inner, acc, depth + 1));
        }
        Shape::IfElse(a, bb) => {
            let p = b.cmp_s(CmpOp::Ge, Operand::reg(acc), Operand::imm(0));
            let (a, bb) = (a.clone(), bb.clone());
            b.if_then_else(
                p,
                move |bl| emit(bl, &a, acc, depth + 1),
                move |bl| emit(bl, &bb, acc, depth + 1),
            );
        }
        Shape::While(inner) => {
            let inner = inner.clone();
            b.for_range(Operand::imm(0), Operand::imm(3), 1, move |b, _i| {
                emit(b, &inner, acc, depth + 1)
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_structured_kernels_validate(s in shape()) {
        let mut b = KernelBuilder::new("fuzz");
        let acc = b.reg();
        b.mov(acc, Operand::imm(0));
        emit(&mut b, &s, acc, 0);
        b.exit();
        let k = b.finish();
        prop_assert!(k.validate().is_ok(), "{:?}:\n{}", s, k.disassemble());
        for (pc, instr) in k.instrs.iter().enumerate() {
            if let Instr::Bra { pred: Some(_), reconv, .. } = instr {
                prop_assert!(*reconv > pc, "reconv must be forward at pc {pc}");
                prop_assert!(*reconv <= k.instrs.len());
            }
        }
    }
}
