//! CLUSTER — greedy incremental alignment-based sequence clustering
//! (nGIA-style).
//!
//! The greedy loop walks sequences longest-first; each unassigned sequence
//! becomes a representative and a scoring kernel aligns every remaining
//! candidate against it (shared-target DP with shared-memory rows, as
//! Table III's CLUSTER row uses shared memory). Candidates whose score
//! clears a per-sequence threshold join the cluster.
//!
//! * **Non-CDP**: the host runs the loop — one kernel launch plus a score
//!   read-back per round, with the candidate list shrinking every round
//!   (the source of CLUSTER's W1-4-dominated warp occupancy in Figure 10).
//! * **CDP**: a single-thread driver kernel runs the whole loop on-device,
//!   launching one child grid per round.

use ggpu_isa::{CmpOp, Kernel, KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{Gpu, GpuConfig};
use rand::{Rng, SeedableRng};

use ggpu_genomics::{nw_score, sequence_family, GapModel, Simple};

use crate::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode, DP_PARAM_WORDS};
use crate::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use crate::{BenchResult, Benchmark, Scale, Table3Row};

/// Identity threshold of the benchmark.
pub const IDENTITY: f64 = 0.82;

/// The CLUSTER benchmark instance.
#[derive(Debug, Clone)]
pub struct ClusterBench {
    n_seqs: usize,
    max_len: u32,
    seqs: Vec<u8>,
    lens: Vec<u32>,
    /// Longest-first processing order.
    order: Vec<u32>,
    /// Per-sequence score thresholds (precomputed from `IDENTITY`).
    thresholds: Vec<i64>,
    /// Expected representative per sequence.
    expected_rep: Vec<u32>,
    dims: LaunchDims,
}

impl ClusterBench {
    /// Build a CLUSTER instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        let (n_families, family_size, max_len, dims) = match scale {
            Scale::Tiny => (3usize, 4usize, 20u32, LaunchDims::linear(1, 64)),
            Scale::Small => (6, 6, 28, LaunchDims::linear(2, 128)),
            Scale::Paper => (16, 8, 48, LaunchDims::linear(128, 128)),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let n_seqs = n_families * family_size;
        let mut seqs = vec![0u8; n_seqs * max_len as usize];
        let mut lens = Vec::with_capacity(n_seqs);
        let mut i = 0usize;
        for _ in 0..n_families {
            let len = rng.gen_range(max_len - 6..=max_len);
            let family = sequence_family(family_size, len as usize, 0.04, 0.0, &mut rng);
            for s in family {
                let l = s.len().min(max_len as usize);
                seqs[i * max_len as usize..i * max_len as usize + l]
                    .copy_from_slice(&s.codes()[..l]);
                lens.push(l as u32);
                i += 1;
            }
        }

        // Longest-first stable order and score thresholds.
        let mut order: Vec<u32> = (0..n_seqs as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(lens[i as usize]));
        let thresholds: Vec<i64> = lens
            .iter()
            .map(|&l| (IDENTITY * MATCH as f64 * l as f64) as i64)
            .collect();

        // CPU oracle: the same greedy loop with the same scoring kernel
        // semantics (full NW score of candidate vs representative).
        let subst = Simple::new(MATCH, MISMATCH);
        let gaps = GapModel::Affine {
            open: GAP_OPEN,
            extend: GAP_EXTEND,
        };
        let seq_of =
            |i: usize| &seqs[i * max_len as usize..i * max_len as usize + lens[i] as usize];
        let mut expected_rep = vec![u32::MAX; n_seqs];
        for &oi in &order {
            let oi = oi as usize;
            if expected_rep[oi] != u32::MAX {
                continue;
            }
            expected_rep[oi] = oi as u32;
            for &cj in &order {
                let cj = cj as usize;
                if expected_rep[cj] != u32::MAX {
                    continue;
                }
                let s = nw_score(seq_of(cj), seq_of(oi), &subst, gaps) as i64;
                if s >= thresholds[cj] {
                    expected_rep[cj] = oi as u32;
                }
            }
        }

        ClusterBench {
            n_seqs,
            max_len,
            seqs,
            lens,
            order,
            thresholds,
            expected_rep,
            dims,
        }
    }

    fn kernel_cfg(&self) -> DpKernelCfg {
        DpKernelCfg {
            mode: DpMode::Global,
            max_len: self.max_len,
            rows_in_smem: true,
            threads_per_cta: self.dims.threads_per_cta(),
            matches: MATCH,
            mismatch: MISMATCH,
            open: GAP_OPEN,
            extend: GAP_EXTEND,
            shared_target: true,
            subst_matrix: None,
        }
    }

    /// On-device greedy driver (CDP variant).
    ///
    /// ABI: 0 `seqs`, 1 `lens` (u32), 2 `order` (u32), 3 `thresholds`
    /// (i64), 4 `rep_of` (u32, init 0xFFFFFFFF), 5 `scores` (i64 scratch),
    /// 6 `n_seqs`, 7 `max_len`, 8 `scratch` (child param block),
    /// 9 `child_cta`.
    fn build_driver(&self, child: u32) -> Kernel {
        let mut b = KernelBuilder::new("CLUSTER-driver");
        let tid = b.global_tid();
        let is0 = b.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
        b.if_then(is0, |b| {
            let seqs = b.reg();
            b.ld_param(seqs, 0);
            let lens = b.reg();
            b.ld_param(lens, 1);
            let order = b.reg();
            b.ld_param(order, 2);
            let thr = b.reg();
            b.ld_param(thr, 3);
            let rep_of = b.reg();
            b.ld_param(rep_of, 4);
            let scores = b.reg();
            b.ld_param(scores, 5);
            let n_seqs = b.reg();
            b.ld_param(n_seqs, 6);
            let max_len = b.reg();
            b.ld_param(max_len, 7);
            let scratch = b.reg();
            b.ld_param(scratch, 8);
            let child_cta = b.reg();
            b.ld_param(child_cta, 9);

            const UNASSIGNED: i64 = 0xFFFF_FFFF;
            b.for_range(Operand::imm(0), Operand::reg(n_seqs), 1, |b, oi| {
                // idx = order[oi]
                let oa = b.reg();
                b.imul(oa, oi, Operand::imm(4));
                b.iadd(oa, oa, Operand::reg(order));
                let idx = b.reg();
                b.ld(Space::Global, Width::B32, idx, oa, 0);
                // skip when already assigned
                let ra = b.reg();
                b.imul(ra, idx, Operand::imm(4));
                b.iadd(ra, ra, Operand::reg(rep_of));
                let cur = b.reg();
                b.ld(Space::Global, Width::B32, cur, ra, 0);
                let free = b.cmp_s(CmpOp::Eq, Operand::reg(cur), Operand::imm(UNASSIGNED));
                b.if_then(free, |b| {
                    // claim as representative
                    b.st(Space::Global, Width::B32, Operand::reg(idx), ra, 0);
                    // child params: score every sequence against seq[idx]
                    let tgt = b.reg();
                    b.imul(tgt, idx, Operand::reg(max_len));
                    b.iadd(tgt, tgt, Operand::reg(seqs));
                    let tl_addr = b.reg();
                    b.imul(tl_addr, idx, Operand::imm(4));
                    b.iadd(tl_addr, tl_addr, Operand::reg(lens));
                    let tlen = b.reg();
                    b.ld(Space::Global, Width::B32, tlen, tl_addr, 0);
                    b.st(Space::Global, Width::B64, Operand::reg(seqs), scratch, 0);
                    b.st(Space::Global, Width::B64, Operand::reg(tgt), scratch, 8);
                    b.st(Space::Global, Width::B64, Operand::reg(scores), scratch, 16);
                    b.st(Space::Global, Width::B64, Operand::reg(n_seqs), scratch, 24);
                    b.st(Space::Global, Width::B64, Operand::imm(0), scratch, 32);
                    b.st(Space::Global, Width::B64, Operand::reg(n_seqs), scratch, 40);
                    b.st(Space::Global, Width::B64, Operand::reg(lens), scratch, 48);
                    b.st(Space::Global, Width::B64, Operand::reg(tlen), scratch, 56);
                    b.st(Space::Global, Width::B64, Operand::imm(0), scratch, 64);
                    let grid = b.reg();
                    b.iadd(grid, n_seqs, Operand::reg(child_cta));
                    b.isub(grid, Operand::reg(grid), Operand::imm(1));
                    b.alu(
                        ggpu_isa::AluOp::IDiv,
                        grid,
                        Operand::reg(grid),
                        Operand::reg(child_cta),
                    );
                    b.launch(
                        child,
                        Operand::reg(grid),
                        Operand::reg(child_cta),
                        Operand::reg(scratch),
                        DP_PARAM_WORDS,
                    );
                    b.dsync();
                    // assign unassigned candidates clearing their threshold
                    b.for_range(Operand::imm(0), Operand::reg(n_seqs), 1, |b, j| {
                        let rj = b.reg();
                        b.imul(rj, j, Operand::imm(4));
                        b.iadd(rj, rj, Operand::reg(rep_of));
                        let cr = b.reg();
                        b.ld(Space::Global, Width::B32, cr, rj, 0);
                        let unass = b.cmp_s(CmpOp::Eq, Operand::reg(cr), Operand::imm(UNASSIGNED));
                        b.if_then(unass, |b| {
                            let sa = b.reg();
                            b.imul(sa, j, Operand::imm(8));
                            b.iadd(sa, sa, Operand::reg(scores));
                            let s = b.reg();
                            b.ld(Space::Global, Width::B64, s, sa, 0);
                            let ta = b.reg();
                            b.imul(ta, j, Operand::imm(8));
                            b.iadd(ta, ta, Operand::reg(thr));
                            let t = b.reg();
                            b.ld(Space::Global, Width::B64, t, ta, 0);
                            let ok = b.cmp_s(CmpOp::Ge, Operand::reg(s), Operand::reg(t));
                            b.if_then(ok, |b| {
                                b.st(Space::Global, Width::B32, Operand::reg(idx), rj, 0);
                            });
                        });
                    });
                });
            });
        });
        b.exit();
        let k = b.finish();
        k.validate().expect("cluster driver must validate");
        k
    }
}

impl Benchmark for ClusterBench {
    fn abbrev(&self) -> &'static str {
        "CLUSTER"
    }

    fn name(&self) -> &'static str {
        "Greedy Incremental Alignment-based"
    }

    fn table3(&self) -> Table3Row {
        Table3Row {
            name: self.name(),
            abbrev: self.abbrev(),
            input: "testData.fasta [synthetic sequence families]".into(),
            grid: (128, 1, 1),
            cta: (128, 1, 1),
            shared_memory: true,
            constant_memory: true,
            ctas_per_core: 12,
        }
    }

    fn resources(&self) -> crate::KernelResources {
        let k = build_dp_kernel("CLUSTER-score", &self.kernel_cfg());
        crate::KernelResources {
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            cmem_bytes: k.cmem_bytes,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }

    fn run(&self, config: &GpuConfig, cdp: bool) -> BenchResult {
        let cfg = self.kernel_cfg();
        let mut program = Program::new();
        let child = program.add(build_dp_kernel("CLUSTER-score", &cfg));
        let driver = if cdp {
            Some(program.add(self.build_driver(child.0)))
        } else {
            None
        };
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(child, scoring_const_data(&cfg));

        let n = self.n_seqs;
        let seqs = gpu.malloc(self.seqs.len() as u64);
        let lens = gpu.malloc(n as u64 * 4);
        let order = gpu.malloc(n as u64 * 4);
        let thr = gpu.malloc(n as u64 * 8);
        let rep_of = gpu.malloc(n as u64 * 4);
        let scores = gpu.malloc(n as u64 * 8);
        let scratch = gpu.malloc(DP_PARAM_WORDS as u64 * 8);

        gpu.memcpy_h2d(seqs, &self.seqs);
        let len_bytes: Vec<u8> = self.lens.iter().flat_map(|l| l.to_le_bytes()).collect();
        gpu.memcpy_h2d(lens, &len_bytes);
        let rep_init: Vec<u8> = vec![0xFF; n * 4];
        gpu.memcpy_h2d(rep_of, &rep_init);

        let got_rep: Vec<u32> = if let Some(driver) = driver {
            let order_bytes: Vec<u8> = self.order.iter().flat_map(|v| v.to_le_bytes()).collect();
            gpu.memcpy_h2d(order, &order_bytes);
            let thr_bytes: Vec<u8> = self
                .thresholds
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            gpu.memcpy_h2d(thr, &thr_bytes);
            gpu.launch(
                driver,
                LaunchDims::linear(1, 32),
                &[
                    seqs.0,
                    lens.0,
                    order.0,
                    thr.0,
                    rep_of.0,
                    scores.0,
                    n as u64,
                    self.max_len as u64,
                    scratch.0,
                    64,
                ],
            );
            gpu.synchronize();
            let raw = gpu.memcpy_d2h(rep_of, n * 4);
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4B")))
                .collect()
        } else {
            // Host-driven greedy loop: one kernel + read-back per round.
            let mut rep = vec![u32::MAX; n];
            let stride = self.dims.total_threads();
            for &oi in &self.order {
                let oi = oi as usize;
                if rep[oi] != u32::MAX {
                    continue;
                }
                rep[oi] = oi as u32;
                // Candidate list: unassigned sequences, in order.
                let cands: Vec<u32> = self
                    .order
                    .iter()
                    .copied()
                    .filter(|&j| rep[j as usize] == u32::MAX)
                    .collect();
                if cands.is_empty() {
                    break;
                }
                let idx_buf = gpu.malloc(cands.len() as u64 * 4);
                let idx_bytes: Vec<u8> = cands.iter().flat_map(|v| v.to_le_bytes()).collect();
                gpu.memcpy_h2d(idx_buf, &idx_bytes);
                gpu.launch(
                    child,
                    self.dims,
                    &[
                        seqs.0,
                        seqs.0 + oi as u64 * self.max_len as u64,
                        scores.0,
                        cands.len() as u64,
                        0,
                        stride,
                        lens.0,
                        self.lens[oi] as u64,
                        idx_buf.0,
                    ],
                );
                gpu.synchronize();
                let raw = gpu.memcpy_d2h(scores, cands.len() * 8);
                for (slot, &j) in cands.iter().enumerate() {
                    let s = i64::from_le_bytes(raw[slot * 8..slot * 8 + 8].try_into().expect("8B"));
                    if s >= self.thresholds[j as usize] {
                        rep[j as usize] = oi as u32;
                    }
                }
            }
            rep
        };

        let verified = got_rep == self.expected_rep;
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!(
                "CLUSTER: {} seqs, {} clusters, cdp={}",
                n,
                self.expected_rep
                    .iter()
                    .enumerate()
                    .filter(|(i, &r)| r == *i as u32)
                    .count(),
                cdp
            ),
            stats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        }
    }

    #[test]
    fn cluster_oracle_groups_families() {
        let b = ClusterBench::new(Scale::Tiny);
        let n_clusters = b
            .expected_rep
            .iter()
            .enumerate()
            .filter(|(i, &r)| r == *i as u32)
            .count();
        // Families were generated at 4% divergence against an 82% identity
        // threshold: expect roughly one cluster per family.
        assert!(
            (2..=6).contains(&n_clusters),
            "got {n_clusters} clusters for 3 families"
        );
    }

    #[test]
    fn cluster_validates_non_cdp() {
        let b = ClusterBench::new(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        // One launch per round.
        assert!(r.stats.host.kernel_launches >= 2);
    }

    #[test]
    fn cluster_validates_cdp() {
        let b = ClusterBench::new(Scale::Tiny);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
        assert_eq!(r.stats.host.kernel_launches, 1);
        assert!(r.stats.sm.device_launches >= 2);
    }

    #[test]
    fn cluster_uses_shared_memory_rows() {
        let b = ClusterBench::new(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.stats.sm.space_count(ggpu_isa::Space::Shared) > 0);
    }
}
