//! Parameterized dynamic-programming alignment kernel emitter.
//!
//! One emitter covers six of the suite's benchmarks — SW, NW, and the four
//! GASAL2 modes (GG/GL/GKSW/GSG) — which differ only in initialization,
//! cell recurrence clamping, score extraction, and where the DP rows live
//! (local memory for SW/GASAL2, shared memory for NW, matching the
//! memory-space mix of Figure 9 in the paper). It is also reused by the
//! STAR benchmark (pairwise phases) and CLUSTER (shared-target rounds).
//!
//! ## Kernel ABI (u64 parameter words)
//!
//! | word | meaning |
//! |------|---------|
//! | 0 | `q_base` — queries, one byte per base, `max_len` stride |
//! | 1 | `t_base` — targets, same layout (or the single shared target) |
//! | 2 | `out_base` — i64 score per pair |
//! | 3 | `n_pairs` — pairs strictly below this index are processed |
//! | 4 | `pair_offset` — first pair this grid handles (CDP children) |
//! | 5 | `stride` — pair increment per loop iteration (host grids pass the total thread count; CDP children pass `n_pairs` so each thread does one pair) |
//! | 6 | `len_base` — u32 per-sequence lengths, or 0 for uniform `max_len` |
//! | 7 | `t_len` — target length when built with `shared_target` (ignored otherwise) |
//! | 8 | `idx_base` — u32 pair→sequence indirection (0 = identity), used by CLUSTER's candidate lists |
//!
//! Scoring parameters (match, mismatch, gap open, gap extend) are read
//! from **constant memory** (i64 words 0-3), matching Table III's
//! "Constant Memory? YES" for every benchmark; bind them with
//! [`scoring_const_data`].

use ggpu_isa::{
    AluOp, CmpOp, Kernel, KernelBuilder, Operand, Reg, ScalarType, Space, SpecialReg, Width,
};

/// Negative infinity inside kernels (far below any reachable score).
pub const KERNEL_NEG_INF: i64 = -1_000_000_000;

/// Number of u64 words in the DP kernel ABI.
pub const DP_PARAM_WORDS: u32 = 9;

/// DP flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpMode {
    /// Global alignment score (NW / GASAL2-GLOBAL).
    Global,
    /// Local alignment score with zero floor (SW / GASAL2-LOCAL).
    Local,
    /// Semi-global: free gaps at both target ends (GASAL2-SEMIGLOBAL).
    SemiGlobal,
    /// Extension with z-drop early exit (GASAL2-KSW).
    Extend {
        /// Z-drop threshold.
        zdrop: i32,
    },
}

/// Compile-time configuration of a DP kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpKernelCfg {
    /// Alignment flavor.
    pub mode: DpMode,
    /// Maximum (buffer-stride) sequence length.
    pub max_len: u32,
    /// Keep DP rows in shared memory (NW style) instead of local memory
    /// (SW / GASAL2 style).
    pub rows_in_smem: bool,
    /// Threads per CTA (needed to slice shared memory when
    /// `rows_in_smem`).
    pub threads_per_cta: u32,
    /// Match score (positive).
    pub matches: i32,
    /// Mismatch score (negative).
    pub mismatch: i32,
    /// Gap-open penalty (positive).
    pub open: i32,
    /// Gap-extend penalty (positive).
    pub extend: i32,
    /// All pairs align against one shared target at `t_base` whose length
    /// is ABI word 7 (STAR phase 2, CLUSTER rounds).
    pub shared_target: bool,
    /// Score substitutions through a 20×20 matrix held in constant memory
    /// (BLOSUM62 for the protein STAR benchmark) instead of
    /// match/mismatch. Symbols are residue indices 0..20.
    pub subst_matrix: Option<[[i8; 20]; 20]>,
}

impl DpKernelCfg {
    /// Bytes of row storage per thread: two rows of `(max_len+1)` i64s.
    pub fn row_bytes(&self) -> u32 {
        2 * (self.max_len + 1) * 8
    }
}

/// Constant-memory image binding the scoring parameters (four i64 words —
/// match, mismatch, gap open, gap extend).
pub fn scoring_const_data(cfg: &DpKernelCfg) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    for x in [cfg.matches, cfg.mismatch, cfg.open, cfg.extend] {
        v.extend_from_slice(&(x as i64).to_le_bytes());
    }
    if let Some(table) = &cfg.subst_matrix {
        // Rows padded to a 32-entry stride so the kernel's address
        // arithmetic is a shift: offset = 32 + (q*32 + t)*8.
        for row in table {
            for &x in row {
                v.extend_from_slice(&(x as i64).to_le_bytes());
            }
            for _ in 20..32 {
                v.extend_from_slice(&0i64.to_le_bytes());
            }
        }
    }
    v
}

/// Registers holding kernel-wide values inside the emitter.
struct DpRegs {
    q_base: Reg,
    t_base: Reg,
    out_base: Reg,
    len_base: Reg,
    t_len: Reg,
    idx_base: Reg,
    c_mat: Reg,
    c_mis: Reg,
    c_open: Reg,
    c_ext: Reg,
    /// open + extend, precomputed.
    c_oe: Reg,
}

/// Emit the DP kernel under `cfg`.
pub fn build_dp_kernel(name: &str, cfg: &DpKernelCfg) -> Kernel {
    let mut b = KernelBuilder::new(name);
    let row_bytes = cfg.row_bytes();
    let row_h_off: i64;
    let row_space: Space;
    if cfg.rows_in_smem {
        let base = b.alloc_smem(row_bytes * cfg.threads_per_cta);
        row_h_off = base as i64;
        row_space = Space::Shared;
    } else {
        b.set_local_bytes(row_bytes);
        row_h_off = 0;
        row_space = Space::Local;
    }
    b.set_cmem_bytes(if cfg.subst_matrix.is_some() {
        32 + 20 * 32 * 8
    } else {
        32
    });
    let e_off = (cfg.max_len as i64 + 1) * 8;

    // ---- parameters ----
    let q_base = b.reg();
    b.ld_param(q_base, 0);
    let t_base = b.reg();
    b.ld_param(t_base, 1);
    let out_base = b.reg();
    b.ld_param(out_base, 2);
    let n_pairs = b.reg();
    b.ld_param(n_pairs, 3);
    let pair_off = b.reg();
    b.ld_param(pair_off, 4);
    let stride = b.reg();
    b.ld_param(stride, 5);
    let len_base = b.reg();
    b.ld_param(len_base, 6);
    let t_len = b.reg();
    b.ld_param(t_len, 7);
    let idx_base = b.reg();
    b.ld_param(idx_base, 8);

    // ---- scoring constants from constant memory ----
    let c_mat = b.reg();
    b.ld(Space::Const, Width::B64, c_mat, Operand::imm(0), 0);
    let c_mis = b.reg();
    b.ld(Space::Const, Width::B64, c_mis, Operand::imm(0), 8);
    let c_open = b.reg();
    b.ld(Space::Const, Width::B64, c_open, Operand::imm(0), 16);
    let c_ext = b.reg();
    b.ld(Space::Const, Width::B64, c_ext, Operand::imm(0), 24);
    let c_oe = b.reg();
    b.iadd(c_oe, c_open, Operand::reg(c_ext));

    let regs = DpRegs {
        q_base,
        t_base,
        out_base,
        len_base,
        t_len,
        idx_base,
        c_mat,
        c_mis,
        c_open,
        c_ext,
        c_oe,
    };

    let tid = b.global_tid();
    let pair = b.reg();
    b.iadd(pair, tid, Operand::reg(pair_off));

    // Per-thread row base: shared rows are sliced by the in-CTA thread id.
    let row_base = b.reg();
    if cfg.rows_in_smem {
        let tic = b.reg();
        b.sreg(tic, SpecialReg::TidX);
        b.imul(row_base, tic, Operand::imm(row_bytes as i64));
        b.iadd(row_base, row_base, Operand::imm(row_h_off));
    } else {
        b.mov(row_base, Operand::imm(row_h_off));
    }

    // ---- strided pair loop ----
    b.while_loop(
        |b| b.cmp_s(CmpOp::Lt, Operand::reg(pair), Operand::reg(n_pairs)),
        |b| {
            emit_one_pair(b, cfg, row_space, row_base, e_off, &regs, pair);
            b.iadd(pair, pair, Operand::reg(stride));
        },
    );
    b.exit();
    let mut k = b.finish();
    // Model realistic compiler register pressure for occupancy purposes.
    k.regs_per_thread = k.regs_per_thread.max(40);
    k.validate().expect("dp kernel must validate");
    k
}

fn emit_one_pair(
    b: &mut KernelBuilder,
    cfg: &DpKernelCfg,
    row_space: Space,
    row_base: Reg,
    e_off: i64,
    r: &DpRegs,
    pair: Reg,
) {
    let max_len = cfg.max_len as i64;

    // Resolve the sequence id (CLUSTER candidate-list indirection).
    let sid = b.reg();
    let have_idx = b.cmp_s(CmpOp::Ne, Operand::reg(r.idx_base), Operand::imm(0));
    b.if_then_else(
        have_idx,
        |b| {
            let ia = b.reg();
            b.imul(ia, pair, Operand::imm(4));
            b.iadd(ia, ia, Operand::reg(r.idx_base));
            b.ld(Space::Global, Width::B32, sid, ia, 0);
        },
        |b| b.mov(sid, Operand::reg(pair)),
    );

    // Sequence pointers.
    let qp = b.reg();
    b.imul(qp, sid, Operand::imm(max_len));
    b.iadd(qp, qp, Operand::reg(r.q_base));
    let tp = b.reg();
    if cfg.shared_target {
        b.mov(tp, Operand::reg(r.t_base));
    } else {
        b.imul(tp, sid, Operand::imm(max_len));
        b.iadd(tp, tp, Operand::reg(r.t_base));
    }

    // Effective lengths: query from the length table, target either shared
    // (word 7) or equal to the query length (pairwise benchmarks).
    let qlen = b.reg();
    let have_lens = b.cmp_s(CmpOp::Ne, Operand::reg(r.len_base), Operand::imm(0));
    b.if_then_else(
        have_lens,
        |b| {
            let la = b.reg();
            b.imul(la, sid, Operand::imm(4));
            b.iadd(la, la, Operand::reg(r.len_base));
            b.ld(Space::Global, Width::B32, qlen, la, 0);
        },
        |b| b.mov(qlen, Operand::imm(max_len)),
    );
    let tlen = b.reg();
    if cfg.shared_target {
        b.mov(tlen, Operand::reg(r.t_len));
    } else {
        b.mov(tlen, Operand::reg(qlen));
    }

    // ---- init row 0 (cells 0..=tlen) ----
    let init_cell = |b: &mut KernelBuilder, j: Reg, addr: Reg| {
        let h0 = b.reg();
        match cfg.mode {
            DpMode::Global | DpMode::Extend { .. } => {
                // h[j] = -(open + ext*j), except h[0] = 0.
                b.imul(h0, j, Operand::reg(r.c_ext));
                b.iadd(h0, h0, Operand::reg(r.c_open));
                b.isub(h0, Operand::imm(0), Operand::reg(h0));
                let is0 = b.cmp_s(CmpOp::Eq, Operand::reg(j), Operand::imm(0));
                b.sel(h0, is0, Operand::imm(0), Operand::reg(h0));
            }
            DpMode::Local | DpMode::SemiGlobal => b.mov(h0, Operand::imm(0)),
        }
        b.st(row_space, Width::B64, Operand::reg(h0), addr, 0);
        b.st(
            row_space,
            Width::B64,
            Operand::imm(KERNEL_NEG_INF),
            addr,
            e_off,
        );
    };
    let addr = b.reg();
    b.for_range(Operand::imm(0), Operand::reg(tlen), 1, |b, j| {
        b.imul(addr, j, Operand::imm(8));
        b.iadd(addr, addr, Operand::reg(row_base));
        init_cell(b, j, addr);
    });
    {
        // Final cell j == tlen.
        b.imul(addr, tlen, Operand::imm(8));
        b.iadd(addr, addr, Operand::reg(row_base));
        init_cell(b, tlen, addr);
    }

    // ---- main loops ----
    let best = b.reg();
    b.mov(best, Operand::imm(0));
    let dropped = b.reg();
    b.mov(dropped, Operand::imm(0));
    let i = b.reg();
    b.mov(i, Operand::imm(1));

    b.while_loop(
        |b| {
            let c1 = b.cmp_s(CmpOp::Le, Operand::reg(i), Operand::reg(qlen));
            let c2 = b.cmp_s(CmpOp::Eq, Operand::reg(dropped), Operand::imm(0));
            let both = b.reg();
            b.iand(both, c1, Operand::reg(c2));
            both
        },
        |b| {
            // qc = q[i-1]
            let qa = b.reg();
            b.iadd(qa, qp, Operand::reg(i));
            let qc = b.reg();
            b.ld(Space::Global, Width::B8, qc, qa, -1);

            // hdiag = rowH[0]; hleft = column-0 value for this row.
            let hdiag = b.reg();
            b.ld(row_space, Width::B64, hdiag, row_base, 0);
            let hleft = b.reg();
            match cfg.mode {
                DpMode::Global | DpMode::Extend { .. } | DpMode::SemiGlobal => {
                    b.imul(hleft, i, Operand::reg(r.c_ext));
                    b.iadd(hleft, hleft, Operand::reg(r.c_open));
                    b.isub(hleft, Operand::imm(0), Operand::reg(hleft));
                }
                DpMode::Local => b.mov(hleft, Operand::imm(0)),
            }
            b.st(row_space, Width::B64, Operand::reg(hleft), row_base, 0);

            let f = b.reg();
            b.mov(f, Operand::imm(KERNEL_NEG_INF));
            let rowbest = b.reg();
            b.mov(rowbest, Operand::imm(KERNEL_NEG_INF));

            let j = b.reg();
            b.mov(j, Operand::imm(1));
            b.while_loop(
                |b| b.cmp_s(CmpOp::Le, Operand::reg(j), Operand::reg(tlen)),
                |b| {
                    let ja = b.reg();
                    b.imul(ja, j, Operand::imm(8));
                    b.iadd(ja, ja, Operand::reg(row_base));
                    // NOTE: this score-only kernel labels the two gap
                    // states opposite to the Gotoh/CPU convention (`e`
                    // here is the vertical gap). Scores are unaffected —
                    // max{E, F} is symmetric — but anything that needs
                    // true directions must follow `traceback.rs`, which
                    // uses the CPU convention.
                    // old = rowH[j]; eold = rowE[j]
                    let old = b.reg();
                    b.ld(row_space, Width::B64, old, ja, 0);
                    let eold = b.reg();
                    b.ld(row_space, Width::B64, eold, ja, e_off);
                    // e = max(eold - ext, old - (open + ext))
                    let e = b.reg();
                    b.isub(e, Operand::reg(eold), Operand::reg(r.c_ext));
                    let t1 = b.reg();
                    b.isub(t1, Operand::reg(old), Operand::reg(r.c_oe));
                    b.imax(e, e, Operand::reg(t1));
                    // f = max(f - ext, hleft - (open + ext))
                    b.isub(f, Operand::reg(f), Operand::reg(r.c_ext));
                    let t2 = b.reg();
                    b.isub(t2, Operand::reg(hleft), Operand::reg(r.c_oe));
                    b.imax(f, f, Operand::reg(t2));
                    // substitution score
                    let ta = b.reg();
                    b.iadd(ta, tp, Operand::reg(j));
                    let tc = b.reg();
                    b.ld(Space::Global, Width::B8, tc, ta, -1);
                    let sub = b.reg();
                    if cfg.subst_matrix.is_some() {
                        // sub = const[32 + (qc*32 + tc)*8] (BLOSUM62 row).
                        let ma = b.reg();
                        b.ishl(ma, qc, Operand::imm(5));
                        b.iadd(ma, ma, Operand::reg(tc));
                        b.ishl(ma, ma, Operand::imm(3));
                        b.ld(Space::Const, Width::B64, sub, ma, 32);
                    } else {
                        let eq = b.reg();
                        b.setp(
                            eq,
                            CmpOp::Eq,
                            ScalarType::S64,
                            Operand::reg(qc),
                            Operand::reg(tc),
                        );
                        b.sel(sub, eq, Operand::reg(r.c_mat), Operand::reg(r.c_mis));
                    }
                    // h = max(hdiag + sub, e, f) [, 0 for Local]
                    let h = b.reg();
                    b.iadd(h, hdiag, Operand::reg(sub));
                    b.imax(h, h, Operand::reg(e));
                    b.imax(h, h, Operand::reg(f));
                    if cfg.mode == DpMode::Local {
                        b.imax(h, h, Operand::imm(0));
                    }
                    // rotate
                    b.mov(hdiag, Operand::reg(old));
                    b.st(row_space, Width::B64, Operand::reg(h), ja, 0);
                    b.st(row_space, Width::B64, Operand::reg(e), ja, e_off);
                    b.mov(hleft, Operand::reg(h));
                    match cfg.mode {
                        DpMode::Local | DpMode::Extend { .. } => {
                            b.imax(best, best, Operand::reg(h));
                        }
                        _ => {}
                    }
                    if matches!(cfg.mode, DpMode::Extend { .. }) {
                        b.imax(rowbest, rowbest, Operand::reg(h));
                    }
                    b.iadd(j, j, Operand::imm(1));
                },
            );

            if let DpMode::Extend { zdrop } = cfg.mode {
                // dropped |= rowbest < best - zdrop
                let lim = b.reg();
                b.isub(lim, Operand::reg(best), Operand::imm(zdrop as i64));
                let is_drop = b.cmp_s(CmpOp::Lt, Operand::reg(rowbest), Operand::reg(lim));
                b.ior(dropped, dropped, Operand::reg(is_drop));
            }
            b.iadd(i, i, Operand::imm(1));
        },
    );

    // ---- score extraction ----
    let score = b.reg();
    match cfg.mode {
        DpMode::Global => {
            let la = b.reg();
            b.imul(la, tlen, Operand::imm(8));
            b.iadd(la, la, Operand::reg(row_base));
            b.ld(row_space, Width::B64, score, la, 0);
        }
        DpMode::Local | DpMode::Extend { .. } => b.mov(score, Operand::reg(best)),
        DpMode::SemiGlobal => {
            b.mov(score, Operand::imm(KERNEL_NEG_INF));
            let j = b.reg();
            b.mov(j, Operand::imm(0));
            b.while_loop(
                |b| b.cmp_s(CmpOp::Le, Operand::reg(j), Operand::reg(tlen)),
                |b| {
                    let ja = b.reg();
                    b.imul(ja, j, Operand::imm(8));
                    b.iadd(ja, ja, Operand::reg(row_base));
                    let v = b.reg();
                    b.ld(row_space, Width::B64, v, ja, 0);
                    b.imax(score, score, Operand::reg(v));
                    b.iadd(j, j, Operand::imm(1));
                },
            );
        }
    }
    let oa = b.reg();
    b.imul(oa, pair, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(r.out_base));
    b.st(Space::Global, Width::B64, Operand::reg(score), oa, 0);
}

/// Emit a CDP parent kernel: each parent thread owns a `chunk` of pairs,
/// writes a child parameter block into its scratch slot, launches the child
/// grid (one pair per thread), and synchronizes.
///
/// Parent ABI: words 0-8 as the child's (word 5 ignored), word 9 =
/// scratch base for parameter blocks, word 10 = chunk size, word 11 =
/// child CTA size.
pub fn build_dp_parent(name: &str, child_kernel: u32) -> Kernel {
    let mut b = KernelBuilder::new(name);
    let n_pairs = b.reg();
    b.ld_param(n_pairs, 3);
    let pair_offset = b.reg();
    b.ld_param(pair_offset, 4);
    let scratch = b.reg();
    b.ld_param(scratch, 9);
    let chunk = b.reg();
    b.ld_param(chunk, 10);
    let child_cta = b.reg();
    b.ld_param(child_cta, 11);

    let tid = b.global_tid();
    let start = b.reg();
    b.imul(start, tid, Operand::reg(chunk));
    b.iadd(start, start, Operand::reg(pair_offset));

    let active = b.cmp_s(CmpOp::Lt, Operand::reg(start), Operand::reg(n_pairs));
    b.if_then(active, |b| {
        // limit = min(n_pairs, start + chunk)
        let limit = b.reg();
        b.iadd(limit, start, Operand::reg(chunk));
        b.imin(limit, limit, Operand::reg(n_pairs));
        // Parameter block: DP_PARAM_WORDS words at scratch + tid*72.
        let pb = b.reg();
        b.imul(pb, tid, Operand::imm(DP_PARAM_WORDS as i64 * 8));
        b.iadd(pb, pb, Operand::reg(scratch));
        // Copy pass-through words; set 3 = limit, 4 = start, 5 = n_pairs
        // (a stride larger than any pair id → one pair per child thread).
        for w in [0u32, 1, 2, 6, 7, 8] {
            let v = b.reg();
            b.ld_param(v, w);
            b.st(
                Space::Global,
                Width::B64,
                Operand::reg(v),
                pb,
                (w as i64) * 8,
            );
        }
        b.st(Space::Global, Width::B64, Operand::reg(limit), pb, 3 * 8);
        b.st(Space::Global, Width::B64, Operand::reg(start), pb, 4 * 8);
        b.st(Space::Global, Width::B64, Operand::reg(n_pairs), pb, 5 * 8);
        // grid = ceil(chunk / child_cta)
        let grid = b.reg();
        b.iadd(grid, chunk, Operand::reg(child_cta));
        b.isub(grid, Operand::reg(grid), Operand::imm(1));
        b.alu(
            AluOp::IDiv,
            grid,
            Operand::reg(grid),
            Operand::reg(child_cta),
        );
        b.launch(
            child_kernel,
            Operand::reg(grid),
            Operand::reg(child_cta),
            Operand::reg(pb),
            DP_PARAM_WORDS,
        );
        b.dsync();
    });
    b.exit();
    let mut k = b.finish();
    k.regs_per_thread = k.regs_per_thread.max(32);
    k.validate().expect("dp parent must validate");
    k
}
