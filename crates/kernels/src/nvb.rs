//! NvB — NvBowtie-style FM-index read alignment.
//!
//! The host builds the FM-index tables (suffix array, BWT, full Occ table,
//! C counts) with the `ggpu-genomics` substrate and uploads them to device
//! memory; the C table and text length live in constant memory. Each
//! thread runs an exact backward search for its read — a chain of
//! data-dependent random Occ lookups, which is why the paper measures very
//! high L1/L2 miss rates for NvB — then verifies up to `MAX_HITS`
//! candidate positions by rescoring the read against the reference, read
//! through the **texture** path.
//!
//! * **Non-CDP**: verification runs inline after the search.
//! * **CDP**: the search kernel launches a small child verification grid
//!   per read (one thread per candidate), producing the storm of tiny
//!   kernels behind NvB's "functional done" stalls in Figure 5.
//!
//! Reads are processed in batches staged over PCIe, giving NvB its high
//! kernel *and* PCI counts in Figure 4.

use ggpu_isa::{AtomOp, CmpOp, Kernel, KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{Gpu, GpuConfig};
use rand::{Rng, SeedableRng};

use ggpu_genomics::fmindex::{bwt_from_sa, suffix_array, SENTINEL};
use ggpu_genomics::random_genome;

use crate::{BenchResult, Benchmark, Scale, Table3Row};

/// Maximum candidate positions verified per read.
pub const MAX_HITS: u64 = 8;

/// Flattened FM-index tables ready for device upload.
#[derive(Debug, Clone)]
pub struct FmTables {
    /// Text (genome + sentinel), one symbol per byte.
    pub text: Vec<u8>,
    /// Suffix array (u32 per entry).
    pub sa: Vec<u32>,
    /// Full Occ table: `occ[c][i]` = count of symbol `c` in `bwt[0..i]`,
    /// flattened as `c * (n+1) + i`, u32 entries, for c in 0..5.
    pub occ: Vec<u32>,
    /// C table: symbols strictly smaller than `c` (6 entries).
    pub c_table: [u32; 6],
}

impl FmTables {
    /// Build all tables for a genome (2-bit codes).
    pub fn build(genome: &[u8]) -> Self {
        let mut text = genome.to_vec();
        text.push(SENTINEL);
        let sa = suffix_array(&text);
        let bwt = bwt_from_sa(&text, &sa);
        let n = bwt.len();
        let mut occ = vec![0u32; 5 * (n + 1)];
        let mut running = [0u32; 5];
        for (i, &c) in bwt.iter().enumerate() {
            for s in 0..5 {
                occ[s * (n + 1) + i] = running[s];
            }
            running[c as usize] += 1;
        }
        for s in 0..5 {
            occ[s * (n + 1) + n] = running[s];
        }
        let mut counts = [0u32; 6];
        for &c in &text {
            counts[c as usize + 1] += 1;
        }
        let mut c_table = [0u32; 6];
        for c in 1..6 {
            c_table[c] = c_table[c - 1] + counts[c];
        }
        FmTables {
            text,
            sa,
            occ,
            c_table,
        }
    }

    /// Constant-memory image: C[0..5] then text length (u64 words).
    pub fn const_data(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(7 * 8);
        for c in self.c_table {
            v.extend_from_slice(&(c as u64).to_le_bytes());
        }
        v.extend_from_slice(&(self.text.len() as u64).to_le_bytes());
        v
    }

    /// CPU backward search over these tables: SA interval of `pattern`.
    pub fn backward_search(&self, pattern: &[u8]) -> (usize, usize) {
        let n = self.text.len();
        let (mut lo, mut hi) = (0usize, n);
        for &c in pattern.iter().rev() {
            let c = c as usize;
            lo = self.c_table[c] as usize + self.occ[c * (n + 1) + lo] as usize;
            hi = self.c_table[c] as usize + self.occ[c * (n + 1) + hi] as usize;
            if lo >= hi {
                return (0, 0);
            }
        }
        (lo, hi)
    }

    /// CPU replica of the device mapping rule: best packed
    /// `(match_count << 32) | position` over the first `MAX_HITS` SA rows,
    /// or 0 when the read has no exact full-length hit interval.
    pub fn map_read(&self, read: &[u8]) -> u64 {
        let (lo, hi) = self.backward_search(read);
        if lo >= hi {
            return 0;
        }
        let mut best = 0u64;
        for row in lo..hi.min(lo + MAX_HITS as usize) {
            let pos = self.sa[row] as u64;
            let mut score = 0u64;
            for (i, &c) in read.iter().enumerate() {
                let t = self.text.get(pos as usize + i).copied().unwrap_or(SENTINEL);
                if t == c {
                    score += 1;
                }
            }
            let packed = (score << 32) | pos;
            if packed > best {
                best = packed;
            }
        }
        best
    }
}

/// Emit the verification child kernel (CDP variant).
///
/// ABI: 0 `sa`, 1 `text`, 2 `reads`, 3 `out`, 4 `read_idx`, 5 `lo`,
/// 6 `read_len`. One thread per candidate row.
fn build_verify_kernel() -> Kernel {
    let mut b = KernelBuilder::new("NvB-verify");
    let sa = b.reg();
    b.ld_param(sa, 0);
    let text = b.reg();
    b.ld_param(text, 1);
    let reads = b.reg();
    b.ld_param(reads, 2);
    let out = b.reg();
    b.ld_param(out, 3);
    let ridx = b.reg();
    b.ld_param(ridx, 4);
    let lo = b.reg();
    b.ld_param(lo, 5);
    let read_len = b.reg();
    b.ld_param(read_len, 6);

    let tid = b.global_tid();
    let row = b.reg();
    b.iadd(row, lo, Operand::reg(tid));
    // pos = sa[row]
    let pa = b.reg();
    b.imul(pa, row, Operand::imm(4));
    b.iadd(pa, pa, Operand::reg(sa));
    let pos = b.reg();
    b.ld(Space::Global, Width::B32, pos, pa, 0);
    // rescore the read against the reference via the texture path
    let rp = b.reg();
    b.imul(rp, ridx, Operand::reg(read_len));
    b.iadd(rp, rp, Operand::reg(reads));
    let score = b.reg();
    b.mov(score, Operand::imm(0));
    b.for_range(Operand::imm(0), Operand::reg(read_len), 1, |b, i| {
        let ra = b.reg();
        b.iadd(ra, rp, Operand::reg(i));
        let rc = b.reg();
        b.ld(Space::Global, Width::B8, rc, ra, 0);
        let ta = b.reg();
        b.iadd(ta, text, Operand::reg(pos));
        b.iadd(ta, ta, Operand::reg(i));
        let tc = b.reg();
        b.ld(Space::Tex, Width::B8, tc, ta, 0);
        let eq = b.reg();
        b.setp(
            eq,
            CmpOp::Eq,
            ggpu_isa::ScalarType::S64,
            Operand::reg(rc),
            Operand::reg(tc),
        );
        b.iadd(score, score, Operand::reg(eq));
    });
    // packed = (score << 32) | pos; atomic max into out[read]
    let packed = b.reg();
    b.ishl(packed, score, Operand::imm(32));
    b.ior(packed, packed, Operand::reg(pos));
    let oa = b.reg();
    b.imul(oa, ridx, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(out));
    let old = b.reg();
    b.atom(
        AtomOp::Max,
        Space::Global,
        old,
        oa,
        Operand::reg(packed),
        Operand::imm(0),
    );
    b.exit();
    let k = b.finish();
    k.validate().expect("verify kernel must validate");
    k
}

/// Emit the search kernel.
///
/// ABI: 0 `reads`, 1 `occ`, 2 `out`, 3 `n_reads`, 4 `read_offset`,
/// 5 `stride`, 6 `sa`, 7 `text`, 8 `read_len`, 9 `scratch` (CDP child
/// parameter blocks, one per read) — constant memory holds C[0..5] and the
/// text length.
fn build_search_kernel(name: &str, cdp_child: Option<u32>) -> Kernel {
    let mut b = KernelBuilder::new(name);
    b.set_cmem_bytes(7 * 8);
    let reads = b.reg();
    b.ld_param(reads, 0);
    let occ = b.reg();
    b.ld_param(occ, 1);
    let out = b.reg();
    b.ld_param(out, 2);
    let n_reads = b.reg();
    b.ld_param(n_reads, 3);
    let roff = b.reg();
    b.ld_param(roff, 4);
    let stride = b.reg();
    b.ld_param(stride, 5);
    let sa = b.reg();
    b.ld_param(sa, 6);
    let text = b.reg();
    b.ld_param(text, 7);
    let read_len = b.reg();
    b.ld_param(read_len, 8);
    let scratch = b.reg();
    b.ld_param(scratch, 9);

    let n_plus1 = b.reg();
    b.ld(Space::Const, Width::B64, n_plus1, Operand::imm(0), 48);
    b.iadd(n_plus1, n_plus1, Operand::imm(1));

    let tid = b.global_tid();
    let r = b.reg();
    b.iadd(r, tid, Operand::reg(roff));

    b.while_loop(
        |b| b.cmp_s(CmpOp::Lt, Operand::reg(r), Operand::reg(n_reads)),
        |b| {
            let rp = b.reg();
            b.imul(rp, r, Operand::reg(read_len));
            b.iadd(rp, rp, Operand::reg(reads));

            // Backward search.
            let lo = b.reg();
            b.mov(lo, Operand::imm(0));
            let hi = b.reg();
            b.ld(Space::Const, Width::B64, hi, Operand::imm(0), 48); // text len
            let k = b.reg();
            b.isub(k, Operand::reg(read_len), Operand::imm(1));
            let alive = b.reg();
            b.mov(alive, Operand::imm(1));
            b.while_loop(
                |b| {
                    let c1 = b.cmp_s(CmpOp::Ge, Operand::reg(k), Operand::imm(0));
                    let both = b.reg();
                    b.iand(both, c1, Operand::reg(alive));
                    both
                },
                |b| {
                    let ca = b.reg();
                    b.iadd(ca, rp, Operand::reg(k));
                    let c = b.reg();
                    b.ld(Space::Global, Width::B8, c, ca, 0);
                    // C[c] from constant memory.
                    let cc_a = b.reg();
                    b.imul(cc_a, c, Operand::imm(8));
                    let cc = b.reg();
                    b.ld(Space::Const, Width::B64, cc, cc_a, 0);
                    // occ base for symbol c.
                    let ob = b.reg();
                    b.imul(ob, c, Operand::reg(n_plus1));
                    for bound in [lo, hi] {
                        let oa = b.reg();
                        b.iadd(oa, ob, Operand::reg(bound));
                        b.imul(oa, oa, Operand::imm(4));
                        b.iadd(oa, oa, Operand::reg(occ));
                        let o = b.reg();
                        b.ld(Space::Global, Width::B32, o, oa, 0);
                        b.iadd(o, o, Operand::reg(cc));
                        b.mov(bound, Operand::reg(o));
                    }
                    let dead = b.cmp_s(CmpOp::Ge, Operand::reg(lo), Operand::reg(hi));
                    b.if_then(dead, |b| b.mov(alive, Operand::imm(0)));
                    b.isub(k, Operand::reg(k), Operand::imm(1));
                },
            );

            // hits = alive ? min(hi - lo, MAX_HITS) : 0
            let hits = b.reg();
            b.isub(hits, Operand::reg(hi), Operand::reg(lo));
            b.imin(hits, hits, Operand::imm(MAX_HITS as i64));
            let none = b.cmp_s(CmpOp::Eq, Operand::reg(alive), Operand::imm(0));
            b.sel(hits, none, Operand::imm(0), Operand::reg(hits));

            let have = b.cmp_s(CmpOp::Gt, Operand::reg(hits), Operand::imm(0));
            match cdp_child {
                Some(child) => {
                    // Launch a verification child per read.
                    b.if_then(have, |b| {
                        let pb = b.reg();
                        b.imul(pb, r, Operand::imm(7 * 8));
                        b.iadd(pb, pb, Operand::reg(scratch));
                        b.st(Space::Global, Width::B64, Operand::reg(sa), pb, 0);
                        b.st(Space::Global, Width::B64, Operand::reg(text), pb, 8);
                        b.st(Space::Global, Width::B64, Operand::reg(reads), pb, 16);
                        b.st(Space::Global, Width::B64, Operand::reg(out), pb, 24);
                        b.st(Space::Global, Width::B64, Operand::reg(r), pb, 32);
                        b.st(Space::Global, Width::B64, Operand::reg(lo), pb, 40);
                        b.st(Space::Global, Width::B64, Operand::reg(read_len), pb, 48);
                        b.launch(
                            child,
                            Operand::imm(1),
                            Operand::reg(hits),
                            Operand::reg(pb),
                            7,
                        );
                        b.dsync();
                    });
                }
                None => {
                    // Inline verification of each candidate.
                    b.if_then(have, |b| {
                        let best = b.reg();
                        b.mov(best, Operand::imm(0));
                        b.for_range(Operand::imm(0), Operand::reg(hits), 1, |b, h| {
                            let row = b.reg();
                            b.iadd(row, lo, Operand::reg(h));
                            let pa = b.reg();
                            b.imul(pa, row, Operand::imm(4));
                            b.iadd(pa, pa, Operand::reg(sa));
                            let pos = b.reg();
                            b.ld(Space::Global, Width::B32, pos, pa, 0);
                            let score = b.reg();
                            b.mov(score, Operand::imm(0));
                            b.for_range(Operand::imm(0), Operand::reg(read_len), 1, |b, i| {
                                let ra = b.reg();
                                b.iadd(ra, rp, Operand::reg(i));
                                let rc = b.reg();
                                b.ld(Space::Global, Width::B8, rc, ra, 0);
                                let ta = b.reg();
                                b.iadd(ta, text, Operand::reg(pos));
                                b.iadd(ta, ta, Operand::reg(i));
                                let tc = b.reg();
                                b.ld(Space::Tex, Width::B8, tc, ta, 0);
                                let eq = b.reg();
                                b.setp(
                                    eq,
                                    CmpOp::Eq,
                                    ggpu_isa::ScalarType::S64,
                                    Operand::reg(rc),
                                    Operand::reg(tc),
                                );
                                b.iadd(score, score, Operand::reg(eq));
                            });
                            let packed = b.reg();
                            b.ishl(packed, score, Operand::imm(32));
                            b.ior(packed, packed, Operand::reg(pos));
                            b.imax(best, best, Operand::reg(packed));
                        });
                        let oa = b.reg();
                        b.imul(oa, r, Operand::imm(8));
                        b.iadd(oa, oa, Operand::reg(out));
                        b.st(Space::Global, Width::B64, Operand::reg(best), oa, 0);
                    });
                }
            }
            b.iadd(r, r, Operand::reg(stride));
        },
    );
    b.exit();
    let mut k = b.finish();
    k.regs_per_thread = k.regs_per_thread.max(48);
    k.validate().expect("search kernel must validate");
    k
}

/// Emit the non-CDP FM-index search kernel for embedding in an external
/// host program (the serving layer builds its mapper from this). Same ABI
/// as the benchmark's kernel: `0 reads, 1 occ, 2 out, 3 n_reads,
/// 4 read_offset, 5 stride, 6 sa, 7 text, 8 read_len, 9 scratch(unused)`,
/// with [`FmTables::const_data`] bound as constant memory.
pub fn build_fm_search_kernel(name: &str) -> Kernel {
    build_search_kernel(name, None)
}

/// The NvB benchmark instance.
#[derive(Debug, Clone)]
pub struct NvbBench {
    genome_len: usize,
    read_len: u32,
    n_reads: usize,
    tables: FmTables,
    reads: Vec<u8>,
    expected: Vec<u64>,
    dims: LaunchDims,
    batches: usize,
}

impl NvbBench {
    /// Build an NvB instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        let (genome_len, n_reads, read_len, dims, batches) = match scale {
            Scale::Tiny => (
                2_000usize,
                192usize,
                16u32,
                LaunchDims::linear(2, 32),
                3usize,
            ),
            Scale::Small => (16_000, 2048, 20, LaunchDims::linear(8, 64), 4),
            Scale::Paper => (1 << 18, 1 << 14, 32, LaunchDims::linear(2048, 256), 16),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(8899);
        let genome = random_genome(genome_len, &mut rng);
        let tables = FmTables::build(genome.codes());
        let mut reads = vec![0u8; n_reads * read_len as usize];
        for r in 0..n_reads {
            let dst = &mut reads[r * read_len as usize..(r + 1) * read_len as usize];
            if rng.gen_bool(0.85) {
                // Genuine read: exact substring.
                let start = rng.gen_range(0..genome_len - read_len as usize);
                dst.copy_from_slice(&genome.codes()[start..start + read_len as usize]);
            } else {
                // Contaminant: random bases (usually unmappable).
                for b in dst.iter_mut() {
                    *b = rng.gen_range(0..4u8);
                }
            }
        }
        let expected: Vec<u64> = (0..n_reads)
            .map(|r| tables.map_read(&reads[r * read_len as usize..(r + 1) * read_len as usize]))
            .collect();
        NvbBench {
            genome_len,
            read_len,
            n_reads,
            tables,
            reads,
            expected,
            dims,
            batches,
        }
    }
}

impl Benchmark for NvbBench {
    fn abbrev(&self) -> &'static str {
        "NvB"
    }

    fn name(&self) -> &'static str {
        "NVBIO (NvBowtie)"
    }

    fn table3(&self) -> Table3Row {
        Table3Row {
            name: self.name(),
            abbrev: self.abbrev(),
            input: "hg19.fa, SRR493095.fastq [synthetic genome + reads]".into(),
            grid: (2048, 1, 1),
            cta: (256, 1, 1),
            shared_memory: false,
            constant_memory: true,
            ctas_per_core: 6,
        }
    }

    fn resources(&self) -> crate::KernelResources {
        let k = build_search_kernel("NvB-search", None);
        crate::KernelResources {
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            cmem_bytes: k.cmem_bytes,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }

    fn run(&self, config: &GpuConfig, cdp: bool) -> BenchResult {
        let mut program = Program::new();
        let (search, child) = if cdp {
            let child = program.add(build_verify_kernel());
            let search = program.add(build_search_kernel("NvB-search-cdp", Some(child.0)));
            (search, Some(child))
        } else {
            (program.add(build_search_kernel("NvB-search", None)), None)
        };
        let _ = child;
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(search, self.tables.const_data());

        let n = self.n_reads;
        let text = gpu.malloc(self.tables.text.len() as u64);
        let occ = gpu.malloc(self.tables.occ.len() as u64 * 4);
        let sa = gpu.malloc(self.tables.sa.len() as u64 * 4);
        let reads = gpu.malloc(self.reads.len() as u64);
        let out = gpu.malloc(n as u64 * 8);
        let scratch = gpu.malloc(n as u64 * 7 * 8);

        // Reference tables upload (the index build cost the paper excludes).
        gpu.memcpy_h2d(text, &self.tables.text);
        let occ_bytes: Vec<u8> = self
            .tables
            .occ
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        gpu.memcpy_h2d(occ, &occ_bytes);
        let sa_bytes: Vec<u8> = self
            .tables
            .sa
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        gpu.memcpy_h2d(sa, &sa_bytes);

        // Reads staged per batch, results copied back per batch.
        let per_batch = n.div_ceil(self.batches);
        for batch in 0..self.batches {
            let start = batch * per_batch;
            let end = ((batch + 1) * per_batch).min(n);
            if start >= end {
                break;
            }
            let rs = start * self.read_len as usize;
            let re = end * self.read_len as usize;
            gpu.memcpy_h2d(reads.offset(rs as u64), &self.reads[rs..re]);
            let stride = self.dims.total_threads();
            gpu.launch(
                search,
                self.dims,
                &[
                    reads.0,
                    occ.0,
                    out.0,
                    end as u64,
                    start as u64,
                    stride,
                    sa.0,
                    text.0,
                    self.read_len as u64,
                    scratch.0,
                ],
            );
            gpu.synchronize();
            let _ = gpu.memcpy_d2h(out.offset(start as u64 * 8), (end - start) * 8);
        }

        let raw = gpu.memcpy_d2h(out, n * 8);
        let got: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let verified = got == self.expected;
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!(
                "NvB: {} reads x {}bp vs {}bp genome, {} batches, cdp={}",
                n, self.read_len, self.genome_len, self.batches, cdp
            ),
            stats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        }
    }

    #[test]
    fn fm_tables_match_fmindex_search() {
        use ggpu_genomics::{DnaSeq, FmIndex};
        let genome: DnaSeq = "ACGTACGTTACGACGT".parse().unwrap();
        let tables = FmTables::build(genome.codes());
        let fm = FmIndex::new(&genome);
        for pat in ["ACG", "CGT", "TTT", "ACGT"] {
            let p: DnaSeq = pat.parse().unwrap();
            let (lo, hi) = tables.backward_search(p.codes());
            let (flo, fhi) = fm.backward_search(p.codes());
            assert_eq!((lo, hi), (flo, fhi), "pattern {pat}");
        }
    }

    #[test]
    fn map_read_finds_origin() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let genome = random_genome(500, &mut rng);
        let tables = FmTables::build(genome.codes());
        let read = &genome.codes()[100..120];
        let packed = tables.map_read(read);
        assert_eq!(packed >> 32, 20, "perfect score");
        assert_eq!(packed & 0xFFFF_FFFF, 100);
    }

    #[test]
    fn nvb_validates_non_cdp() {
        let b = NvbBench::new(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        // NvB batches reads: many kernels AND many memcpys.
        assert_eq!(r.stats.host.kernel_launches, 3);
        assert!(r.stats.host.pci_count >= 9);
        // Texture path exercised by verification.
        assert!(r.stats.sm.space_count(ggpu_isa::Space::Tex) > 0);
    }

    #[test]
    fn nvb_validates_cdp() {
        let b = NvbBench::new(Scale::Tiny);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
        assert!(
            r.stats.sm.device_launches > 10,
            "one child per mapped read, got {}",
            r.stats.sm.device_launches
        );
    }

    #[test]
    fn nvb_has_high_l1_miss_rate() {
        // The Occ lookups are data-dependent random accesses over a table
        // much larger than L1 — the paper's defining NvB property.
        let b = NvbBench::new(Scale::Tiny);
        let mut small_l1 = cfg();
        small_l1.sm.l1.bytes = 16 * 1024;
        let r = b.run(&small_l1, false);
        assert!(
            r.stats.l1.miss_rate() > 0.2,
            "expected high miss rate, got {:.3}",
            r.stats.l1.miss_rate()
        );
    }
}
