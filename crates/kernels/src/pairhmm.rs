//! PairHMM — the Pair-HMM forward algorithm on the GPU.
//!
//! One (read, haplotype) pair per thread, double-precision state rows in
//! shared memory (or local memory for the Figure 7 no-shared-memory
//! variant), and a Phred→error-probability lookup table in constant
//! memory. The recurrence matches `ggpu_genomics::PairHmm::forward`
//! operation-for-operation so results validate against the CPU oracle to
//! floating-point tolerance.
//!
//! Kernel ABI: 0 `reads`, 1 `haps`, 2 `out` (f64 bits per pair),
//! 3 `n_pairs`, 4 `pair_offset`, 5 `stride`, 6 `quals`, 7 `scratch`
//! (global row arena for the no-shared-memory variant; unused otherwise),
//! 8 unused (kept compatible with the shared CDP parent).

use ggpu_isa::{
    AluOp, CmpOp, Kernel, KernelBuilder, LaunchDims, Operand, Program, Reg, Space, SpecialReg,
    Width,
};
use ggpu_sim::{Gpu, GpuConfig};
use rand::{Rng, SeedableRng};

use ggpu_genomics::{phred_to_error, random_genome, PairHmm};

use crate::dp::{build_dp_parent, DP_PARAM_WORDS};
use crate::{BenchResult, Benchmark, Scale, Table3Row};

/// Gap-open probability (matches the CPU default).
pub const GAP_OPEN_P: f64 = 1e-3;
/// Gap-extension probability.
pub const GAP_EXT_P: f64 = 0.1;

/// Constant-memory image: 64 f64 error probabilities indexed by Phred
/// quality.
pub fn phred_const_data() -> Vec<u8> {
    (0..64u8)
        .flat_map(|q| phred_to_error(q).to_bits().to_le_bytes())
        .collect()
}

/// Where the DP state rows live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStorage {
    /// On-chip shared memory, sliced per thread (the tuned kernel).
    Shared,
    /// Per-pair arenas in global memory — the naive "ported from CPU
    /// without shared memory" layout whose cost Figure 7 quantifies.
    GlobalScratch,
}

/// Compile-time kernel configuration.
#[derive(Debug, Clone, Copy)]
pub struct PairHmmKernelCfg {
    /// Read length (uniform).
    pub read_len: u32,
    /// Haplotype length (uniform).
    pub hap_len: u32,
    /// Row storage.
    pub rows: RowStorage,
    /// Threads per CTA (for shared-memory slicing).
    pub threads_per_cta: u32,
}

impl PairHmmKernelCfg {
    /// Bytes of row storage per thread: six rows (prev+cur × M/X/Y) of
    /// `(hap_len+1)` f64s.
    pub fn row_bytes(&self) -> u32 {
        6 * (self.hap_len + 1) * 8
    }
}

/// Emit the PairHMM forward kernel.
pub fn build_pairhmm_kernel(name: &str, cfg: &PairHmmKernelCfg) -> Kernel {
    let mut b = KernelBuilder::new(name);
    let row_bytes = cfg.row_bytes();
    let (row_space, base_off) = match cfg.rows {
        RowStorage::Shared => {
            let base = b.alloc_smem(row_bytes * cfg.threads_per_cta);
            (Space::Shared, base as i64)
        }
        RowStorage::GlobalScratch => (Space::Global, 0i64),
    };
    b.set_cmem_bytes(64 * 8);
    let stripe = (cfg.hap_len as i64 + 1) * 8; // one row
                                               // Layout: [m0 x0 y0 m1 x1 y1], prev/cur toggled by a 3-row offset.
    let half = 3 * stripe;

    let reads = b.reg();
    b.ld_param(reads, 0);
    let haps = b.reg();
    b.ld_param(haps, 1);
    let out = b.reg();
    b.ld_param(out, 2);
    let n_pairs = b.reg();
    b.ld_param(n_pairs, 3);
    let pair_off = b.reg();
    b.ld_param(pair_off, 4);
    let stride = b.reg();
    b.ld_param(stride, 5);
    let quals = b.reg();
    b.ld_param(quals, 6);
    let scratch = b.reg();
    b.ld_param(scratch, 7);

    let tid = b.global_tid();
    let pair = b.reg();
    b.iadd(pair, tid, Operand::reg(pair_off));

    let row_base = b.reg();
    match cfg.rows {
        RowStorage::Shared => {
            let tic = b.reg();
            b.sreg(tic, SpecialReg::TidX);
            b.imul(row_base, tic, Operand::imm(row_bytes as i64));
            b.iadd(row_base, row_base, Operand::imm(base_off));
        }
        RowStorage::GlobalScratch => {
            // Recomputed per pair inside the loop.
            b.mov(row_base, Operand::reg(scratch));
        }
    }

    // Transition constants.
    let t_mm = Operand::f64imm(1.0 - 2.0 * GAP_OPEN_P);
    let t_mx = Operand::f64imm(GAP_OPEN_P);
    let t_my = Operand::f64imm(GAP_OPEN_P);
    let t_xx = Operand::f64imm(GAP_EXT_P);
    let t_xm = Operand::f64imm(1.0 - GAP_EXT_P);
    let t_yy = Operand::f64imm(GAP_EXT_P);
    let t_ym = Operand::f64imm(1.0 - GAP_EXT_P);
    let hap_len = cfg.hap_len as i64;
    let read_len = cfg.read_len as i64;
    let init_y = Operand::f64imm(1.0 / cfg.hap_len as f64);

    b.while_loop(
        |b| b.cmp_s(CmpOp::Lt, Operand::reg(pair), Operand::reg(n_pairs)),
        |b| {
            if cfg.rows == RowStorage::GlobalScratch {
                // Per-pair arena in the global scratch buffer.
                b.imul(row_base, pair, Operand::imm(row_bytes as i64));
                b.iadd(row_base, row_base, Operand::reg(scratch));
            }
            let rp = b.reg();
            b.imul(rp, pair, Operand::imm(read_len));
            b.iadd(rp, rp, Operand::reg(reads));
            let qp = b.reg();
            b.imul(qp, pair, Operand::imm(read_len));
            b.iadd(qp, qp, Operand::reg(quals));
            let hp = b.reg();
            b.imul(hp, pair, Operand::imm(hap_len));
            b.iadd(hp, hp, Operand::reg(haps));

            // prev = row_base, cur = row_base + half (toggle each i).
            let prev = b.reg();
            b.mov(prev, Operand::reg(row_base));
            let cur = b.reg();
            b.iadd(cur, row_base, Operand::imm(half));

            // init prev rows: m = x = 0, y = 1/hap_len.
            let addr = b.reg();
            b.for_range(Operand::imm(0), Operand::imm(hap_len + 1), 1, |b, j| {
                b.imul(addr, j, Operand::imm(8));
                b.iadd(addr, addr, Operand::reg(prev));
                b.st(row_space, Width::B64, Operand::f64imm(0.0), addr, 0);
                b.st(row_space, Width::B64, Operand::f64imm(0.0), addr, stripe);
                b.st(row_space, Width::B64, init_y, addr, 2 * stripe);
            });

            b.for_range(Operand::imm(1), Operand::imm(read_len + 1), 1, |b, i| {
                // err = const_table[qual[i-1]]
                let qa = b.reg();
                b.iadd(qa, qp, Operand::reg(i));
                let q = b.reg();
                b.ld(Space::Global, Width::B8, q, qa, -1);
                let ca = b.reg();
                b.imul(ca, q, Operand::imm(8));
                let err = b.reg();
                b.ld(Space::Const, Width::B64, err, ca, 0);
                let one_m_err = b.reg();
                b.alu(
                    AluOp::DSub,
                    one_m_err,
                    Operand::f64imm(1.0),
                    Operand::reg(err),
                );
                let err_3 = b.reg();
                b.alu(AluOp::DDiv, err_3, Operand::reg(err), Operand::f64imm(3.0));
                let rc = b.reg();
                let ra = b.reg();
                b.iadd(ra, rp, Operand::reg(i));
                b.ld(Space::Global, Width::B8, rc, ra, -1);

                // cur[0] = 0 for m, x, y.
                b.st(row_space, Width::B64, Operand::f64imm(0.0), cur, 0);
                b.st(row_space, Width::B64, Operand::f64imm(0.0), cur, stripe);
                b.st(row_space, Width::B64, Operand::f64imm(0.0), cur, 2 * stripe);

                b.for_range(Operand::imm(1), Operand::imm(hap_len + 1), 1, |b, j| {
                    let pj = b.reg(); // prev + j*8
                    b.imul(pj, j, Operand::imm(8));
                    b.iadd(pj, pj, Operand::reg(prev));
                    let cj = b.reg(); // cur + j*8
                    b.imul(cj, j, Operand::imm(8));
                    b.iadd(cj, cj, Operand::reg(cur));

                    // prior
                    let ha = b.reg();
                    b.iadd(ha, hp, Operand::reg(j));
                    let hc = b.reg();
                    b.ld(Space::Global, Width::B8, hc, ha, -1);
                    let eq = b.reg();
                    b.setp(
                        eq,
                        CmpOp::Eq,
                        ggpu_isa::ScalarType::S64,
                        Operand::reg(rc),
                        Operand::reg(hc),
                    );
                    let prior = b.reg();
                    b.sel(prior, eq, Operand::reg(one_m_err), Operand::reg(err_3));

                    // m = prior * (tMM*m_prev[j-1] + tXM*x_prev[j-1] + tYM*y_prev[j-1])
                    let load = |b: &mut KernelBuilder, basereg: Reg, off: i64| -> Reg {
                        let v = b.reg();
                        b.ld(row_space, Width::B64, v, basereg, off);
                        v
                    };
                    let mp = load(b, pj, -8);
                    let xp = load(b, pj, stripe - 8);
                    let yp = load(b, pj, 2 * stripe - 8);
                    let acc = b.reg();
                    b.alu(AluOp::DMul, acc, Operand::reg(mp), t_mm);
                    let t = b.reg();
                    b.alu(AluOp::DMul, t, Operand::reg(xp), t_xm);
                    b.alu(AluOp::DAdd, acc, Operand::reg(acc), Operand::reg(t));
                    b.alu(AluOp::DMul, t, Operand::reg(yp), t_ym);
                    b.alu(AluOp::DAdd, acc, Operand::reg(acc), Operand::reg(t));
                    let m = b.reg();
                    b.alu(AluOp::DMul, m, Operand::reg(prior), Operand::reg(acc));
                    b.st(row_space, Width::B64, Operand::reg(m), cj, 0);

                    // x = tMX*m_prev[j] + tXX*x_prev[j]
                    let mpj = load(b, pj, 0);
                    let xpj = load(b, pj, stripe);
                    let x = b.reg();
                    b.alu(AluOp::DMul, x, Operand::reg(mpj), t_mx);
                    b.alu(AluOp::DMul, t, Operand::reg(xpj), t_xx);
                    b.alu(AluOp::DAdd, x, Operand::reg(x), Operand::reg(t));
                    b.st(row_space, Width::B64, Operand::reg(x), cj, stripe);

                    // y = tMY*m_cur[j-1] + tYY*y_cur[j-1]
                    let mc = load(b, cj, -8);
                    let yc = load(b, cj, 2 * stripe - 8);
                    let y = b.reg();
                    b.alu(AluOp::DMul, y, Operand::reg(mc), t_my);
                    b.alu(AluOp::DMul, t, Operand::reg(yc), t_yy);
                    b.alu(AluOp::DAdd, y, Operand::reg(y), Operand::reg(t));
                    b.st(row_space, Width::B64, Operand::reg(y), cj, 2 * stripe);
                });

                // toggle prev/cur
                let tmp = b.reg();
                b.mov(tmp, Operand::reg(prev));
                b.mov(prev, Operand::reg(cur));
                b.mov(cur, Operand::reg(tmp));
            });

            // total = sum_j (m_prev[j] + x_prev[j]), j in 1..=hap_len
            let total = b.reg();
            b.mov(total, Operand::f64imm(0.0));
            b.for_range(Operand::imm(1), Operand::imm(hap_len + 1), 1, |b, j| {
                let pj = b.reg();
                b.imul(pj, j, Operand::imm(8));
                b.iadd(pj, pj, Operand::reg(prev));
                let m = b.reg();
                b.ld(row_space, Width::B64, m, pj, 0);
                let x = b.reg();
                b.ld(row_space, Width::B64, x, pj, stripe);
                b.alu(AluOp::DAdd, total, Operand::reg(total), Operand::reg(m));
                b.alu(AluOp::DAdd, total, Operand::reg(total), Operand::reg(x));
            });
            let oa = b.reg();
            b.imul(oa, pair, Operand::imm(8));
            b.iadd(oa, oa, Operand::reg(out));
            b.st(Space::Global, Width::B64, Operand::reg(total), oa, 0);

            b.iadd(pair, pair, Operand::reg(stride));
        },
    );
    b.exit();
    let mut k = b.finish();
    k.regs_per_thread = k.regs_per_thread.max(56);
    k.validate().expect("pairhmm kernel must validate");
    k
}

/// The PairHMM benchmark instance.
#[derive(Debug, Clone)]
pub struct PairHmmBench {
    read_len: u32,
    hap_len: u32,
    n_pairs: usize,
    rows: RowStorage,
    reads: Vec<u8>,
    quals: Vec<u8>,
    haps: Vec<u8>,
    /// CPU log10 likelihood per pair.
    expected: Vec<f64>,
    dims: LaunchDims,
    batches: usize,
}

impl PairHmmBench {
    /// Build a PairHMM instance; `smem` selects shared-memory rows
    /// (Figure 7 compares both layouts).
    pub fn new(scale: Scale, smem: bool) -> Self {
        let (n_pairs, read_len, hap_len, dims, batches) = match scale {
            Scale::Tiny => (128usize, 10u32, 14u32, LaunchDims::linear(2, 32), 2usize),
            Scale::Small => (1024, 16, 20, LaunchDims::linear(4, 64), 4),
            Scale::Paper => (19200, 128, 128, LaunchDims::linear(150, 128), 8),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(31415);
        let mut reads = vec![0u8; n_pairs * read_len as usize];
        let mut quals = vec![0u8; n_pairs * read_len as usize];
        let mut haps = vec![0u8; n_pairs * hap_len as usize];
        for p in 0..n_pairs {
            let hap = random_genome(hap_len as usize, &mut rng);
            haps[p * hap_len as usize..(p + 1) * hap_len as usize].copy_from_slice(hap.codes());
            // Read drawn from the haplotype with occasional errors.
            let start = rng.gen_range(0..=(hap_len - read_len) as usize);
            for i in 0..read_len as usize {
                let mut base = hap.codes()[start + i];
                let q: u8 = rng.gen_range(15..45);
                if rng.gen_bool(0.03) {
                    base = (base + rng.gen_range(1..4u8)) % 4;
                }
                reads[p * read_len as usize + i] = base;
                quals[p * read_len as usize + i] = q;
            }
        }
        let hmm = PairHmm {
            gap_open: GAP_OPEN_P,
            gap_ext: GAP_EXT_P,
        };
        let expected: Vec<f64> = (0..n_pairs)
            .map(|p| {
                hmm.forward(
                    &reads[p * read_len as usize..(p + 1) * read_len as usize],
                    &quals[p * read_len as usize..(p + 1) * read_len as usize],
                    &haps[p * hap_len as usize..(p + 1) * hap_len as usize],
                )
            })
            .collect();
        PairHmmBench {
            read_len,
            hap_len,
            n_pairs,
            rows: if smem {
                RowStorage::Shared
            } else {
                RowStorage::GlobalScratch
            },
            reads,
            quals,
            haps,
            expected,
            dims,
            batches,
        }
    }

    fn kernel_cfg(&self) -> PairHmmKernelCfg {
        PairHmmKernelCfg {
            read_len: self.read_len,
            hap_len: self.hap_len,
            rows: self.rows,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }
}

impl Benchmark for PairHmmBench {
    fn abbrev(&self) -> &'static str {
        "PairHMM"
    }

    fn name(&self) -> &'static str {
        "Pair Hidden Markov Model"
    }

    fn table3(&self) -> Table3Row {
        Table3Row {
            name: self.name(),
            abbrev: self.abbrev(),
            input: "Synthetic_data(128_128) [synthetic read/hap pairs]".into(),
            grid: (150, 1, 1),
            cta: (128, 1, 1),
            shared_memory: self.rows == RowStorage::Shared,
            constant_memory: true,
            ctas_per_core: 10,
        }
    }

    fn resources(&self) -> crate::KernelResources {
        let k = build_pairhmm_kernel("PairHMM", &self.kernel_cfg());
        crate::KernelResources {
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            cmem_bytes: k.cmem_bytes,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }

    fn run(&self, config: &GpuConfig, cdp: bool) -> BenchResult {
        let mut program = Program::new();
        let child = program.add(build_pairhmm_kernel("PairHMM", &self.kernel_cfg()));
        let parent = if cdp {
            Some(program.add(build_dp_parent("PairHMM-parent", child.0)))
        } else {
            None
        };
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(child, phred_const_data());

        let n = self.n_pairs;
        let reads = gpu.malloc(self.reads.len() as u64);
        let quals = gpu.malloc(self.quals.len() as u64);
        let haps = gpu.malloc(self.haps.len() as u64);
        let out = gpu.malloc(n as u64 * 8);
        let scratch = if self.rows == RowStorage::GlobalScratch {
            gpu.malloc(n as u64 * self.kernel_cfg().row_bytes() as u64)
                .0
        } else {
            0
        };
        gpu.memcpy_h2d(reads, &self.reads);
        gpu.memcpy_h2d(quals, &self.quals);
        gpu.memcpy_h2d(haps, &self.haps);

        let per_batch = n.div_ceil(self.batches);
        for batch in 0..self.batches {
            let start = batch * per_batch;
            let end = ((batch + 1) * per_batch).min(n);
            if start >= end {
                break;
            }
            match (cdp, parent) {
                (true, Some(pk)) => {
                    // One full, correctly-sliced CTA per child grid.
                    let child_cta = self.dims.threads_per_cta() as u64;
                    let chunk = child_cta;
                    let pthreads = ((end - start) as u64).div_ceil(chunk) as u32;
                    let pscratch = gpu.malloc(pthreads as u64 * DP_PARAM_WORDS as u64 * 8);
                    gpu.launch(
                        pk,
                        LaunchDims::linear(pthreads.div_ceil(32).max(1), 32),
                        &[
                            reads.0,
                            haps.0,
                            out.0,
                            end as u64,
                            start as u64,
                            0,
                            quals.0,
                            scratch,
                            0,
                            pscratch.0,
                            chunk,
                            child_cta,
                        ],
                    );
                }
                _ => {
                    let stride = self.dims.total_threads();
                    gpu.launch(
                        child,
                        self.dims,
                        &[
                            reads.0,
                            haps.0,
                            out.0,
                            end as u64,
                            start as u64,
                            stride,
                            quals.0,
                            scratch,
                            0,
                        ],
                    );
                }
            }
            gpu.synchronize();
        }

        let raw = gpu.memcpy_d2h(out, n * 8);
        let mut verified = true;
        for (p, c) in raw.chunks_exact(8).enumerate() {
            let total = f64::from_bits(u64::from_le_bytes(c.try_into().expect("8B")));
            let got = if total > 0.0 {
                total.log10()
            } else {
                f64::NEG_INFINITY
            };
            let want = self.expected[p];
            if !(got.is_finite() && (got - want).abs() <= 1e-9 * want.abs().max(1.0)) {
                verified = false;
            }
        }
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!(
                "PairHMM: {} pairs ({}x{}), rows={:?}, cdp={}",
                n, self.read_len, self.hap_len, self.rows, cdp
            ),
            stats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        }
    }

    #[test]
    fn pairhmm_validates_smem() {
        let b = PairHmmBench::new(Scale::Tiny, true);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        assert!(r.stats.sm.space_count(ggpu_isa::Space::Shared) > 0);
        // Figure 8: PairHMM is FP-heavy.
        assert!(r.stats.sm.class_count(ggpu_isa::InstrClass::Fp) > 0);
        // Constant memory used for the Phred table.
        assert!(r.stats.sm.space_count(ggpu_isa::Space::Const) > 0);
    }

    #[test]
    fn pairhmm_validates_local_rows() {
        let b = PairHmmBench::new(Scale::Tiny, false);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        assert_eq!(r.stats.sm.space_count(ggpu_isa::Space::Shared), 0);
    }

    #[test]
    fn pairhmm_validates_cdp() {
        let b = PairHmmBench::new(Scale::Tiny, true);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
        assert!(r.stats.sm.device_launches > 0);
    }

    #[test]
    fn smem_variant_is_faster() {
        // Figure 7: shared-memory rows dramatically outperform local rows.
        let smem = PairHmmBench::new(Scale::Tiny, true).run(&cfg(), false);
        let nosmem = PairHmmBench::new(Scale::Tiny, false).run(&cfg(), false);
        assert!(
            smem.kernel_cycles < nosmem.kernel_cycles,
            "smem {} should beat no-smem {}",
            smem.kernel_cycles,
            nosmem.kernel_cycles
        );
    }
}
