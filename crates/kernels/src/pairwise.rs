//! Host drivers for the six pairwise-alignment benchmarks (SW, NW, and the
//! four GASAL2 modes), all built on the shared DP kernel emitter in
//! [`crate::dp`].
//!
//! Host behaviour mirrors the paper's Figure 4 observations:
//!
//! * SW and NW upload their data once and issue *many kernel launches*
//!   (batch per launch), so kernel calls greatly outnumber PCI calls.
//! * The GASAL2 benchmarks stage every batch over PCIe (copy in, kernel,
//!   copy out), so PCI transactions outnumber kernel calls.

use ggpu_isa::{KernelId, LaunchDims, Program};
use ggpu_sim::{Gpu, GpuConfig};
use rand::{Rng, SeedableRng};

use ggpu_genomics::{
    ksw_extend, mutate, nw_score, random_genome, semiglobal_score, sw_score, GapModel, Simple,
};

use crate::dp::{
    build_dp_kernel, build_dp_parent, scoring_const_data, DpKernelCfg, DpMode, DP_PARAM_WORDS,
};
use crate::{BenchResult, Benchmark, Scale, Table3Row};

/// Scoring constants shared by every pairwise benchmark (and their CPU
/// oracles).
pub const MATCH: i32 = 2;
/// Mismatch penalty.
pub const MISMATCH: i32 = -3;
/// Gap-open penalty.
pub const GAP_OPEN: i32 = 5;
/// Gap-extend penalty.
pub const GAP_EXTEND: i32 = 2;
/// Z-drop threshold for the KSW benchmark.
pub const ZDROP: i32 = 30;

/// A pairwise-alignment benchmark instance (inputs + expected outputs).
#[derive(Debug, Clone)]
pub struct PairwiseBench {
    name: &'static str,
    abbrev: &'static str,
    mode: DpMode,
    max_len: u32,
    rows_in_smem: bool,
    /// Launch shape for non-CDP host grids.
    dims: LaunchDims,
    /// Paper's Table III launch shape (for display).
    paper_dims: LaunchDims,
    paper_input: String,
    ctas_per_core: u32,
    /// Host kernel launches (the work is split into this many batches).
    batches: usize,
    /// GASAL2-style per-batch PCIe staging.
    per_batch_memcpy: bool,
    queries: Vec<u8>,
    targets: Vec<u8>,
    lens: Vec<u32>,
    expected: Vec<i64>,
}

impl PairwiseBench {
    fn n_pairs(&self) -> usize {
        self.lens.len()
    }

    /// Build input pairs: related sequences with variable lengths.
    fn make_pairs(
        n_pairs: usize,
        max_len: u32,
        min_len: u32,
        seed: u64,
    ) -> (Vec<u8>, Vec<u8>, Vec<u32>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut q = vec![0u8; n_pairs * max_len as usize];
        let mut t = vec![0u8; n_pairs * max_len as usize];
        let mut lens = Vec::with_capacity(n_pairs);
        for p in 0..n_pairs {
            let len = rng.gen_range(min_len..=max_len);
            let qs = random_genome(len as usize, &mut rng);
            let ts = mutate(&qs, 0.08, 0.02, &mut rng);
            let base = p * max_len as usize;
            q[base..base + len as usize].copy_from_slice(qs.codes());
            // Clamp the mutated target to the buffer stride.
            let tl = ts.len().min(max_len as usize);
            t[base..base + tl].copy_from_slice(&ts.codes()[..tl]);
            // Both sequences use the same effective length so score-only
            // kernels need a single length per pair.
            let eff = (len as usize).min(tl) as u32;
            lens.push(eff);
        }
        (q, t, lens)
    }

    fn cpu_expected(mode: DpMode, q: &[u8], t: &[u8], lens: &[u32], max_len: u32) -> Vec<i64> {
        let subst = Simple::new(MATCH, MISMATCH);
        let gaps = GapModel::Affine {
            open: GAP_OPEN,
            extend: GAP_EXTEND,
        };
        lens.iter()
            .enumerate()
            .map(|(p, &len)| {
                let base = p * max_len as usize;
                let qs = &q[base..base + len as usize];
                let ts = &t[base..base + len as usize];
                let s = match mode {
                    DpMode::Global => nw_score(qs, ts, &subst, gaps),
                    DpMode::Local => sw_score(qs, ts, &subst, gaps),
                    DpMode::SemiGlobal => semiglobal_score(qs, ts, &subst, gaps),
                    DpMode::Extend { zdrop } => {
                        ksw_extend(qs, ts, &subst, gaps, usize::MAX, zdrop).score
                    }
                };
                s as i64
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &'static str,
        abbrev: &'static str,
        mode: DpMode,
        rows_in_smem: bool,
        scale: Scale,
        dims_small: LaunchDims,
        paper_dims: LaunchDims,
        paper_input: &str,
        ctas_per_core: u32,
        per_batch_memcpy: bool,
        uniform_len: bool,
        seed: u64,
    ) -> Self {
        // Workload sizes are multiples of the launch's thread count so full
        // batches fill every warp (the paper's Figure 10 shows NW and the
        // GASAL2 modes issuing >60% fully-occupied warps).
        let (n_pairs, max_len, min_len, dims, batches) = match scale {
            Scale::Tiny => (128usize, 20u32, 12u32, LaunchDims::linear(2, 32), 2usize),
            Scale::Small => (
                dims_small.total_threads() as usize * 4,
                28,
                16,
                dims_small,
                4,
            ),
            Scale::Paper => (
                paper_dims.total_threads() as usize * 8,
                64,
                40,
                paper_dims,
                8,
            ),
        };
        let min_len = if uniform_len { max_len } else { min_len };
        let (queries, targets, lens) = Self::make_pairs(n_pairs, max_len, min_len, seed);
        let expected = Self::cpu_expected(mode, &queries, &targets, &lens, max_len);
        PairwiseBench {
            name,
            abbrev,
            mode,
            max_len,
            rows_in_smem,
            dims,
            paper_dims,
            paper_input: paper_input.to_string(),
            ctas_per_core,
            batches,
            per_batch_memcpy,
            queries,
            targets,
            lens,
            expected,
        }
    }

    /// Smith-Waterman (local alignment, rows in local memory).
    pub fn sw(scale: Scale) -> Self {
        Self::build(
            "Smith-Waterman",
            "SW",
            DpMode::Local,
            false,
            scale,
            LaunchDims::linear(3, 64),
            LaunchDims::linear(3, 64),
            "32K bases with 4 types (A/C/G/T) [synthetic]",
            30,
            false,
            false,
            101,
        )
    }

    /// Needleman-Wunsch (global alignment); `smem` selects the
    /// shared-memory row layout (Figure 7 compares both).
    pub fn nw(scale: Scale, smem: bool) -> Self {
        Self::build(
            "Needleman-Wunsch",
            "NW",
            DpMode::Global,
            smem,
            scale,
            LaunchDims::linear(20, 128),
            LaunchDims::linear(500, 128),
            "32K bases with 4 types (A/C/G/T) [synthetic]",
            6,
            false,
            true,
            102,
        )
    }

    /// GASAL2 GLOBAL.
    pub fn gasal_global(scale: Scale) -> Self {
        Self::build(
            "GASAL2 GLOBAL",
            "GG",
            DpMode::Global,
            false,
            scale,
            LaunchDims::linear(10, 128),
            LaunchDims::linear(40, 128),
            "query_batch.fasta [synthetic read pairs]",
            12,
            true,
            true,
            103,
        )
    }

    /// GASAL2 LOCAL.
    pub fn gasal_local(scale: Scale) -> Self {
        Self::build(
            "GASAL2 LOCAL",
            "GL",
            DpMode::Local,
            false,
            scale,
            LaunchDims::linear(10, 128),
            LaunchDims::linear(40, 128),
            "query_batch.fasta [synthetic read pairs]",
            12,
            true,
            true,
            104,
        )
    }

    /// GASAL2 KSW (extension with z-drop).
    pub fn gasal_ksw(scale: Scale) -> Self {
        Self::build(
            "GASAL2 KSW",
            "GKSW",
            DpMode::Extend { zdrop: ZDROP },
            false,
            scale,
            LaunchDims::linear(10, 128),
            LaunchDims::linear(40, 128),
            "query_batch.fasta [synthetic read pairs]",
            12,
            true,
            true,
            105,
        )
    }

    /// GASAL2 SEMI-GLOBAL.
    pub fn gasal_semiglobal(scale: Scale) -> Self {
        Self::build(
            "GASAL2 SEMI-GLOBAL",
            "GSG",
            DpMode::SemiGlobal,
            false,
            scale,
            LaunchDims::linear(10, 128),
            LaunchDims::linear(40, 128),
            "query_batch.fasta [synthetic read pairs]",
            12,
            true,
            true,
            106,
        )
    }

    fn kernel_cfg(&self) -> DpKernelCfg {
        DpKernelCfg {
            mode: self.mode,
            max_len: self.max_len,
            rows_in_smem: self.rows_in_smem,
            threads_per_cta: self.dims.threads_per_cta(),
            matches: MATCH,
            mismatch: MISMATCH,
            open: GAP_OPEN,
            extend: GAP_EXTEND,
            shared_target: false,
            subst_matrix: None,
        }
    }
}

impl Benchmark for PairwiseBench {
    fn abbrev(&self) -> &'static str {
        self.abbrev
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn table3(&self) -> Table3Row {
        Table3Row {
            name: self.name,
            abbrev: self.abbrev,
            input: self.paper_input.clone(),
            grid: self.paper_dims.grid,
            cta: self.paper_dims.cta,
            shared_memory: self.rows_in_smem,
            constant_memory: true,
            ctas_per_core: self.ctas_per_core,
        }
    }

    fn resources(&self) -> crate::KernelResources {
        let k = build_dp_kernel(self.abbrev, &self.kernel_cfg());
        crate::KernelResources {
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            cmem_bytes: k.cmem_bytes,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }

    fn run(&self, config: &GpuConfig, cdp: bool) -> BenchResult {
        let cfg = self.kernel_cfg();
        let mut program = Program::new();
        let child = program.add(build_dp_kernel(self.abbrev, &cfg));
        let parent = if cdp {
            Some(program.add(build_dp_parent(&format!("{}-parent", self.abbrev), child.0)))
        } else {
            None
        };
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(child, scoring_const_data(&cfg));

        let n = self.n_pairs();
        let q = gpu.malloc(self.queries.len() as u64);
        let t = gpu.malloc(self.targets.len() as u64);
        let lenp = gpu.malloc(n as u64 * 4);
        let out = gpu.malloc(n as u64 * 8);
        let len_bytes: Vec<u8> = self.lens.iter().flat_map(|l| l.to_le_bytes()).collect();

        let per_batch = n.div_ceil(self.batches);
        if !self.per_batch_memcpy {
            // SW/NW style: upload once, many kernel launches.
            gpu.memcpy_h2d(q, &self.queries);
            gpu.memcpy_h2d(t, &self.targets);
            gpu.memcpy_h2d(lenp, &len_bytes);
            for batch in 0..self.batches {
                let start = batch * per_batch;
                let end = ((batch + 1) * per_batch).min(n);
                if start >= end {
                    break;
                }
                launch_batch(
                    &mut gpu, child, parent, self.dims, q.0, t.0, out.0, lenp.0, start, end, cdp,
                );
                gpu.synchronize();
            }
        } else {
            // GASAL2 style: stage each batch over PCIe.
            for batch in 0..self.batches {
                let start = batch * per_batch;
                let end = ((batch + 1) * per_batch).min(n);
                if start >= end {
                    break;
                }
                let qs = start * self.max_len as usize;
                let qe = end * self.max_len as usize;
                gpu.memcpy_h2d(q.offset(qs as u64), &self.queries[qs..qe]);
                gpu.memcpy_h2d(t.offset(qs as u64), &self.targets[qs..qe]);
                gpu.memcpy_h2d(
                    lenp.offset(start as u64 * 4),
                    &len_bytes[start * 4..end * 4],
                );
                launch_batch(
                    &mut gpu, child, parent, self.dims, q.0, t.0, out.0, lenp.0, start, end, cdp,
                );
                gpu.synchronize();
                let _ = gpu.memcpy_d2h(out.offset(start as u64 * 8), (end - start) * 8);
            }
        }
        let raw = gpu.memcpy_d2h(out, n * 8);
        let got: Vec<i64> = raw
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let verified = got == self.expected;
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!(
                "{}: {} pairs (max_len {}), {} batches, cdp={}",
                self.abbrev, n, self.max_len, self.batches, cdp
            ),
            stats,
            profile,
        }
    }
}

/// Launch one batch, either directly (non-CDP) or via a CDP parent grid.
#[allow(clippy::too_many_arguments)]
fn launch_batch(
    gpu: &mut Gpu,
    child: KernelId,
    parent: Option<KernelId>,
    dims: LaunchDims,
    q: u64,
    t: u64,
    out: u64,
    lens: u64,
    start: usize,
    end: usize,
    cdp: bool,
) {
    let n_batch = end - start;
    match (cdp, parent) {
        (true, Some(pk)) => {
            // Parent: one thread per child grid; each child is one full CTA
            // sized like the non-CDP launch so shared-memory slicing and
            // occupancy match.
            let child_cta = dims.threads_per_cta() as u64;
            let chunk = child_cta;
            let pthreads = (n_batch as u64).div_ceil(chunk) as u32;
            let scratch = gpu.malloc(pthreads as u64 * DP_PARAM_WORDS as u64 * 8);
            let pdims = LaunchDims::linear(pthreads.div_ceil(32).max(1), 32);
            gpu.launch(
                pk,
                pdims,
                &[
                    q,
                    t,
                    out,
                    end as u64,
                    start as u64,
                    0, // stride unused by the parent
                    lens,
                    0, // t_len (no shared target)
                    0, // idx_base (identity)
                    scratch.0,
                    chunk,
                    child_cta,
                ],
            );
        }
        _ => {
            let stride = dims.total_threads();
            gpu.launch(
                child,
                dims,
                &[q, t, out, end as u64, start as u64, stride, lens, 0, 0],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_sim::GpuConfig;

    fn cfg() -> GpuConfig {
        GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        }
    }

    #[test]
    fn sw_validates_non_cdp() {
        let b = PairwiseBench::sw(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        assert!(r.stats.sm.issued > 0);
    }

    #[test]
    fn sw_validates_cdp() {
        let b = PairwiseBench::sw(Scale::Tiny);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
        assert!(r.stats.sm.device_launches > 0, "CDP must launch children");
    }

    #[test]
    fn nw_validates_both_row_layouts() {
        for smem in [true, false] {
            let b = PairwiseBench::nw(Scale::Tiny, smem);
            let r = b.run(&cfg(), false);
            assert!(r.verified, "smem={smem}: {}", r.detail);
            let shared = r.stats.sm.space_count(ggpu_isa::Space::Shared);
            if smem {
                assert!(shared > 0, "smem rows must produce shared accesses");
            } else {
                assert_eq!(shared, 0);
            }
        }
    }

    #[test]
    fn gasal_global_validates() {
        let b = PairwiseBench::gasal_global(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        // GASAL2 staging: PCI transactions outnumber kernel launches.
        assert!(r.stats.host.pci_count > r.stats.host.kernel_launches);
        // Local rows dominate the memory mix.
        let local = r.stats.sm.space_count(ggpu_isa::Space::Local);
        let global = r.stats.sm.space_count(ggpu_isa::Space::Global);
        assert!(local > global, "local {local} vs global {global}");
    }

    #[test]
    fn gasal_local_validates_cdp() {
        let b = PairwiseBench::gasal_local(Scale::Tiny);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
    }

    #[test]
    fn gasal_ksw_validates() {
        let b = PairwiseBench::gasal_ksw(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
    }

    #[test]
    fn gasal_semiglobal_validates() {
        let b = PairwiseBench::gasal_semiglobal(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
    }

    #[test]
    fn sw_kernel_launches_exceed_pci() {
        let b = PairwiseBench::sw(Scale::Tiny);
        let r = b.run(&cfg(), false);
        // Upload-once host: 3 H2D + 1 D2H = 4 PCI vs 2+ kernels... the
        // paper's property is kernels ≥ comparable to PCI for SW/NW and
        // at Small scale kernels outnumber memcpys; at Tiny they tie.
        assert!(r.stats.host.kernel_launches >= 2);
    }
}
