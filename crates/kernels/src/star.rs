//! STAR — center-star multiple sequence alignment.
//!
//! Two phases on the GPU:
//!
//! 1. **Pairwise phase**: all `n·(n-1)/2` ordered pairs are scored with the
//!    global-alignment DP kernel.
//! 2. **Center phase**: the per-sequence score sums select the center
//!    (first maximum), and every sequence is aligned to it with the
//!    shared-target DP kernel.
//!
//! Sequences are index-encoded **proteins** scored with BLOSUM62 held in
//! constant memory (the paper's STAR input is `protein.txt`).
//!
//! The non-CDP driver round-trips through the host between phases (copy
//! scores back, reduce, relaunch). The CDP driver instead launches a
//! single-thread *orchestrator* kernel that runs phase 1 as a child grid,
//! reduces on-device, and launches phase 2 directly — removing the host
//! round-trip, which is exactly why the paper's Figure 2 shows CDP cutting
//! STAR's time by more than half.

use ggpu_isa::{CmpOp, Kernel, KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{Gpu, GpuConfig};
use rand::SeedableRng;

use ggpu_genomics::{blosum62_index_matrix, nw_score, GapModel, IndexedMatrix};
use rand::Rng;

use crate::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode, DP_PARAM_WORDS};
use crate::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use crate::{BenchResult, Benchmark, Scale, Table3Row};

/// The STAR benchmark instance.
#[derive(Debug, Clone)]
pub struct StarBench {
    n_seqs: usize,
    seq_len: u32,
    /// Concatenated sequences, `seq_len` stride.
    seqs: Vec<u8>,
    /// Pair tables: pair p aligns seq `pair_a[p]` against seq `pair_b[p]`.
    pair_a: Vec<u32>,
    pair_b: Vec<u32>,
    /// Phase-1 expanded buffers (query/target per pair).
    pair_q: Vec<u8>,
    pair_t: Vec<u8>,
    expected_center: usize,
    expected_pair_scores: Vec<i64>,
    expected_final_scores: Vec<i64>,
    dims: LaunchDims,
    /// Phase-1 host launches (the original CMSA issues many small grids).
    batches: usize,
}

impl StarBench {
    /// Build a STAR instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        let (n_seqs, seq_len, dims, batches) = match scale {
            Scale::Tiny => (10usize, 16u32, LaunchDims::linear(2, 32), 4usize),
            Scale::Small => (20, 24, LaunchDims::linear(4, 64), 6),
            Scale::Paper => (48, 48, LaunchDims::linear(12, 256), 8),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(777);
        // A family of related proteins (index-encoded residues) mutated
        // from one ancestor.
        let ancestor: Vec<u8> = (0..seq_len).map(|_| rng.gen_range(0..20u8)).collect();
        let mut seqs = vec![0u8; n_seqs * seq_len as usize];
        for i in 0..n_seqs {
            let row = &mut seqs[i * seq_len as usize..(i + 1) * seq_len as usize];
            row.copy_from_slice(&ancestor);
            if i > 0 {
                for r in row.iter_mut() {
                    if rng.gen_bool(0.08) {
                        *r = rng.gen_range(0..20u8);
                    }
                }
            }
        }

        // Pair tables and expanded buffers.
        let mut pair_a = Vec::new();
        let mut pair_b = Vec::new();
        for a in 0..n_seqs as u32 {
            for b in a + 1..n_seqs as u32 {
                pair_a.push(a);
                pair_b.push(b);
            }
        }
        let n_pairs = pair_a.len();
        let mut pair_q = vec![0u8; n_pairs * seq_len as usize];
        let mut pair_t = vec![0u8; n_pairs * seq_len as usize];
        for p in 0..n_pairs {
            let (a, b) = (pair_a[p] as usize, pair_b[p] as usize);
            pair_q[p * seq_len as usize..(p + 1) * seq_len as usize]
                .copy_from_slice(&seqs[a * seq_len as usize..(a + 1) * seq_len as usize]);
            pair_t[p * seq_len as usize..(p + 1) * seq_len as usize]
                .copy_from_slice(&seqs[b * seq_len as usize..(b + 1) * seq_len as usize]);
        }

        // CPU oracle (BLOSUM62 over residue indices, like the kernel).
        let subst = IndexedMatrix::blosum62();
        let gaps = GapModel::Affine {
            open: GAP_OPEN,
            extend: GAP_EXTEND,
        };
        let seq_of = |i: usize| &seqs[i * seq_len as usize..(i + 1) * seq_len as usize];
        let expected_pair_scores: Vec<i64> = (0..n_pairs)
            .map(|p| {
                nw_score(
                    seq_of(pair_a[p] as usize),
                    seq_of(pair_b[p] as usize),
                    &subst,
                    gaps,
                ) as i64
            })
            .collect();
        let mut sums = vec![0i64; n_seqs];
        for p in 0..n_pairs {
            sums[pair_a[p] as usize] += expected_pair_scores[p];
            sums[pair_b[p] as usize] += expected_pair_scores[p];
        }
        // First maximum (strictly-greater argmax), matching the device
        // reduction.
        let mut expected_center = 0usize;
        for (i, &s) in sums.iter().enumerate() {
            if s > sums[expected_center] {
                expected_center = i;
            }
        }
        let expected_final_scores: Vec<i64> = (0..n_seqs)
            .map(|i| nw_score(seq_of(i), seq_of(expected_center), &subst, gaps) as i64)
            .collect();

        StarBench {
            n_seqs,
            seq_len,
            seqs,
            pair_a,
            pair_b,
            pair_q,
            pair_t,
            expected_center,
            expected_pair_scores,
            expected_final_scores,
            dims,
            batches,
        }
    }

    fn phase1_cfg(&self) -> DpKernelCfg {
        DpKernelCfg {
            mode: DpMode::Global,
            max_len: self.seq_len,
            rows_in_smem: false,
            threads_per_cta: self.dims.threads_per_cta(),
            matches: MATCH,
            mismatch: MISMATCH,
            open: GAP_OPEN,
            extend: GAP_EXTEND,
            shared_target: false,
            subst_matrix: Some(blosum62_index_matrix()),
        }
    }

    fn phase2_cfg(&self) -> DpKernelCfg {
        DpKernelCfg {
            shared_target: true,
            ..self.phase1_cfg()
        }
    }

    /// Build the on-device orchestrator kernel (CDP variant).
    ///
    /// ABI (u64 words): 0 `seqs`, 1 `pair_q`, 2 `pair_t`, 3 `pair_scores`,
    /// 4 `n_pairs`, 5 `pair_a`, 6 `pair_b`, 7 `sums` (zeroed i64 per seq),
    /// 8 `final_scores`, 9 `center_out`, 10 `n_seqs`, 11 `seq_len`,
    /// 12 `scratch` (one child parameter block per phase-1 batch plus one
    /// for phase 2), 13 `per_batch` (phase-1 pairs per child grid).
    fn build_orchestrator(&self, phase1: u32, phase2: u32) -> Kernel {
        let mut b = KernelBuilder::new("STAR-orchestrator");
        let tid = b.global_tid();
        let is0 = b.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
        b.if_then(is0, |b| {
            let seqs = b.reg();
            b.ld_param(seqs, 0);
            let pair_q = b.reg();
            b.ld_param(pair_q, 1);
            let pair_t = b.reg();
            b.ld_param(pair_t, 2);
            let pscores = b.reg();
            b.ld_param(pscores, 3);
            let n_pairs = b.reg();
            b.ld_param(n_pairs, 4);
            let pair_a = b.reg();
            b.ld_param(pair_a, 5);
            let pair_b = b.reg();
            b.ld_param(pair_b, 6);
            let sums = b.reg();
            b.ld_param(sums, 7);
            let fscores = b.reg();
            b.ld_param(fscores, 8);
            let center_out = b.reg();
            b.ld_param(center_out, 9);
            let n_seqs = b.reg();
            b.ld_param(n_seqs, 10);
            let seq_len = b.reg();
            b.ld_param(seq_len, 11);
            let scratch = b.reg();
            b.ld_param(scratch, 12);
            let per_batch = b.reg();
            b.ld_param(per_batch, 13);

            // ---- phase 1: one child grid per batch of pairs, all
            // launched back-to-back, one sync (no host round-trips) ----
            let start = b.reg();
            b.mov(start, Operand::imm(0));
            let pb1 = b.reg();
            b.mov(pb1, Operand::reg(scratch));
            b.while_loop(
                |b| b.cmp_s(CmpOp::Lt, Operand::reg(start), Operand::reg(n_pairs)),
                |b| {
                    let limit = b.reg();
                    b.iadd(limit, start, Operand::reg(per_batch));
                    b.imin(limit, limit, Operand::reg(n_pairs));
                    b.st(Space::Global, Width::B64, Operand::reg(pair_q), pb1, 0);
                    b.st(Space::Global, Width::B64, Operand::reg(pair_t), pb1, 8);
                    b.st(Space::Global, Width::B64, Operand::reg(pscores), pb1, 16);
                    b.st(Space::Global, Width::B64, Operand::reg(limit), pb1, 24);
                    b.st(Space::Global, Width::B64, Operand::reg(start), pb1, 32);
                    b.st(Space::Global, Width::B64, Operand::reg(n_pairs), pb1, 40);
                    b.st(Space::Global, Width::B64, Operand::imm(0), pb1, 48);
                    b.st(Space::Global, Width::B64, Operand::imm(0), pb1, 56);
                    b.st(Space::Global, Width::B64, Operand::imm(0), pb1, 64);
                    let grid = b.reg();
                    b.iadd(grid, per_batch, Operand::imm(63));
                    b.alu(
                        ggpu_isa::AluOp::IDiv,
                        grid,
                        Operand::reg(grid),
                        Operand::imm(64),
                    );
                    b.launch(
                        phase1,
                        Operand::reg(grid),
                        Operand::imm(64),
                        Operand::reg(pb1),
                        DP_PARAM_WORDS,
                    );
                    b.iadd(start, start, Operand::reg(per_batch));
                    b.iadd(pb1, pb1, Operand::imm(DP_PARAM_WORDS as i64 * 8));
                },
            );
            b.dsync();

            // ---- reduce: per-sequence sums ----
            b.for_range(Operand::imm(0), Operand::reg(n_pairs), 1, |b, p| {
                let sa = b.reg();
                b.imul(sa, p, Operand::imm(8));
                b.iadd(sa, sa, Operand::reg(pscores));
                let s = b.reg();
                b.ld(Space::Global, Width::B64, s, sa, 0);
                for tbl in [pair_a, pair_b] {
                    let ia = b.reg();
                    b.imul(ia, p, Operand::imm(4));
                    b.iadd(ia, ia, Operand::reg(tbl));
                    let idx = b.reg();
                    b.ld(Space::Global, Width::B32, idx, ia, 0);
                    let su = b.reg();
                    b.imul(su, idx, Operand::imm(8));
                    b.iadd(su, su, Operand::reg(sums));
                    let cur = b.reg();
                    b.ld(Space::Global, Width::B64, cur, su, 0);
                    b.iadd(cur, cur, Operand::reg(s));
                    b.st(Space::Global, Width::B64, Operand::reg(cur), su, 0);
                }
            });

            // ---- argmax (first maximum) ----
            let center = b.reg();
            b.mov(center, Operand::imm(0));
            let bestsum = b.reg();
            b.mov(bestsum, Operand::imm(i64::MIN / 4));
            b.for_range(Operand::imm(0), Operand::reg(n_seqs), 1, |b, i| {
                let su = b.reg();
                b.imul(su, i, Operand::imm(8));
                b.iadd(su, su, Operand::reg(sums));
                let v = b.reg();
                b.ld(Space::Global, Width::B64, v, su, 0);
                let gt = b.cmp_s(CmpOp::Gt, Operand::reg(v), Operand::reg(bestsum));
                b.if_then(gt, |b| {
                    b.mov(bestsum, Operand::reg(v));
                    b.mov(center, Operand::reg(i));
                });
            });
            b.st(
                Space::Global,
                Width::B64,
                Operand::reg(center),
                center_out,
                0,
            );

            // ---- phase 2: align everything to the center ----
            let center_ptr = b.reg();
            b.imul(center_ptr, center, Operand::reg(seq_len));
            b.iadd(center_ptr, center_ptr, Operand::reg(seqs));
            let pb2 = b.reg();
            b.mov(pb2, Operand::reg(pb1));
            b.st(Space::Global, Width::B64, Operand::reg(seqs), pb2, 0);
            b.st(Space::Global, Width::B64, Operand::reg(center_ptr), pb2, 8);
            b.st(Space::Global, Width::B64, Operand::reg(fscores), pb2, 16);
            b.st(Space::Global, Width::B64, Operand::reg(n_seqs), pb2, 24);
            b.st(Space::Global, Width::B64, Operand::imm(0), pb2, 32);
            b.st(Space::Global, Width::B64, Operand::reg(n_seqs), pb2, 40);
            b.st(Space::Global, Width::B64, Operand::imm(0), pb2, 48);
            b.st(Space::Global, Width::B64, Operand::reg(seq_len), pb2, 56);
            b.st(Space::Global, Width::B64, Operand::imm(0), pb2, 64);
            let grid2 = b.reg();
            b.iadd(grid2, n_seqs, Operand::imm(63));
            b.alu(
                ggpu_isa::AluOp::IDiv,
                grid2,
                Operand::reg(grid2),
                Operand::imm(64),
            );
            b.launch(
                phase2,
                Operand::reg(grid2),
                Operand::imm(64),
                Operand::reg(pb2),
                DP_PARAM_WORDS,
            );
            b.dsync();
        });
        b.exit();
        let k = b.finish();
        k.validate().expect("orchestrator must validate");
        k
    }
}

impl Benchmark for StarBench {
    fn abbrev(&self) -> &'static str {
        "STAR"
    }

    fn name(&self) -> &'static str {
        "Center Star Algorithm"
    }

    fn table3(&self) -> Table3Row {
        Table3Row {
            name: self.name(),
            abbrev: self.abbrev(),
            input: "protein.txt [synthetic sequence family]".into(),
            grid: (12, 1, 1),
            cta: (256, 1, 1),
            shared_memory: false,
            constant_memory: true,
            ctas_per_core: 4,
        }
    }

    fn resources(&self) -> crate::KernelResources {
        let k = build_dp_kernel("STAR-pairs", &self.phase1_cfg());
        crate::KernelResources {
            regs_per_thread: k.regs_per_thread,
            smem_per_cta: k.smem_per_cta,
            cmem_bytes: k.cmem_bytes,
            threads_per_cta: self.dims.threads_per_cta(),
        }
    }

    fn run(&self, config: &GpuConfig, cdp: bool) -> BenchResult {
        let n_pairs = self.pair_a.len();
        let mut program = Program::new();
        let phase1 = program.add(build_dp_kernel("STAR-pairs", &self.phase1_cfg()));
        let phase2 = program.add(build_dp_kernel("STAR-center", &self.phase2_cfg()));
        let orch = if cdp {
            Some(program.add(self.build_orchestrator(phase1.0, phase2.0)))
        } else {
            None
        };
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(phase1, scoring_const_data(&self.phase1_cfg()));
        gpu.bind_constants(phase2, scoring_const_data(&self.phase2_cfg()));

        let sl = self.seq_len as u64;
        let seqs = gpu.malloc(self.seqs.len() as u64);
        let pq = gpu.malloc(self.pair_q.len() as u64);
        let pt = gpu.malloc(self.pair_t.len() as u64);
        let pscores = gpu.malloc(n_pairs as u64 * 8);
        let fscores = gpu.malloc(self.n_seqs as u64 * 8);
        let pa = gpu.malloc(n_pairs as u64 * 4);
        let pb = gpu.malloc(n_pairs as u64 * 4);
        let sums = gpu.malloc(self.n_seqs as u64 * 8);
        let center_out = gpu.malloc(8);
        let per_batch = n_pairs.div_ceil(self.batches).max(1);
        let scratch = gpu.malloc((self.batches as u64 + 2) * DP_PARAM_WORDS as u64 * 8);

        gpu.memcpy_h2d(seqs, &self.seqs);
        gpu.memcpy_h2d(pq, &self.pair_q);
        gpu.memcpy_h2d(pt, &self.pair_t);
        let a_bytes: Vec<u8> = self.pair_a.iter().flat_map(|v| v.to_le_bytes()).collect();
        let b_bytes: Vec<u8> = self.pair_b.iter().flat_map(|v| v.to_le_bytes()).collect();
        gpu.memcpy_h2d(pa, &a_bytes);
        gpu.memcpy_h2d(pb, &b_bytes);

        let (center, final_scores, pair_scores) = if let Some(orch) = orch {
            // CDP: one host launch does everything.
            gpu.launch(
                orch,
                LaunchDims::linear(1, 32),
                &[
                    seqs.0,
                    pq.0,
                    pt.0,
                    pscores.0,
                    n_pairs as u64,
                    pa.0,
                    pb.0,
                    sums.0,
                    fscores.0,
                    center_out.0,
                    self.n_seqs as u64,
                    sl,
                    scratch.0,
                    per_batch as u64,
                ],
            );
            gpu.synchronize();
            let center = gpu.memory().read_u64(center_out) as usize;
            let f = read_i64s(&mut gpu, fscores.0, self.n_seqs);
            let p = read_i64s(&mut gpu, pscores.0, n_pairs);
            (center, f, p)
        } else {
            // Non-CDP: CMSA-style batched phase-1 launches, then a host
            // round-trip before phase 2.
            let stride = self.dims.total_threads();
            let mut start = 0usize;
            while start < n_pairs {
                let end = (start + per_batch).min(n_pairs);
                gpu.launch(
                    phase1,
                    self.dims,
                    &[
                        pq.0,
                        pt.0,
                        pscores.0,
                        end as u64,
                        start as u64,
                        stride,
                        0,
                        0,
                        0,
                    ],
                );
                gpu.synchronize();
                start = end;
            }
            let raw = gpu.memcpy_d2h(pscores, n_pairs * 8);
            let pair_scores: Vec<i64> = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
                .collect();
            let mut sums_host = vec![0i64; self.n_seqs];
            for p in 0..n_pairs {
                sums_host[self.pair_a[p] as usize] += pair_scores[p];
                sums_host[self.pair_b[p] as usize] += pair_scores[p];
            }
            let mut center = 0usize;
            for (i, &s) in sums_host.iter().enumerate() {
                if s > sums_host[center] {
                    center = i;
                }
            }
            gpu.launch(
                phase2,
                self.dims,
                &[
                    seqs.0,
                    seqs.0 + center as u64 * sl,
                    fscores.0,
                    self.n_seqs as u64,
                    0,
                    stride,
                    0,
                    sl,
                    0,
                ],
            );
            gpu.synchronize();
            let raw = gpu.memcpy_d2h(fscores, self.n_seqs * 8);
            let f: Vec<i64> = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
                .collect();
            (center, f, pair_scores)
        };

        let verified = center == self.expected_center
            && final_scores == self.expected_final_scores
            && pair_scores == self.expected_pair_scores;
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!(
                "STAR: {} seqs x {} bases, {} pairs, center {}, cdp={}",
                self.n_seqs, self.seq_len, n_pairs, center, cdp
            ),
            stats,
            profile,
        }
    }
}

fn read_i64s(gpu: &mut Gpu, addr: u64, n: usize) -> Vec<i64> {
    let raw = gpu.memory().read_slice(ggpu_sim::DevicePtr(addr), n * 8);
    raw.chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        }
    }

    #[test]
    fn star_validates_non_cdp() {
        let b = StarBench::new(Scale::Tiny);
        let r = b.run(&cfg(), false);
        assert!(r.verified, "{}", r.detail);
        // Four phase-1 batches + one phase-2 launch.
        assert_eq!(r.stats.host.kernel_launches, 5);
    }

    #[test]
    fn star_validates_cdp_with_single_host_launch() {
        let b = StarBench::new(Scale::Tiny);
        let r = b.run(&cfg(), true);
        assert!(r.verified, "{}", r.detail);
        assert_eq!(r.stats.host.kernel_launches, 1);
        assert_eq!(r.stats.sm.device_launches, 5, "all grids from device");
    }

    #[test]
    fn star_cdp_beats_non_cdp() {
        // Under realistic launch/PCIe overheads (the RTX 3070 baseline),
        // CDP saves the host round-trip between phases and must win
        // end-to-end — the paper's Figure 2 observation for STAR.
        let realistic = GpuConfig {
            n_sms: 8,
            n_partitions: 2,
            ..GpuConfig::rtx3070()
        };
        let b = StarBench::new(Scale::Tiny);
        let no = b.run(&realistic, false);
        let yes = b.run(&realistic, true);
        let no_total = no.stats.total_cycles();
        let yes_total = yes.stats.total_cycles();
        assert!(
            yes_total < no_total,
            "CDP {yes_total} should beat non-CDP {no_total}"
        );
    }
}
