//! Global alignment **with traceback** — GASAL2's "with traceback" mode.
//!
//! The forward pass mirrors the score-only DP kernel but additionally
//! records per-cell direction bits in a local-memory matrix; a backward
//! walk then reconstructs the alignment as per-column CIGAR operations
//! written to global memory. Tie-breaking matches
//! `ggpu_genomics::nw_align` exactly (diagonal ≥ E ≥ F; gap runs exit on
//! "came from open" ties), so device CIGARs are validated byte-for-byte
//! against the CPU traceback.
//!
//! Direction byte per cell: bits 0-1 = H source (0 diag, 1 E, 2 F),
//! bit 2 = E opened here, bit 3 = F opened here.
//!
//! Kernel ABI (u64 words): 0 `q_base`, 1 `t_base`, 2 `out_scores`,
//! 3 `n_pairs`, 4 `pair_offset`, 5 `stride`, 6 `len_base`,
//! 7 `out_ops` (u8 per column, `2*max_len` stride per pair),
//! 8 `out_ops_len` (u32 per pair). Scoring constants as in the DP kernel.

use ggpu_isa::{CmpOp, Kernel, KernelBuilder, Operand, Reg, ScalarType, Space, Width};

use crate::dp::KERNEL_NEG_INF;

/// CIGAR op codes written by the kernel (per column).
pub const OP_MATCH: u8 = 0;
/// Insertion (consumes query).
pub const OP_INS: u8 = 1;
/// Deletion (consumes target).
pub const OP_DEL: u8 = 2;

/// Configuration of the traceback kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracebackKernelCfg {
    /// Maximum (buffer-stride) sequence length.
    pub max_len: u32,
    /// Match score (positive).
    pub matches: i32,
    /// Mismatch score (negative).
    pub mismatch: i32,
    /// Gap-open penalty (positive).
    pub open: i32,
    /// Gap-extend penalty (positive).
    pub extend: i32,
}

impl TracebackKernelCfg {
    /// Local bytes per thread: two DP rows (i64) plus the direction matrix
    /// (1 byte per cell).
    pub fn local_bytes(&self) -> u32 {
        let rows = 2 * (self.max_len + 1) * 8;
        let dirs = (self.max_len + 1) * (self.max_len + 1);
        rows + dirs
    }
}

/// Emit the global-alignment-with-traceback kernel.
#[allow(clippy::too_many_lines)]
pub fn build_traceback_kernel(name: &str, cfg: &TracebackKernelCfg) -> Kernel {
    let max_len = cfg.max_len as i64;
    let row_h_off = 0i64;
    let e_off = (max_len + 1) * 8;
    let dir_off = 2 * (max_len + 1) * 8;
    let dir_w = max_len + 1;

    let mut b = KernelBuilder::new(name);
    b.set_local_bytes(cfg.local_bytes());
    b.set_cmem_bytes(32);

    let q_base = b.reg();
    b.ld_param(q_base, 0);
    let t_base = b.reg();
    b.ld_param(t_base, 1);
    let out_scores = b.reg();
    b.ld_param(out_scores, 2);
    let n_pairs = b.reg();
    b.ld_param(n_pairs, 3);
    let pair_off = b.reg();
    b.ld_param(pair_off, 4);
    let stride = b.reg();
    b.ld_param(stride, 5);
    let len_base = b.reg();
    b.ld_param(len_base, 6);
    let out_ops = b.reg();
    b.ld_param(out_ops, 7);
    let out_ops_len = b.reg();
    b.ld_param(out_ops_len, 8);

    let c_mat = b.reg();
    b.ld(Space::Const, Width::B64, c_mat, Operand::imm(0), 0);
    let c_mis = b.reg();
    b.ld(Space::Const, Width::B64, c_mis, Operand::imm(0), 8);
    let c_open = b.reg();
    b.ld(Space::Const, Width::B64, c_open, Operand::imm(0), 16);
    let c_ext = b.reg();
    b.ld(Space::Const, Width::B64, c_ext, Operand::imm(0), 24);
    let c_oe = b.reg();
    b.iadd(c_oe, c_open, Operand::reg(c_ext));

    let tid = b.global_tid();
    let pair = b.reg();
    b.iadd(pair, tid, Operand::reg(pair_off));

    b.while_loop(
        |b| b.cmp_s(CmpOp::Lt, Operand::reg(pair), Operand::reg(n_pairs)),
        |b| {
            let qp = b.reg();
            b.imul(qp, pair, Operand::imm(max_len));
            b.iadd(qp, qp, Operand::reg(q_base));
            let tp = b.reg();
            b.imul(tp, pair, Operand::imm(max_len));
            b.iadd(tp, tp, Operand::reg(t_base));
            let len = b.reg();
            let have = b.cmp_s(CmpOp::Ne, Operand::reg(len_base), Operand::imm(0));
            b.if_then_else(
                have,
                |b| {
                    let la = b.reg();
                    b.imul(la, pair, Operand::imm(4));
                    b.iadd(la, la, Operand::reg(len_base));
                    b.ld(Space::Global, Width::B32, len, la, 0);
                },
                |b| b.mov(len, Operand::imm(max_len)),
            );

            // ---- init row 0 ----
            let addr = b.reg();
            let init_one = |b: &mut KernelBuilder, j: Reg| {
                b.imul(addr, j, Operand::imm(8));
                b.iadd(addr, addr, Operand::imm(row_h_off));
                let h0 = b.reg();
                b.imul(h0, j, Operand::reg(c_ext));
                b.iadd(h0, h0, Operand::reg(c_open));
                b.isub(h0, Operand::imm(0), Operand::reg(h0));
                let is0 = b.cmp_s(CmpOp::Eq, Operand::reg(j), Operand::imm(0));
                b.sel(h0, is0, Operand::imm(0), Operand::reg(h0));
                b.st(Space::Local, Width::B64, Operand::reg(h0), addr, 0);
                b.st(
                    Space::Local,
                    Width::B64,
                    Operand::imm(KERNEL_NEG_INF),
                    addr,
                    e_off,
                );
            };
            b.for_range(Operand::imm(0), Operand::reg(len), 1, |b, j| init_one(b, j));
            init_one(b, len);

            // ---- forward pass with direction recording ----
            let i = b.reg();
            b.mov(i, Operand::imm(1));
            b.while_loop(
                |b| b.cmp_s(CmpOp::Le, Operand::reg(i), Operand::reg(len)),
                |b| {
                    let qa = b.reg();
                    b.iadd(qa, qp, Operand::reg(i));
                    let qc = b.reg();
                    b.ld(Space::Global, Width::B8, qc, qa, -1);
                    let hdiag = b.reg();
                    b.ld(Space::Local, Width::B64, hdiag, Operand::imm(row_h_off), 0);
                    let hleft = b.reg();
                    b.imul(hleft, i, Operand::reg(c_ext));
                    b.iadd(hleft, hleft, Operand::reg(c_open));
                    b.isub(hleft, Operand::imm(0), Operand::reg(hleft));
                    b.st(
                        Space::Local,
                        Width::B64,
                        Operand::reg(hleft),
                        Operand::imm(row_h_off),
                        0,
                    );
                    let f = b.reg();
                    b.mov(f, Operand::imm(KERNEL_NEG_INF));
                    let f_opened = b.reg();
                    b.mov(f_opened, Operand::imm(1));

                    let j = b.reg();
                    b.mov(j, Operand::imm(1));
                    b.while_loop(
                        |b| b.cmp_s(CmpOp::Le, Operand::reg(j), Operand::reg(len)),
                        |b| {
                            let ja = b.reg();
                            b.imul(ja, j, Operand::imm(8));
                            let old = b.reg();
                            b.ld(Space::Local, Width::B64, old, ja, row_h_off);
                            // Gotoh state names follow the CPU traceback:
                            // E is the *horizontal* gap (deletion, consumes
                            // target, carried across j in a register), F is
                            // the *vertical* gap (insertion, kept in the row
                            // array at (i-1, j)).
                            let fold = b.reg();
                            b.ld(Space::Local, Width::B64, fold, ja, e_off);
                            // f = max(fold-ext, old-oe); opened on ties.
                            let f_ext = b.reg();
                            b.isub(f_ext, Operand::reg(fold), Operand::reg(c_ext));
                            let f_open = b.reg();
                            b.isub(f_open, Operand::reg(old), Operand::reg(c_oe));
                            let frow = b.reg();
                            b.imax(frow, f_open, Operand::reg(f_ext));
                            let f_opened_here =
                                b.cmp_s(CmpOp::Ge, Operand::reg(f_open), Operand::reg(f_ext));
                            // e = max(e-ext, hleft-oe); opened on ties.
                            let e_ext = b.reg();
                            b.isub(e_ext, Operand::reg(f), Operand::reg(c_ext));
                            let e_open = b.reg();
                            b.isub(e_open, Operand::reg(hleft), Operand::reg(c_oe));
                            b.imax(f, e_open, Operand::reg(e_ext));
                            let eo = b.cmp_s(CmpOp::Ge, Operand::reg(e_open), Operand::reg(e_ext));
                            b.mov(f_opened, Operand::reg(eo));
                            // diag + sub
                            let ta = b.reg();
                            b.iadd(ta, tp, Operand::reg(j));
                            let tc = b.reg();
                            b.ld(Space::Global, Width::B8, tc, ta, -1);
                            let eq = b.reg();
                            b.setp(
                                eq,
                                CmpOp::Eq,
                                ScalarType::S64,
                                Operand::reg(qc),
                                Operand::reg(tc),
                            );
                            let sub = b.reg();
                            b.sel(sub, eq, Operand::reg(c_mat), Operand::reg(c_mis));
                            let diag = b.reg();
                            b.iadd(diag, hdiag, Operand::reg(sub));
                            // h = max(diag, e, f) with the CPU tie order
                            // (diag, then horizontal E, then vertical F).
                            let h = b.reg();
                            b.imax(h, diag, Operand::reg(f));
                            b.imax(h, h, Operand::reg(frow));
                            let is_diag = b.cmp_s(CmpOp::Eq, Operand::reg(h), Operand::reg(diag));
                            let is_e = b.cmp_s(CmpOp::Eq, Operand::reg(h), Operand::reg(f));
                            let hdir = b.reg();
                            b.sel(hdir, is_e, Operand::imm(1), Operand::imm(2));
                            b.sel(hdir, is_diag, Operand::imm(0), Operand::reg(hdir));
                            // dir byte = hdir | e_opened<<2 | f_opened<<3
                            let dirb = b.reg();
                            b.ishl(dirb, f_opened, Operand::imm(2));
                            b.ior(dirb, dirb, Operand::reg(hdir));
                            let fbit = b.reg();
                            b.ishl(fbit, f_opened_here, Operand::imm(3));
                            b.ior(dirb, dirb, Operand::reg(fbit));
                            let da = b.reg();
                            b.imul(da, i, Operand::imm(dir_w));
                            b.iadd(da, da, Operand::reg(j));
                            b.st(Space::Local, Width::B8, Operand::reg(dirb), da, dir_off);
                            // rotate
                            b.mov(hdiag, Operand::reg(old));
                            b.st(Space::Local, Width::B64, Operand::reg(h), ja, row_h_off);
                            b.st(Space::Local, Width::B64, Operand::reg(frow), ja, e_off);
                            b.mov(hleft, Operand::reg(h));
                            b.iadd(j, j, Operand::imm(1));
                        },
                    );
                    b.iadd(i, i, Operand::imm(1));
                },
            );

            // Final score: h[len].
            let score = b.reg();
            {
                let la = b.reg();
                b.imul(la, len, Operand::imm(8));
                b.ld(Space::Local, Width::B64, score, la, row_h_off);
                let oa = b.reg();
                b.imul(oa, pair, Operand::imm(8));
                b.iadd(oa, oa, Operand::reg(out_scores));
                b.st(Space::Global, Width::B64, Operand::reg(score), oa, 0);
            }

            // ---- backward walk (mirrors ggpu_genomics::nw_align) ----
            let ops_base = b.reg();
            b.imul(ops_base, pair, Operand::imm(2 * max_len));
            b.iadd(ops_base, ops_base, Operand::reg(out_ops));
            let nops = b.reg();
            b.mov(nops, Operand::imm(0));
            let ti = b.reg();
            b.mov(ti, Operand::reg(len));
            let tj = b.reg();
            b.mov(tj, Operand::reg(len));
            let state = b.reg();
            b.mov(state, Operand::imm(0)); // 0=H, 1=E, 2=F
            b.while_loop(
                |b| {
                    let c1 = b.cmp_s(CmpOp::Gt, Operand::reg(ti), Operand::imm(0));
                    let c2 = b.cmp_s(CmpOp::Gt, Operand::reg(tj), Operand::imm(0));
                    let any = b.reg();
                    b.ior(any, c1, Operand::reg(c2));
                    any
                },
                |b| {
                    // Load the direction byte (only valid for ti>0 && tj>0).
                    let da = b.reg();
                    b.imul(da, ti, Operand::imm(dir_w));
                    b.iadd(da, da, Operand::reg(tj));
                    let dirb = b.reg();
                    b.ld(Space::Local, Width::B8, dirb, da, dir_off);
                    let hdir = b.reg();
                    b.iand(hdir, dirb, Operand::imm(3));

                    // Border handling, as in the CPU traceback.
                    let i0 = b.cmp_s(CmpOp::Eq, Operand::reg(ti), Operand::imm(0));
                    let j0 = b.cmp_s(CmpOp::Eq, Operand::reg(tj), Operand::imm(0));
                    // eff_state: if state==0 then (border or hdir decides)
                    let eff = b.reg();
                    let in_h = b.cmp_s(CmpOp::Eq, Operand::reg(state), Operand::imm(0));
                    b.if_then_else(
                        in_h,
                        |b| {
                            // In H: borders force a gap state; otherwise hdir.
                            b.mov(eff, Operand::reg(hdir));
                            b.sel(eff, j0, Operand::imm(2), Operand::reg(eff)); // j==0 → F (Ins)
                            b.sel(eff, i0, Operand::imm(1), Operand::reg(eff)); // i==0 → E (Del)
                        },
                        |b| b.mov(eff, Operand::reg(state)),
                    );

                    let op = b.reg();
                    let is_diag = b.cmp_s(CmpOp::Eq, Operand::reg(eff), Operand::imm(0));
                    b.if_then_else(
                        is_diag,
                        |b| {
                            b.mov(op, Operand::imm(OP_MATCH as i64));
                            b.isub(ti, Operand::reg(ti), Operand::imm(1));
                            b.isub(tj, Operand::reg(tj), Operand::imm(1));
                            b.mov(state, Operand::imm(0));
                        },
                        |b| {
                            let is_e = b.cmp_s(CmpOp::Eq, Operand::reg(eff), Operand::imm(1));
                            b.if_then_else(
                                is_e,
                                |b| {
                                    // Deletion: consume target.
                                    b.mov(op, Operand::imm(OP_DEL as i64));
                                    // Stay in E unless opened here or j<=1.
                                    let opened = b.reg();
                                    b.ishr(opened, dirb, Operand::imm(2));
                                    b.iand(opened, opened, Operand::imm(1));
                                    let j_small =
                                        b.cmp_s(CmpOp::Le, Operand::reg(tj), Operand::imm(1));
                                    let exit = b.reg();
                                    b.ior(exit, opened, Operand::reg(j_small));
                                    // On the i==0 border the direction byte is
                                    // garbage: always exit to H (it re-derives
                                    // E from the border rule next step).
                                    let i0b = b.cmp_s(CmpOp::Eq, Operand::reg(ti), Operand::imm(0));
                                    b.ior(exit, exit, Operand::reg(i0b));
                                    b.sel(state, exit, Operand::imm(0), Operand::imm(1));
                                    b.isub(tj, Operand::reg(tj), Operand::imm(1));
                                },
                                |b| {
                                    // Insertion: consume query.
                                    b.mov(op, Operand::imm(OP_INS as i64));
                                    let opened = b.reg();
                                    b.ishr(opened, dirb, Operand::imm(3));
                                    b.iand(opened, opened, Operand::imm(1));
                                    let i_small =
                                        b.cmp_s(CmpOp::Le, Operand::reg(ti), Operand::imm(1));
                                    let exit = b.reg();
                                    b.ior(exit, opened, Operand::reg(i_small));
                                    let j0b = b.cmp_s(CmpOp::Eq, Operand::reg(tj), Operand::imm(0));
                                    b.ior(exit, exit, Operand::reg(j0b));
                                    b.sel(state, exit, Operand::imm(0), Operand::imm(2));
                                    b.isub(ti, Operand::reg(ti), Operand::imm(1));
                                },
                            );
                        },
                    );
                    // Append op (reversed order for now).
                    let oa = b.reg();
                    b.iadd(oa, ops_base, Operand::reg(nops));
                    b.st(Space::Global, Width::B8, Operand::reg(op), oa, 0);
                    b.iadd(nops, nops, Operand::imm(1));
                },
            );

            // Reverse the op string in place.
            let lo = b.reg();
            b.mov(lo, Operand::imm(0));
            let hi = b.reg();
            b.isub(hi, Operand::reg(nops), Operand::imm(1));
            b.while_loop(
                |b| b.cmp_s(CmpOp::Lt, Operand::reg(lo), Operand::reg(hi)),
                |b| {
                    let la = b.reg();
                    b.iadd(la, ops_base, Operand::reg(lo));
                    let ha = b.reg();
                    b.iadd(ha, ops_base, Operand::reg(hi));
                    let x = b.reg();
                    b.ld(Space::Global, Width::B8, x, la, 0);
                    let y = b.reg();
                    b.ld(Space::Global, Width::B8, y, ha, 0);
                    b.st(Space::Global, Width::B8, Operand::reg(y), la, 0);
                    b.st(Space::Global, Width::B8, Operand::reg(x), ha, 0);
                    b.iadd(lo, lo, Operand::imm(1));
                    b.isub(hi, Operand::reg(hi), Operand::imm(1));
                },
            );
            // Store op count.
            let na = b.reg();
            b.imul(na, pair, Operand::imm(4));
            b.iadd(na, na, Operand::reg(out_ops_len));
            b.st(Space::Global, Width::B32, Operand::reg(nops), na, 0);

            b.iadd(pair, pair, Operand::reg(stride));
        },
    );
    b.exit();
    let mut k = b.finish();
    k.regs_per_thread = k.regs_per_thread.max(48);
    k.validate().expect("traceback kernel must validate");
    k
}

/// The "GASAL2 with traceback" extension benchmark: global alignment of a
/// read batch returning full CIGARs, validated against the CPU traceback.
#[derive(Debug, Clone)]
pub struct TracebackBench {
    max_len: u32,
    n_pairs: usize,
    queries: Vec<u8>,
    targets: Vec<u8>,
    lens: Vec<u32>,
    expected_scores: Vec<i64>,
    expected_ops: Vec<Vec<u8>>,
    dims: ggpu_isa::LaunchDims,
}

impl TracebackBench {
    /// Build an instance at `scale`.
    pub fn new(scale: crate::Scale) -> Self {
        use ggpu_genomics::{mutate, nw_align, random_genome, CigarOp, GapModel, Simple};
        use rand::{Rng, SeedableRng};
        let (n_pairs, max_len, dims) = match scale {
            crate::Scale::Tiny => (64usize, 20u32, ggpu_isa::LaunchDims::linear(2, 32)),
            crate::Scale::Small => (2048, 28, ggpu_isa::LaunchDims::linear(10, 128)),
            crate::Scale::Paper => (10240, 64, ggpu_isa::LaunchDims::linear(40, 128)),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(606);
        let mut queries = vec![0u8; n_pairs * max_len as usize];
        let mut targets = vec![0u8; n_pairs * max_len as usize];
        let mut lens = Vec::with_capacity(n_pairs);
        for p in 0..n_pairs {
            let len = rng.gen_range(max_len - 8..=max_len) as usize;
            let qs = random_genome(len, &mut rng);
            let ts = mutate(&qs, 0.1, 0.05, &mut rng);
            let tl = ts.len().min(len);
            queries[p * max_len as usize..p * max_len as usize + len].copy_from_slice(qs.codes());
            targets[p * max_len as usize..p * max_len as usize + tl]
                .copy_from_slice(&ts.codes()[..tl]);
            lens.push(len as u32);
        }
        let subst = Simple::new(2, -3);
        let gaps = GapModel::Affine { open: 5, extend: 2 };
        let mut expected_scores = Vec::with_capacity(n_pairs);
        let mut expected_ops = Vec::with_capacity(n_pairs);
        for (p, &plen) in lens.iter().enumerate() {
            let base = p * max_len as usize;
            let len = plen as usize;
            let aln = nw_align(
                &queries[base..base + len],
                &targets[base..base + len],
                &subst,
                gaps,
            );
            expected_scores.push(aln.score as i64);
            let mut ops = Vec::new();
            for &(op, count) in &aln.cigar {
                let code = match op {
                    CigarOp::Match => OP_MATCH,
                    CigarOp::Ins => OP_INS,
                    CigarOp::Del => OP_DEL,
                };
                ops.extend(std::iter::repeat_n(code, count as usize));
            }
            expected_ops.push(ops);
        }
        TracebackBench {
            max_len,
            n_pairs,
            queries,
            targets,
            lens,
            expected_scores,
            expected_ops,
            dims,
        }
    }

    /// Run the *score-only* DP kernel on this instance's exact inputs and
    /// launch shape — the baseline the traceback cost is measured against.
    pub fn run_score_only(&self, config: &ggpu_sim::GpuConfig) -> crate::BenchResult {
        use crate::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode};
        use ggpu_isa::Program;
        use ggpu_sim::Gpu;
        let dcfg = DpKernelCfg {
            mode: DpMode::Global,
            max_len: self.max_len,
            rows_in_smem: false,
            threads_per_cta: self.dims.threads_per_cta(),
            matches: 2,
            mismatch: -3,
            open: 5,
            extend: 2,
            shared_target: false,
            subst_matrix: None,
        };
        let mut program = Program::new();
        let k = program.add(build_dp_kernel("GG-score", &dcfg));
        let mut gpu = Gpu::new(program, config.clone());
        gpu.bind_constants(k, scoring_const_data(&dcfg));
        let n = self.n_pairs;
        let qb = gpu.malloc(self.queries.len() as u64);
        let tb = gpu.malloc(self.targets.len() as u64);
        let lb = gpu.malloc(n as u64 * 4);
        let sb = gpu.malloc(n as u64 * 8);
        gpu.memcpy_h2d(qb, &self.queries);
        gpu.memcpy_h2d(tb, &self.targets);
        let len_bytes: Vec<u8> = self.lens.iter().flat_map(|l| l.to_le_bytes()).collect();
        gpu.memcpy_h2d(lb, &len_bytes);
        gpu.run_kernel(
            k,
            self.dims,
            &[
                qb.0,
                tb.0,
                sb.0,
                n as u64,
                0,
                self.dims.total_threads(),
                lb.0,
                0,
                0,
            ],
        );
        let scores: Vec<i64> = gpu
            .memcpy_d2h(sb, n * 8)
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        crate::BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified: scores == self.expected_scores,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!("GG score-only on the traceback workload ({n} pairs)"),
            stats,
            profile,
        }
    }

    /// Run on the simulator; verifies scores and CIGARs byte-for-byte.
    pub fn run(&self, config: &ggpu_sim::GpuConfig) -> crate::BenchResult {
        use crate::dp::{scoring_const_data, DpKernelCfg, DpMode};
        use ggpu_isa::Program;
        use ggpu_sim::Gpu;

        let cfg = TracebackKernelCfg {
            max_len: self.max_len,
            matches: 2,
            mismatch: -3,
            open: 5,
            extend: 2,
        };
        let mut program = Program::new();
        let k = program.add(build_traceback_kernel("GG-TB", &cfg));
        let mut gpu = Gpu::new(program, config.clone());
        let dcfg = DpKernelCfg {
            mode: DpMode::Global,
            max_len: self.max_len,
            rows_in_smem: false,
            threads_per_cta: self.dims.threads_per_cta(),
            matches: 2,
            mismatch: -3,
            open: 5,
            extend: 2,
            shared_target: false,
            subst_matrix: None,
        };
        gpu.bind_constants(k, scoring_const_data(&dcfg));

        let n = self.n_pairs;
        let qb = gpu.malloc(self.queries.len() as u64);
        let tb = gpu.malloc(self.targets.len() as u64);
        let lb = gpu.malloc(n as u64 * 4);
        let sb = gpu.malloc(n as u64 * 8);
        let ob = gpu.malloc(n as u64 * 2 * self.max_len as u64);
        let nb = gpu.malloc(n as u64 * 4);
        gpu.memcpy_h2d(qb, &self.queries);
        gpu.memcpy_h2d(tb, &self.targets);
        let len_bytes: Vec<u8> = self.lens.iter().flat_map(|l| l.to_le_bytes()).collect();
        gpu.memcpy_h2d(lb, &len_bytes);
        gpu.run_kernel(
            k,
            self.dims,
            &[
                qb.0,
                tb.0,
                sb.0,
                n as u64,
                0,
                self.dims.total_threads(),
                lb.0,
                ob.0,
                nb.0,
            ],
        );
        let scores: Vec<i64> = gpu
            .memcpy_d2h(sb, n * 8)
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let raw_ops = gpu.memcpy_d2h(ob, n * 2 * self.max_len as usize);
        let raw_lens = gpu.memcpy_d2h(nb, n * 4);
        let mut verified = scores == self.expected_scores;
        for p in 0..n {
            let count =
                u32::from_le_bytes(raw_lens[p * 4..p * 4 + 4].try_into().expect("4B")) as usize;
            let base = p * 2 * self.max_len as usize;
            if raw_ops[base..base + count] != self.expected_ops[p][..] {
                verified = false;
            }
        }
        let profile = gpu
            .profiling_enabled()
            .then(|| Box::new(gpu.take_profile()));
        let stats = gpu.stats();
        crate::BenchResult {
            kernel_cycles: stats.host.kernel_cycles,
            verified,
            sim_threads: config.resolved_sim_threads(),
            fast_forward_skipped_cycles: gpu.fast_forward_skipped_cycles(),
            detail: format!("GG-TB: {} pairs with full CIGAR traceback", n),
            stats,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{scoring_const_data, DpKernelCfg, DpMode};
    use ggpu_genomics::{mutate, nw_align, random_genome, CigarOp, GapModel, Simple};
    use ggpu_isa::{LaunchDims, Program};
    use ggpu_sim::{Gpu, GpuConfig};
    use rand::SeedableRng;

    const MAX_LEN: u32 = 20;

    fn run_traceback(q: &[u8], t: &[u8], lens: &[u32]) -> (Vec<i64>, Vec<Vec<u8>>) {
        let cfg = TracebackKernelCfg {
            max_len: MAX_LEN,
            matches: 2,
            mismatch: -3,
            open: 5,
            extend: 2,
        };
        let n = lens.len();
        let mut program = Program::new();
        let k = program.add(build_traceback_kernel("tb", &cfg));
        let mut gpu = Gpu::new(program, GpuConfig::test_small());
        // Reuse the DP const layout (match/mismatch/open/extend words).
        let dcfg = DpKernelCfg {
            mode: DpMode::Global,
            max_len: MAX_LEN,
            rows_in_smem: false,
            threads_per_cta: 32,
            matches: 2,
            mismatch: -3,
            open: 5,
            extend: 2,
            shared_target: false,
            subst_matrix: None,
        };
        gpu.bind_constants(k, scoring_const_data(&dcfg));
        let qb = gpu.malloc(q.len() as u64);
        let tb = gpu.malloc(t.len() as u64);
        let lb = gpu.malloc(n as u64 * 4);
        let sb = gpu.malloc(n as u64 * 8);
        let ob = gpu.malloc(n as u64 * 2 * MAX_LEN as u64);
        let nb = gpu.malloc(n as u64 * 4);
        gpu.memcpy_h2d(qb, q);
        gpu.memcpy_h2d(tb, t);
        let len_bytes: Vec<u8> = lens.iter().flat_map(|l| l.to_le_bytes()).collect();
        gpu.memcpy_h2d(lb, &len_bytes);
        gpu.run_kernel(
            k,
            LaunchDims::linear(1, 32),
            &[qb.0, tb.0, sb.0, n as u64, 0, 32, lb.0, ob.0, nb.0],
        );
        let scores: Vec<i64> = gpu
            .memcpy_d2h(sb, n * 8)
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let raw_ops = gpu.memcpy_d2h(ob, n * 2 * MAX_LEN as usize);
        let raw_lens = gpu.memcpy_d2h(nb, n * 4);
        let mut all_ops = Vec::new();
        for p in 0..n {
            let count =
                u32::from_le_bytes(raw_lens[p * 4..p * 4 + 4].try_into().expect("4B")) as usize;
            let base = p * 2 * MAX_LEN as usize;
            all_ops.push(raw_ops[base..base + count].to_vec());
        }
        (scores, all_ops)
    }

    fn cpu_column_ops(q: &[u8], t: &[u8]) -> (i64, Vec<u8>) {
        let subst = Simple::new(2, -3);
        let gaps = GapModel::Affine { open: 5, extend: 2 };
        let aln = nw_align(q, t, &subst, gaps);
        let mut ops = Vec::new();
        for &(op, count) in &aln.cigar {
            let code = match op {
                CigarOp::Match => OP_MATCH,
                CigarOp::Ins => OP_INS,
                CigarOp::Del => OP_DEL,
            };
            ops.extend(std::iter::repeat_n(code, count as usize));
        }
        (aln.score as i64, ops)
    }

    fn make_workload(n: usize, seed: u64) -> (Vec<u8>, Vec<u8>, Vec<u32>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut q = vec![0u8; n * MAX_LEN as usize];
        let mut t = vec![0u8; n * MAX_LEN as usize];
        let mut lens = Vec::new();
        for p in 0..n {
            use rand::Rng;
            let len = rng.gen_range(4..=MAX_LEN) as usize;
            let qs = random_genome(len, &mut rng);
            let ts = mutate(&qs, 0.15, 0.1, &mut rng);
            let tl = ts.len().min(len);
            q[p * MAX_LEN as usize..p * MAX_LEN as usize + len].copy_from_slice(qs.codes());
            t[p * MAX_LEN as usize..p * MAX_LEN as usize + tl].copy_from_slice(&ts.codes()[..tl]);
            lens.push(len as u32);
        }
        (q, t, lens)
    }

    #[test]
    fn traceback_matches_cpu_cigar_exactly() {
        for seed in [1u64, 2, 3] {
            let (q, t, lens) = make_workload(24, seed);
            let (scores, ops) = run_traceback(&q, &t, &lens);
            for (p, &len) in lens.iter().enumerate() {
                let base = p * MAX_LEN as usize;
                let (want_score, want_ops) =
                    cpu_column_ops(&q[base..base + len as usize], &t[base..base + len as usize]);
                assert_eq!(scores[p], want_score, "seed {seed} pair {p}: score");
                assert_eq!(ops[p], want_ops, "seed {seed} pair {p}: ops");
            }
        }
    }

    #[test]
    fn identical_pair_is_all_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let s = random_genome(MAX_LEN as usize, &mut rng);
        let mut q = vec![0u8; MAX_LEN as usize];
        q.copy_from_slice(s.codes());
        let (scores, ops) = run_traceback(&q, &q.clone(), &[MAX_LEN]);
        assert_eq!(scores[0], 2 * MAX_LEN as i64);
        assert_eq!(ops[0], vec![OP_MATCH; MAX_LEN as usize]);
    }

    #[test]
    fn ops_consume_both_sequences() {
        let (q, t, lens) = make_workload(16, 42);
        let (_, ops) = run_traceback(&q, &t, &lens);
        for (p, &len) in lens.iter().enumerate() {
            let consumed_q = ops[p].iter().filter(|&&o| o != OP_DEL).count();
            let consumed_t = ops[p].iter().filter(|&&o| o != OP_INS).count();
            assert_eq!(consumed_q, len as usize, "pair {p} query");
            assert_eq!(consumed_t, len as usize, "pair {p} target");
        }
    }
}

#[cfg(test)]
mod bench_tests {
    use super::*;
    use ggpu_sim::GpuConfig;

    #[test]
    fn traceback_bench_validates() {
        let b = TracebackBench::new(crate::Scale::Tiny);
        let r = b.run(&GpuConfig {
            n_sms: 8,
            ..GpuConfig::test_small()
        });
        assert!(r.verified, "{}", r.detail);
        assert!(r.kernel_cycles > 0);
    }
}
