//! Set-associative LRU cache with miss-status holding registers.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::LINE_BYTES;

/// Trivial multiplicative hasher for line-address keys. Line addresses are
/// already well-distributed `u64`s, so one Fibonacci-style multiply beats the
/// default SipHash on the per-access MSHR probe without any new dependency.
/// Only membership is ever queried (never iteration order), so the hasher
/// cannot affect determinism.
#[derive(Debug, Default, Clone)]
pub(crate) struct LineAddrHasher(u64);

impl Hasher for LineAddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// O(1) keyed MSHR tag store (line address → outstanding miss).
type MshrSet = HashSet<u64, BuildHasherDefault<LineAddrHasher>>;

/// Write-handling policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Writes go straight to the next level and do not allocate on miss
    /// (NVIDIA-style L1 behaviour for global stores).
    WriteThrough,
    /// Writes allocate and dirty the line; evictions of dirty lines produce
    /// writebacks (L2 behaviour).
    WriteBack,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. A capacity of zero disables the cache
    /// (every access misses straight through).
    pub bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Number of MSHR entries (distinct outstanding miss lines).
    pub mshr_entries: u32,
}

impl CacheConfig {
    /// Convenience constructor with 128-byte lines.
    pub fn new(bytes: u64, ways: u32, write_policy: WritePolicy) -> Self {
        CacheConfig {
            bytes,
            ways,
            line: LINE_BYTES,
            write_policy,
            mshr_entries: 64,
        }
    }

    /// Number of sets implied by the geometry (at least 1 when enabled).
    pub fn sets(&self) -> u64 {
        if self.bytes == 0 {
            0
        } else {
            (self.bytes / (self.ways as u64 * self.line)).max(1)
        }
    }
}

/// Outcome of a timing access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Data present; access completes at this level.
    Hit,
    /// Line absent; a fill request must be sent to the next level. If the
    /// victim was dirty its line address is returned for writeback.
    Miss {
        /// Dirty victim line address needing writeback, if any.
        writeback: Option<u64>,
    },
    /// Line absent but an MSHR for it is already outstanding; the access is
    /// merged and no new request goes to the next level.
    MshrMerged,
    /// The MSHR file is full; the access cannot be processed this cycle and
    /// the requester must retry (a structural stall).
    ReservationFail,
    /// Write-through store on a write-through cache: forwarded to the next
    /// level without allocation (counted as neither hit nor demand miss).
    Bypass,
}

/// Hit/miss counters, split by read/write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub read_access: u64,
    /// Read hits.
    pub read_hit: u64,
    /// Write accesses.
    pub write_access: u64,
    /// Write hits.
    pub write_hit: u64,
    /// Misses merged into an existing MSHR.
    pub mshr_merged: u64,
    /// Accesses rejected because the MSHR file was full.
    pub reservation_fails: u64,
    /// Dirty evictions (writebacks generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total demand accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.read_access + self.write_access
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hit + self.write_hit
    }

    /// Miss rate over all demand accesses, in `[0, 1]`; zero when idle.
    pub fn miss_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            1.0 - self.hits() as f64 / acc as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A set-associative, LRU, write-through or write-back cache with MSHRs.
///
/// The cache is a pure timing model: [`Cache::access`] classifies an access
/// and [`Cache::fill`] installs a line when the lower level responds.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u64,
    lines: Vec<LineState>,
    /// Outstanding miss line addresses (tag-array side of the MSHR file),
    /// keyed for O(1) merge probes and fill releases.
    mshrs: MshrSet,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Build a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![
                LineState {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_use: 0,
                };
                (sets * config.ways as u64) as usize
            ],
            mshrs: MshrSet::default(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (e.g. between kernels), keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidate all lines and clear MSHRs (used between kernel launches to
    /// model the locality loss the paper attributes to `cudaMemcpy`
    /// boundaries).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
        self.mshrs.clear();
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.config.line
    }

    /// Classify an access to `addr`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        if self.config.bytes == 0 {
            // Disabled cache: everything misses through, nothing tracked.
            if is_write {
                self.stats.write_access += 1;
            } else {
                self.stats.read_access += 1;
            }
            return CacheOutcome::Miss { writeback: None };
        }
        let laddr = self.line_addr(addr);
        let set = laddr % self.sets;
        let ways = self.config.ways as u64;
        let base = (set * ways) as usize;
        let tag = laddr / self.sets;

        if is_write {
            self.stats.write_access += 1;
        } else {
            self.stats.read_access += 1;
        }

        // Lookup.
        for i in 0..ways as usize {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                if is_write {
                    self.stats.write_hit += 1;
                    match self.config.write_policy {
                        WritePolicy::WriteBack => line.dirty = true,
                        WritePolicy::WriteThrough => {}
                    }
                } else {
                    self.stats.read_hit += 1;
                }
                return CacheOutcome::Hit;
            }
        }

        // Write-through caches forward write misses without allocating.
        if is_write && self.config.write_policy == WritePolicy::WriteThrough {
            return CacheOutcome::Bypass;
        }

        // Miss: merge into an outstanding MSHR when possible.
        if self.mshrs.contains(&laddr) {
            self.stats.mshr_merged += 1;
            return CacheOutcome::MshrMerged;
        }
        if self.mshrs.len() >= self.config.mshr_entries as usize {
            self.stats.reservation_fails += 1;
            return CacheOutcome::ReservationFail;
        }
        self.mshrs.insert(laddr);

        // Choose a victim now so a dirty writeback can be reported with the
        // miss (the line itself is installed by `fill`).
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in 0..ways as usize {
            let line = &self.lines[base + i];
            if !line.valid {
                victim = base + i;
                break;
            }
            if line.last_use < oldest {
                oldest = line.last_use;
                victim = base + i;
            }
        }
        let wb = {
            let line = &mut self.lines[victim];
            let wb = if line.valid && line.dirty {
                self.stats.writebacks += 1;
                Some((line.tag * self.sets + set) * self.config.line)
            } else {
                None
            };
            // Reserve the way immediately (tag update; becomes valid on fill).
            line.tag = tag;
            line.valid = false;
            line.dirty = false;
            line.last_use = self.tick;
            wb
        };
        CacheOutcome::Miss { writeback: wb }
    }

    /// Install the line containing `addr` (response from the lower level)
    /// and release its MSHR. Marks the line dirty when `dirty` is set
    /// (write-allocate fills).
    pub fn fill(&mut self, addr: u64, dirty: bool) {
        if self.config.bytes == 0 {
            return;
        }
        self.tick += 1;
        let laddr = self.line_addr(addr);
        self.mshrs.remove(&laddr);
        let set = laddr % self.sets;
        let ways = self.config.ways as u64;
        let base = (set * ways) as usize;
        let tag = laddr / self.sets;
        // Prefer the way reserved at miss time.
        for i in 0..ways as usize {
            let line = &mut self.lines[base + i];
            if line.tag == tag && !line.valid {
                line.valid = true;
                line.dirty = dirty;
                line.last_use = self.tick;
                return;
            }
        }
        // Reservation was overwritten by a later miss to the same set; fall
        // back to LRU install.
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in 0..ways as usize {
            let line = &self.lines[base + i];
            if !line.valid {
                victim = base + i;
                break;
            }
            if line.last_use < oldest {
                oldest = line.last_use;
                victim = base + i;
            }
        }
        let line = &mut self.lines[victim];
        line.tag = tag;
        line.valid = true;
        line.dirty = dirty;
        line.last_use = self.tick;
    }

    /// Number of outstanding MSHR entries.
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(policy: WritePolicy) -> Cache {
        // 2 sets x 2 ways x 128B lines = 512B.
        Cache::new(CacheConfig {
            bytes: 512,
            ways: 2,
            line: 128,
            write_policy: policy,
            mshr_entries: 4,
        })
    }

    #[test]
    fn sets_geometry() {
        assert_eq!(
            CacheConfig::new(128 * 1024, 256, WritePolicy::WriteThrough).sets(),
            4
        );
        assert_eq!(CacheConfig::new(0, 4, WritePolicy::WriteBack).sets(), 0);
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small_cache(WritePolicy::WriteBack);
        assert!(matches!(
            c.access(0, false),
            CacheOutcome::Miss { writeback: None }
        ));
        c.fill(0, false);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert_eq!(c.access(64, false), CacheOutcome::Hit); // same line
        assert_eq!(c.stats().read_hit, 2);
        assert!((c.stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mshr_merges_and_fills_release() {
        let mut c = small_cache(WritePolicy::WriteBack);
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.access(32, false), CacheOutcome::MshrMerged);
        assert_eq!(c.outstanding(), 1);
        c.fill(0, false);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
    }

    #[test]
    fn mshr_capacity_reservation_fail() {
        let mut c = small_cache(WritePolicy::WriteBack);
        // 4 distinct lines fill the MSHR file.
        for i in 0..4u64 {
            assert!(matches!(
                c.access(i * 128, false),
                CacheOutcome::Miss { .. }
            ));
        }
        assert_eq!(c.access(4 * 128, false), CacheOutcome::ReservationFail);
        assert_eq!(c.stats().reservation_fails, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(WritePolicy::WriteBack);
        // Set 0 is lines with (line_addr % 2 == 0): addrs 0, 256, 512.
        c.access(0, false);
        c.fill(0, false);
        c.access(256, false);
        c.fill(256, false);
        // Touch 0 so 256 is LRU.
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        c.access(512, false);
        c.fill(512, false);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert!(matches!(c.access(256, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = small_cache(WritePolicy::WriteBack);
        c.access(0, true);
        c.fill(0, true); // dirty fill (write-allocate)
        c.access(256, false);
        c.fill(256, false);
        // Evict line 0 (LRU) with a third line in set 0.
        match c.access(512, false) {
            CacheOutcome::Miss { writeback: Some(a) } => assert_eq!(a, 0),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_bypasses_write_misses() {
        let mut c = small_cache(WritePolicy::WriteThrough);
        assert_eq!(c.access(0, true), CacheOutcome::Bypass);
        // No allocation happened.
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
        // But write hits are possible once the line is resident.
        c.fill(0, false);
        assert_eq!(c.access(0, true), CacheOutcome::Hit);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = Cache::new(CacheConfig::new(0, 1, WritePolicy::WriteThrough));
        for i in 0..10 {
            assert!(matches!(c.access(i * 4, false), CacheOutcome::Miss { .. }));
        }
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn mshr_keyed_lookup_preserves_alloc_merge_release() {
        // Exercises the keyed MSHR store through an interleaved
        // alloc/merge/release sequence and checks it is observationally
        // identical to the linear-scan file it replaced: first touch of a
        // line allocates, later touches merge, capacity gates allocations
        // (merges still succeed at capacity), and fills release exactly
        // their own line regardless of alloc/fill ordering.
        let mut c = small_cache(WritePolicy::WriteBack);
        for i in 0..4u64 {
            assert!(matches!(
                c.access(i * 128, false),
                CacheOutcome::Miss { .. }
            ));
            assert_eq!(c.access(i * 128 + 32, false), CacheOutcome::MshrMerged);
        }
        assert_eq!(c.outstanding(), 4);
        // At capacity: a new line fails reservation, existing lines merge.
        assert_eq!(c.access(4 * 128, false), CacheOutcome::ReservationFail);
        assert_eq!(c.access(2 * 128 + 64, false), CacheOutcome::MshrMerged);
        // Out-of-order fills release the matching entry only.
        c.fill(2 * 128, false);
        assert_eq!(c.outstanding(), 3);
        assert_eq!(c.access(2 * 128, false), CacheOutcome::Hit);
        // The freed entry is reusable by the line that failed before.
        assert!(matches!(
            c.access(4 * 128, false),
            CacheOutcome::Miss { .. }
        ));
        assert_eq!(c.outstanding(), 4);
        // Releasing a line never filled while outstanding is a no-op for
        // the other entries.
        c.fill(0, false);
        c.fill(128, false);
        c.fill(3 * 128, false);
        c.fill(4 * 128, false);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.stats().mshr_merged, 5);
        assert_eq!(c.stats().reservation_fails, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small_cache(WritePolicy::WriteBack);
        c.access(0, false);
        c.fill(0, false);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        c.flush();
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
    }
}
