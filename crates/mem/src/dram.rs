//! DRAM channel model with open-row tracking and pluggable request
//! schedulers (Figures 16-18 of the paper).

use std::collections::VecDeque;

/// Request scheduling discipline of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramScheduler {
    /// First-ready, first-come-first-serve: row hits first, then oldest.
    /// Scans the whole queue (the paper's baseline, queue-limited).
    FrFcfs,
    /// Strict in-order service of the queue head.
    Fifo,
    /// FR-FCFS over a reorder window of the given number of oldest entries
    /// (the paper's "OoO 128" uses 128).
    OoO(u32),
}

/// DRAM channel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Column-access latency (cycles) for a row hit.
    pub t_cl: u64,
    /// Precharge latency (cycles).
    pub t_rp: u64,
    /// Activate latency (cycles).
    pub t_rcd: u64,
    /// Data-burst occupancy of the channel pins per request (cycles).
    pub burst: u64,
    /// Scheduler discipline.
    pub scheduler: DramScheduler,
    /// Request queue capacity; pushes beyond this are rejected (back-pressure).
    pub queue_size: usize,
}

impl Default for DramConfig {
    /// GDDR6-flavoured defaults used by the RTX 3070 baseline.
    fn default() -> Self {
        DramConfig {
            banks: 16,
            row_bytes: 2048,
            t_cl: 20,
            t_rp: 20,
            t_rcd: 20,
            burst: 4,
            scheduler: DramScheduler::FrFcfs,
            queue_size: 32,
        }
    }
}

/// Counters behind the paper's DRAM efficiency (Fig 17) and utilization
/// (Fig 18) metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Cycles the data pins were transferring data.
    pub data_cycles: u64,
    /// Cycles the controller had pending or in-flight requests.
    pub active_cycles: u64,
    /// Requests rejected due to a full queue.
    pub rejected: u64,
}

impl DramStats {
    /// DRAM efficiency: data-pin cycles over controller-active cycles
    /// (Fig 17). Zero when never active.
    pub fn efficiency(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.data_cycles as f64 / self.active_cycles as f64
        }
    }

    /// DRAM utilization: data-pin cycles over `total_cycles` of the kernel
    /// (Fig 18).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.data_cycles as f64 / total_cycles as f64
        }
    }

    /// Row-hit rate over serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    id: u64,
    addr: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

/// One DRAM channel: a request queue, per-bank row state, and a shared data
/// bus. [`Dram::tick`] issues at most one request per cycle and returns
/// `(id, completion_cycle)` pairs as requests finish.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    queue: Vec<PendingReq>,
    /// Overflow backlog: requests accepted by [`Dram::enqueue`] while the
    /// scheduler queue was full, replayed in arrival order as space opens.
    overflow: VecDeque<PendingReq>,
    banks: Vec<Bank>,
    bus_free_at: u64,
    /// (id, done_at) of requests issued but not yet reported complete.
    in_flight: Vec<(u64, u64)>,
    stats: DramStats,
    /// Per-bank (requests serviced, row hits) — the profiler's spatial
    /// attribution axis. Always maintained; two counter increments per
    /// serviced request.
    bank_stats: Vec<(u64, u64)>,
}

impl Dram {
    /// Build a channel from its configuration.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            queue: Vec::new(),
            overflow: VecDeque::new(),
            banks: vec![
                Bank {
                    open_row: None,
                    ready_at: 0,
                };
                config.banks as usize
            ],
            bus_free_at: 0,
            in_flight: Vec::new(),
            stats: DramStats::default(),
            bank_stats: vec![(0, 0); config.banks as usize],
        }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Reset statistics, keeping open-row state.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        for b in &mut self.bank_stats {
            *b = (0, 0);
        }
    }

    /// Per-bank `(requests, row_hits)` counters, indexed by bank. Summed
    /// over banks they reproduce the channel's aggregate `requests` and
    /// `row_hits`.
    pub fn bank_stats(&self) -> &[(u64, u64)] {
        &self.bank_stats
    }

    /// True when the channel has no queued, backlogged, or in-flight
    /// requests.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.overflow.is_empty() && self.in_flight.is_empty()
    }

    /// Current channel occupancy: queued, backlogged, plus in-flight
    /// requests (deadlock diagnostics).
    pub fn queue_depth(&self) -> usize {
        self.queue.len() + self.overflow.len() + self.in_flight.len()
    }

    /// Enqueue a request, never refusing it: when the scheduler queue is
    /// full the request parks in an internal overflow backlog and is
    /// replayed (in arrival order) as space opens on later ticks. This is
    /// the port the simulator's memory partitions feed.
    pub fn enqueue(&mut self, id: u64, addr: u64, now: u64) {
        if !self.push(id, addr, now) {
            self.overflow.push_back(PendingReq { id, addr });
        }
    }

    /// Drop the overflow backlog (device halt): backlogged requests never
    /// reached the scheduler queue and their waiters are gone.
    pub fn clear_overflow(&mut self) {
        self.overflow.clear();
    }

    /// Precharge every bank (close all open rows). Used at canonical kernel
    /// boundaries so the row-buffer state a grid starts from never depends
    /// on what ran before it. Only meaningful on an idle channel — by then
    /// every `ready_at` and the bus have already expired, so forgetting the
    /// open rows is the channel's entire residual state.
    pub fn close_rows(&mut self) {
        debug_assert!(self.is_idle(), "close_rows on a busy channel");
        for b in &mut self.banks {
            b.open_row = None;
        }
    }

    /// Enqueue a request; returns `false` (and counts a rejection) when the
    /// queue is full, in which case the caller must retry later.
    pub fn push(&mut self, id: u64, addr: u64, now: u64) -> bool {
        if self.queue.len() >= self.config.queue_size {
            self.stats.rejected += 1;
            return false;
        }
        let _ = now;
        self.queue.push(PendingReq { id, addr });
        true
    }

    #[inline]
    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.config.row_bytes;
        (
            (row_global % self.config.banks as u64) as usize,
            row_global / self.config.banks as u64,
        )
    }

    /// Advance one cycle: possibly issue one queued request, and return the
    /// ids of requests whose data has fully transferred by `now`.
    pub fn tick(&mut self, now: u64) -> Vec<u64> {
        // Replay the overflow backlog while the scheduler queue has space
        // (each refused replay still counts as a rejection, like any push).
        while let Some(&PendingReq { id, addr }) = self.overflow.front() {
            if self.push(id, addr, now) {
                self.overflow.pop_front();
            } else {
                break;
            }
        }

        if !self.queue.is_empty() || !self.in_flight.is_empty() || self.bus_free_at > now {
            self.stats.active_cycles += 1;
        }

        // Issue at most one request per cycle when the bus can accept it.
        if !self.queue.is_empty() && self.bus_free_at <= now {
            if let Some(idx) = self.pick(now) {
                let req = self.queue.remove(idx);
                let (bank_idx, row) = self.bank_and_row(req.addr);
                let bank = &mut self.banks[bank_idx];
                let row_hit = bank.open_row == Some(row);
                let latency = if row_hit {
                    self.config.t_cl
                } else if bank.open_row.is_some() {
                    self.config.t_rp + self.config.t_rcd + self.config.t_cl
                } else {
                    self.config.t_rcd + self.config.t_cl
                };
                bank.open_row = Some(row);
                let start = now.max(bank.ready_at);
                let data_start = start + latency;
                let done = data_start + self.config.burst;
                bank.ready_at = done;
                self.bus_free_at = done;
                self.stats.requests += 1;
                self.bank_stats[bank_idx].0 += 1;
                if row_hit {
                    self.stats.row_hits += 1;
                    self.bank_stats[bank_idx].1 += 1;
                }
                self.stats.data_cycles += self.config.burst;
                self.in_flight.push((req.id, done));
            }
        }

        // Harvest completions.
        let mut done = Vec::new();
        self.in_flight.retain(|&(id, t)| {
            if t <= now {
                done.push(id);
                false
            } else {
                true
            }
        });
        done
    }

    /// Conservative next cycle (≥ `c0`) at which [`Dram::tick`] could do
    /// observable work: issue a queued request once the bus frees, harvest
    /// an in-flight completion, or replay the overflow backlog. Returns
    /// `u64::MAX` when the channel has nothing scheduled.
    ///
    /// Used by the engine's idle-cycle fast-forward: every tick strictly
    /// before the returned cycle only increments `active_cycles`, which
    /// [`Dram::skip_cycles`] credits exactly.
    pub fn next_event_cycle(&self, c0: u64) -> u64 {
        if !self.overflow.is_empty() {
            // Backlog replay (and its per-tick rejection accounting when the
            // queue stays full) happens every cycle: never skip over it.
            return c0;
        }
        let mut t = u64::MAX;
        if !self.queue.is_empty() {
            t = t.min(self.bus_free_at.max(c0));
        }
        if let Some(done) = self.in_flight.iter().map(|&(_, d)| d).min() {
            t = t.min(done.max(c0));
        }
        t
    }

    /// Credit `span` fast-forwarded cycles starting at `c0` as if
    /// [`Dram::tick`] had run each one. Sound only when the engine has
    /// proven `next_event_cycle(c0) > c0 + span - 1`: then each skipped
    /// tick would only have evaluated the active-cycle condition, whose
    /// terms are all constant (or expire at a known cycle) over the span.
    pub fn skip_cycles(&mut self, c0: u64, span: u64) {
        debug_assert!(self.overflow.is_empty(), "skipped over a backlog replay");
        if !self.queue.is_empty() || !self.in_flight.is_empty() {
            self.stats.active_cycles += span;
        } else {
            // Idle channel still counts active while the bus drains.
            self.stats.active_cycles += span.min(self.bus_free_at.saturating_sub(c0));
        }
    }

    /// Choose the next request index according to the scheduler.
    fn pick(&self, _now: u64) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        let window = match self.config.scheduler {
            DramScheduler::Fifo => 1,
            DramScheduler::FrFcfs => self.queue.len(),
            DramScheduler::OoO(n) => (n as usize).min(self.queue.len()),
        };
        // Queue is kept in arrival order; consider the oldest `window`.
        let mut best: Option<usize> = None;
        for i in 0..window {
            let (bank_idx, row) = self.bank_and_row(self.queue[i].addr);
            let bank = &self.banks[bank_idx];
            if bank.open_row == Some(row) {
                // Oldest row hit wins immediately under FR-FCFS.
                return Some(i);
            }
            if best.is_none() {
                best = Some(i);
            }
        }
        // No row hit in the window: oldest request.
        best.or(Some(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(dram: &mut Dram, until: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        for t in 0..until {
            for id in dram.tick(t) {
                done.push((id, t));
            }
        }
        done
    }

    #[test]
    fn single_request_latency_components() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        assert!(d.push(1, 0, 0));
        let done = drain(&mut d, 200);
        assert_eq!(done.len(), 1);
        // Cold bank: tRCD + tCL + burst = 20+20+4 = 44, issued at cycle 0.
        assert_eq!(done[0].1, 44);
        assert!(d.is_idle());
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let cfg = DramConfig::default();
        // Same row twice.
        let mut d = Dram::new(cfg);
        d.push(1, 0, 0);
        d.push(2, 64, 0);
        let done = drain(&mut d, 400);
        let t_same = done[1].1 - done[0].1;

        // Two different rows in the same bank: row * banks * row_bytes apart.
        let mut d2 = Dram::new(cfg);
        d2.push(1, 0, 0);
        d2.push(2, cfg.row_bytes * cfg.banks as u64, 0);
        let done2 = drain(&mut d2, 800);
        let t_conflict = done2[1].1 - done2[0].1;
        assert!(
            t_conflict > t_same,
            "conflict {t_conflict} should exceed row-hit {t_same}"
        );
    }

    #[test]
    fn frfcfs_prefers_row_hits_fifo_does_not() {
        let cfg = DramConfig::default();
        // Open row 0 of bank 0, then queue a conflicting row and a row hit.
        let conflict_addr = cfg.row_bytes * cfg.banks as u64; // bank 0, row 1
        let mut fr = Dram::new(DramConfig {
            scheduler: DramScheduler::FrFcfs,
            ..cfg
        });
        fr.push(0, 0, 0);
        let _ = drain(&mut fr, 100);
        fr.push(1, conflict_addr, 100);
        fr.push(2, 64, 100); // row hit on open row 0
        let mut done = Vec::new();
        for t in 100..600 {
            for id in fr.tick(t) {
                done.push(id);
            }
        }
        assert_eq!(done, vec![2, 1], "FR-FCFS services the row hit first");

        let mut fifo = Dram::new(DramConfig {
            scheduler: DramScheduler::Fifo,
            ..cfg
        });
        fifo.push(0, 0, 0);
        let _ = drain(&mut fifo, 100);
        fifo.push(1, conflict_addr, 100);
        fifo.push(2, 64, 100);
        let mut done = Vec::new();
        for t in 100..600 {
            for id in fifo.tick(t) {
                done.push(id);
            }
        }
        assert_eq!(done, vec![1, 2], "FIFO services in arrival order");
    }

    #[test]
    fn enqueue_overflow_replays_in_order() {
        let mut d = Dram::new(DramConfig {
            queue_size: 2,
            ..DramConfig::default()
        });
        for i in 0..6u64 {
            d.enqueue(i, i * 64, 0);
        }
        assert!(!d.is_idle());
        assert_eq!(d.queue_depth(), 6);
        assert_eq!(d.stats().rejected, 4, "overflowed pushes count rejections");
        let done = drain(&mut d, 2_000);
        assert_eq!(done.len(), 6, "backlogged requests are eventually served");
        assert!(d.is_idle());
    }

    #[test]
    fn clear_overflow_drops_backlog_only() {
        let mut d = Dram::new(DramConfig {
            queue_size: 1,
            ..DramConfig::default()
        });
        d.enqueue(0, 0, 0);
        d.enqueue(1, 64, 0);
        assert_eq!(d.queue_depth(), 2);
        d.clear_overflow();
        assert_eq!(d.queue_depth(), 1);
        let done = drain(&mut d, 500);
        assert_eq!(done.len(), 1);
        assert!(d.is_idle());
    }

    #[test]
    fn close_rows_forgets_open_row_state() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Open row 0 of bank 0, then measure a same-row access: a row hit.
        d.push(0, 0, 0);
        let _ = drain(&mut d, 100);
        assert!(d.is_idle());
        d.push(1, 64, 100);
        let mut done = Vec::new();
        for t in 100..300 {
            for id in d.tick(t) {
                done.push((id, t));
            }
        }
        let t_hit = done[0].1 - 100;

        // Same sequence, but the rows are closed between the two accesses:
        // the second access now pays the activate latency again.
        let mut d2 = Dram::new(cfg);
        d2.push(0, 0, 0);
        let _ = drain(&mut d2, 100);
        d2.close_rows();
        d2.push(1, 64, 100);
        let mut done2 = Vec::new();
        for t in 100..300 {
            for id in d2.tick(t) {
                done2.push((id, t));
            }
        }
        let t_closed = done2[0].1 - 100;
        assert!(
            t_closed > t_hit,
            "closed-row access ({t_closed}) must be slower than a row hit ({t_hit})"
        );
        assert_eq!(t_closed - t_hit, cfg.t_rcd, "difference is the activate");
    }

    #[test]
    fn queue_backpressure() {
        let mut d = Dram::new(DramConfig {
            queue_size: 2,
            ..DramConfig::default()
        });
        assert!(d.push(0, 0, 0));
        assert!(d.push(1, 128, 0));
        assert!(!d.push(2, 256, 0));
        assert_eq!(d.stats().rejected, 1);
    }

    #[test]
    fn efficiency_and_utilization_counters() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        d.push(1, 0, 0);
        d.push(2, 64, 0);
        let _ = drain(&mut d, 300);
        let s = *d.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.data_cycles, 2 * cfg.burst);
        assert!(s.efficiency() > 0.0 && s.efficiency() <= 1.0);
        assert!(s.utilization(300) > 0.0 && s.utilization(300) < s.efficiency());
        assert_eq!(s.row_hit_rate(), 0.5);
    }

    #[test]
    fn bank_stats_telescope_to_channel_totals() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Bank 0 twice (second is a row hit) and bank 1 once.
        d.push(1, 0, 0);
        d.push(2, 64, 0);
        d.push(3, cfg.row_bytes, 0);
        let _ = drain(&mut d, 500);
        let s = *d.stats();
        assert_eq!(s.requests, 3);
        let (req_sum, hit_sum) = d
            .bank_stats()
            .iter()
            .fold((0, 0), |(r, h), &(br, bh)| (r + br, h + bh));
        assert_eq!(req_sum, s.requests);
        assert_eq!(hit_sum, s.row_hits);
        assert_eq!(d.bank_stats()[0], (2, 1));
        assert_eq!(d.bank_stats()[1].0, 1);
        d.reset_stats();
        assert_eq!(d.bank_stats()[0], (0, 0));
    }

    #[test]
    fn ooo_window_bounds_reordering() {
        let cfg = DramConfig::default();
        // Open bank0/row0; then queue [conflict, hit]; with window=1 the
        // scheduler behaves like FIFO and cannot see the hit.
        let conflict_addr = cfg.row_bytes * cfg.banks as u64;
        let mut d = Dram::new(DramConfig {
            scheduler: DramScheduler::OoO(1),
            ..cfg
        });
        d.push(0, 0, 0);
        let _ = drain(&mut d, 100);
        d.push(1, conflict_addr, 100);
        d.push(2, 64, 100);
        let mut done = Vec::new();
        for t in 100..700 {
            for id in d.tick(t) {
                done.push(id);
            }
        }
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn fast_forward_matches_per_tick_accounting() {
        let cfg = DramConfig::default();
        let mut per_tick = Dram::new(cfg);
        let mut skipping = Dram::new(cfg);
        for d in [&mut per_tick, &mut skipping] {
            d.push(1, 0, 0);
            d.push(2, cfg.row_bytes, 0);
            d.push(3, cfg.row_bytes * cfg.banks as u64, 0);
        }
        let mut done_a = Vec::new();
        for t in 0..300 {
            for id in per_tick.tick(t) {
                done_a.push((id, t));
            }
        }
        // Skipping run: tick only at event cycles, credit the gaps.
        let mut done_b = Vec::new();
        let mut now = 0u64;
        while now < 300 {
            for id in skipping.tick(now) {
                done_b.push((id, now));
            }
            let c0 = now + 1;
            let target = skipping.next_event_cycle(c0).min(300);
            if target > c0 {
                skipping.skip_cycles(c0, target - c0);
                now = target;
            } else {
                now = c0;
            }
        }
        assert_eq!(done_a, done_b, "completions must not shift");
        assert_eq!(per_tick.stats(), skipping.stats());
        assert_eq!(per_tick.bank_stats(), skipping.bank_stats());
    }

    #[test]
    fn banks_overlap_but_bus_serializes_data() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Two different banks (consecutive rows map to consecutive banks).
        d.push(1, 0, 0);
        d.push(2, cfg.row_bytes, 0);
        let done = drain(&mut d, 400);
        assert_eq!(done.len(), 2);
        // Second completes at least one burst after the first.
        assert!(done[1].1 >= done[0].1 + cfg.burst);
    }
}
