//! # ggpu-mem — cache hierarchy and DRAM models
//!
//! Timing models for the Genomics-GPU simulator's memory system:
//!
//! * [`Cache`] — a set-associative, LRU cache with MSHRs, used for the
//!   per-SM L1 data cache, the constant cache, the texture cache, and the
//!   per-partition L2 slices. Configurations mirror Table I of the paper
//!   (e.g. `128KB, 256-way, 128B lines` for L1).
//! * [`Dram`] — a multi-bank DRAM channel with open-row tracking and three
//!   schedulers ([`DramScheduler::FrFcfs`], [`DramScheduler::Fifo`],
//!   [`DramScheduler::OoO`]) matching the paper's Figure 16 sweep, plus the
//!   efficiency/utilization counters behind Figures 17 and 18.
//!
//! These models are *timing only*: functional data lives in the simulator's
//! flat memory image. A cache tracks tags, an MSHR merges outstanding
//! misses, and DRAM returns completion timestamps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dram;

pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats, WritePolicy};
pub use dram::{Dram, DramConfig, DramScheduler, DramStats};

/// Line size shared by every cache level, per Table I (128-byte lines).
pub const LINE_BYTES: u64 = 128;

/// Memory-transaction granularity of coalesced accesses (one 32-byte
/// sector), matching NVIDIA's 32B sectors.
pub const SECTOR_BYTES: u64 = 32;
