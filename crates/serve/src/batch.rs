//! Fused batches: encoding jobs into device slabs and decoding results.
//!
//! A batch is a set of same-shape jobs fused into one grid. Encoding pads
//! every sequence to the shape's fixed stride; padding symbols are chosen
//! so they can never score (query pads `4` vs target pads `5` never
//! match, and never match real `0..4` base codes either), which leaves
//! local-alignment optima untouched.

use crate::job::{JobKind, JobOutput};
use crate::queue::QueuedJob;
use crate::shape::ShapeKey;

/// Pad symbol for queries/reads (outside the `0..4` base alphabet).
const PAD_Q: u8 = 4;
/// Pad symbol for targets — distinct from [`PAD_Q`] so pad columns always
/// mismatch.
const PAD_T: u8 = 5;

/// A unit of device work: same-shape jobs that share one fused grid,
/// with its retry state.
#[derive(Debug)]
pub(crate) struct Batch {
    /// Service-unique batch id (telemetry join key; split halves get
    /// fresh ids).
    pub(crate) id: u64,
    /// The common shape (every member classifies to this key).
    pub(crate) shape: ShapeKey,
    /// Members, in admission order.
    pub(crate) jobs: Vec<QueuedJob>,
    /// Failed launches so far (0 for a fresh batch).
    pub(crate) attempts: u32,
    /// Earliest round this batch may be scheduled (backoff).
    pub(crate) not_before: u64,
}

impl Batch {
    pub(crate) fn new(id: u64, jobs: Vec<QueuedJob>) -> Self {
        debug_assert!(!jobs.is_empty());
        let shape = jobs[0].shape;
        debug_assert!(jobs.iter().all(|j| j.shape == shape));
        Batch {
            id,
            shape,
            jobs,
            attempts: 0,
            not_before: 0,
        }
    }

    /// The grid cycle budget: the tightest member budget, with `default`
    /// standing in for members that set none. `None` only when every
    /// effective budget is unbounded.
    pub(crate) fn cycle_budget(&self, default: Option<u64>) -> Option<u64> {
        self.jobs
            .iter()
            .filter_map(|j| j.spec.deadline.or(default))
            .min()
    }
}

/// Copy `src` into the next `stride`-sized lane of `dst`, padded with
/// `pad`.
fn pack(dst: &mut Vec<u8>, src: &[u8], stride: usize, pad: u8) {
    debug_assert!(src.len() <= stride);
    dst.extend_from_slice(src);
    dst.resize(dst.len() + (stride - src.len()), pad);
}

/// Encode a pairwise batch: strided query and target slabs plus the
/// per-pair length table (every pair runs the full padded stride, which
/// scores identically — pad columns cannot participate in any positive
/// local alignment).
pub(crate) fn encode_pairwise(jobs: &[QueuedJob], bucket: u32) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let stride = bucket as usize;
    let mut q = Vec::with_capacity(jobs.len() * stride);
    let mut t = Vec::with_capacity(jobs.len() * stride);
    let mut lens = Vec::with_capacity(jobs.len() * 4);
    for job in jobs {
        let JobKind::Pairwise { query, target } = &job.spec.kind else {
            unreachable!("shape-checked at admission");
        };
        pack(&mut q, query, stride, PAD_Q);
        pack(&mut t, target, stride, PAD_T);
        lens.extend_from_slice(&bucket.to_le_bytes());
    }
    (q, t, lens)
}

/// Encode an FM batch: reads, contiguous at the fixed read length.
pub(crate) fn encode_fm(jobs: &[QueuedJob]) -> Vec<u8> {
    let mut reads = Vec::new();
    for job in jobs {
        let JobKind::FmMap { read } = &job.spec.kind else {
            unreachable!("shape-checked at admission");
        };
        reads.extend_from_slice(read);
    }
    reads
}

/// Encode a Pair-HMM batch: reads, quals, and haplotypes, contiguous at
/// their fixed lengths.
pub(crate) fn encode_pairhmm(jobs: &[QueuedJob]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut reads = Vec::new();
    let mut quals = Vec::new();
    let mut haps = Vec::new();
    for job in jobs {
        let JobKind::PairHmm {
            read,
            quals: q,
            hap,
        } = &job.spec.kind
        else {
            unreachable!("shape-checked at admission");
        };
        reads.extend_from_slice(read);
        quals.extend_from_slice(q);
        haps.extend_from_slice(hap);
    }
    (reads, quals, haps)
}

/// Decode the result slab (one u64 word per job) into typed outputs.
pub(crate) fn decode(shape: ShapeKey, raw: &[u8]) -> Vec<JobOutput> {
    raw.chunks_exact(8)
        .map(|c| {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte result word"));
            match shape {
                ShapeKey::Pairwise { .. } => JobOutput::Score(word as i64),
                ShapeKey::Fm => JobOutput::Mapping {
                    score: (word >> 32) as u32,
                    pos: word as u32,
                },
                ShapeKey::PairHmm => {
                    let total = f64::from_bits(word);
                    JobOutput::LogLik(if total > 0.0 {
                        total.log10()
                    } else {
                        f64::NEG_INFINITY
                    })
                }
            }
        })
        .collect()
}
