//! Typed admission and service errors.
//!
//! Overload is a *first-class, typed* outcome: a saturated service answers
//! [`AdmitError::Overloaded`] with a retry hint instead of growing without
//! bound (and eventually dying on device OOM) or panicking.

use crate::job::Tenant;

/// Why a submission was refused at the door. None of these are sticky —
/// the service stays healthy and later submissions may succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The admission queue is full and the arrival did not outrank any
    /// queued job. Resubmit after roughly `retry_after_rounds` scheduling
    /// rounds.
    Overloaded {
        /// Estimated rounds until the backlog drains enough to admit.
        retry_after_rounds: u64,
    },
    /// The tenant already has `in_flight` jobs admitted against a quota of
    /// `quota`.
    QuotaExceeded {
        /// The tenant over quota.
        tenant: Tenant,
        /// Jobs currently admitted (queued or running) for the tenant.
        in_flight: usize,
        /// The per-tenant cap.
        quota: usize,
    },
    /// A sequence exceeds the largest configured shape bucket.
    TooLarge {
        /// Offending sequence length.
        len: usize,
        /// Largest length the service was built to serve.
        max: usize,
    },
    /// The job cannot be expressed in any configured kernel shape (wrong
    /// fixed length, mismatched read/qual lengths, service built without
    /// that pipeline, ...).
    UnsupportedShape {
        /// Human-readable reason.
        why: String,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded { retry_after_rounds } => write!(
                f,
                "service overloaded: retry after ~{retry_after_rounds} round(s)"
            ),
            AdmitError::QuotaExceeded {
                tenant,
                in_flight,
                quota,
            } => write!(
                f,
                "tenant {} quota exceeded: {in_flight} in flight, quota {quota}",
                tenant.0
            ),
            AdmitError::TooLarge { len, max } => {
                write!(f, "sequence too large: {len} bases, service max {max}")
            }
            AdmitError::UnsupportedShape { why } => write!(f, "unsupported job shape: {why}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A device-wide (default-stream) failure the service cannot recover from
/// by stream surgery. Service workers never touch the default stream, so
/// seeing one means the simulator itself is misbehaving.
#[derive(Debug, Clone)]
pub struct ServiceDead {
    /// The underlying device error, rendered.
    pub error: String,
}

impl std::fmt::Display for ServiceDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device-wide fault escaped stream isolation: {}",
            self.error
        )
    }
}

impl std::error::Error for ServiceDead {}
