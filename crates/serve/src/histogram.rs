//! Dependency-free log-bucketed latency histograms (HDR-style).
//!
//! Values are cycle counts. Buckets follow the classic HDR layout: 8
//! linear sub-buckets per power-of-two octave, so every bucket's width is
//! at most 12.5% of its lower bound and percentile readouts carry a
//! bounded relative error. Values below 8 get exact unit buckets.
//!
//! Everything here is integer arithmetic over deterministic cycle counts,
//! so recorded histograms are bit-identical at any `sim_threads`.

use ggpu_sim::json::JsonWriter;

/// Sub-bucket resolution: `1 << SUB_BITS` linear buckets per octave.
const SUB_BITS: u32 = 3;
/// Buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;

/// Bucket index for a value (total order, contiguous from 0).
fn index_of(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let block = (msb - SUB_BITS + 1) as u64;
    let sub = (v >> (msb - SUB_BITS)) & (SUBS - 1);
    (block * SUBS + sub) as usize
}

/// Inclusive lower bound of bucket `i`.
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBS {
        return i;
    }
    let block = i / SUBS;
    let sub = i % SUBS;
    (SUBS + sub) << (block - 1)
}

/// Inclusive upper bound of bucket `i`.
fn bucket_high(i: usize) -> u64 {
    let next = i + 1;
    // The last representable bucket tops out at u64::MAX (its successor's
    // lower bound would be 2^64).
    if (next as u64) / SUBS >= 62 {
        return u64::MAX;
    }
    bucket_low(next) - 1
}

/// A log-bucketed histogram over `u64` cycle counts.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the buckets;
/// percentiles are read from the bucket scan and clamped to `[min, max]`,
/// so the maximum relative error of any quantile is `1 / 2^SUB_BITS`
/// (12.5%).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket occupancy, indexed by [`index_of`]; grown lazily.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let i = index_of(v);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100): the upper bound of the bucket
    /// holding the `ceil(p/100 * count)`-th recorded value, clamped to
    /// `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Occupied buckets as `(low, high, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), bucket_high(i), n))
            .collect()
    }

    /// Serialize as a standalone JSON object: exact summary stats, the
    /// standard percentile ladder, and the occupied buckets.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("count", self.count)
            .u64("sum", self.sum)
            .u64("min", self.min())
            .u64("max", self.max())
            .u64("p50", self.percentile(50.0))
            .u64("p90", self.percentile(90.0))
            .u64("p99", self.percentile(99.0));
        w.begin_arr_key("buckets");
        for (low, high, n) in self.nonzero_buckets() {
            w.elem_raw(&format!("{{\"low\":{low},\"high\":{high},\"count\":{n}}}"));
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// The four per-request latency stages the service measures, each in
/// deterministic device cycles.
///
/// Stage definitions (all cycle timestamps read from [`ggpu_sim::Gpu::cycle`]):
///
/// * `queue_wait` — admission to first batch assignment. Recorded for
///   every job that reaches a batch.
/// * `batch_formation` — first batch assignment to first device launch.
///   Recorded for every job whose batch launches at least once.
/// * `device_exec` — kernel start to retire of the final successful grid,
///   joined through [`ggpu_sim::KernelRecord`]. Recorded for completed
///   jobs only.
/// * `e2e` — admission to terminal outcome. Recorded for **every**
///   admitted job, so its count telescopes exactly to
///   `completed + failed + deadline_exceeded + shed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Admission → first batch assignment.
    pub queue_wait: Histogram,
    /// First batch assignment → first launch.
    pub batch_formation: Histogram,
    /// Final grid start → retire (completed jobs).
    pub device_exec: Histogram,
    /// Admission → terminal outcome (every admitted job).
    pub e2e: Histogram,
}

impl LatencyStats {
    /// Serialize the four stage histograms as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.raw("queue_wait", &self.queue_wait.to_json())
            .raw("batch_formation", &self.batch_formation.to_json())
            .raw("device_exec", &self.device_exec.to_json())
            .raw("e2e", &self.e2e.to_json());
        w.end_obj();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_sim::json::Json;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value lands in exactly one bucket whose bounds contain it,
        // and indices are monotone in the value.
        let mut prev = 0usize;
        for v in (0..4096u64).chain([1 << 20, u64::MAX / 3, u64::MAX]) {
            let i = index_of(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
            assert!(i >= prev || v < 4096, "index must be monotone");
            if v < 4096 {
                prev = i;
            }
        }
        // Bucket bounds tile the u64 range without gaps.
        for i in 0..200 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap at {i}");
        }
    }

    #[test]
    fn small_values_are_exact_and_large_within_bound() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.min(), 0);
        let mut h = Histogram::new();
        h.record(1000);
        let p = h.percentile(50.0);
        // Within one sub-bucket (12.5%) — and clamped to max here.
        assert_eq!(p, 1000);
        h.record(3000);
        let p99 = h.percentile(99.0);
        assert!(p99 >= 3000 && (p99 - 3000) as f64 <= 0.125 * 3000.0);
    }

    #[test]
    fn merge_telescopes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 10_007;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.count(), 500);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of an empty histogram");
        }
        assert!(h.nonzero_buckets().is_empty());
        let v = Json::parse(&h.to_json()).expect("well-formed");
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = Histogram::new();
        h.record(12_345);
        assert_eq!(h.count(), 1);
        assert_eq!((h.min(), h.max()), (12_345, 12_345));
        assert_eq!(h.mean(), 12_345.0);
        // With one sample the clamp to [min, max] makes every quantile
        // exact, not just within the sub-bucket bound.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 12_345, "p{p}");
        }
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn top_bucket_saturates_at_u64_max() {
        // Values at the top of the u64 range land in the final bucket,
        // whose upper bound saturates to u64::MAX instead of overflowing.
        let i = index_of(u64::MAX);
        assert_eq!(bucket_high(i), u64::MAX);
        let mut h = Histogram::new();
        for v in [u64::MAX, u64::MAX - 1, u64::MAX / 2 + 1] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), u64::MAX / 2 + 1);
        assert_eq!(h.percentile(100.0), u64::MAX);
        // The sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        // Bucket occupancy still telescopes to the count.
        let total: u64 = h.nonzero_buckets().iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 3);
        for (low, high, _) in h.nonzero_buckets() {
            assert!(low <= high, "bucket bounds stay ordered at the top");
        }
    }

    #[test]
    fn merge_of_disjoint_histograms_spans_both_ranges() {
        let mut lo = Histogram::new();
        for v in 10..20u64 {
            lo.record(v);
        }
        let mut hi = Histogram::new();
        for v in 1_000_000..1_000_010u64 {
            hi.record(v);
        }
        // Merging the wider (hi) into the narrower (lo) forces the bucket
        // vector to grow; counts, sum, and extrema all fold exactly.
        let mut merged = lo.clone();
        merged.merge(&hi);
        assert_eq!(merged.count(), 20);
        assert_eq!(merged.sum(), lo.sum() + hi.sum());
        assert_eq!(merged.min(), 10);
        assert_eq!(merged.max(), 1_000_009);
        // Low quantiles come from the low range, high from the high range.
        assert!(merged.percentile(25.0) < 20);
        assert!(merged.percentile(90.0) >= 1_000_000);
        // Merge is order-independent.
        let mut other = hi.clone();
        other.merge(&lo);
        assert_eq!(merged, other);
        // Merging an empty histogram is a no-op in both directions.
        let before = merged.clone();
        merged.merge(&Histogram::new());
        assert_eq!(merged, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn json_is_well_formed() {
        let mut h = Histogram::new();
        for v in [3, 900, 901, 40_000] {
            h.record(v);
        }
        let v = Json::parse(&h.to_json()).expect("well-formed");
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(4));
        let buckets = v.get("buckets").and_then(Json::as_arr).expect("buckets");
        let total: u64 = buckets
            .iter()
            .filter_map(|b| b.get("count").and_then(Json::as_u64))
            .sum();
        assert_eq!(total, 4, "bucket counts telescope to the total");
    }
}
