//! Typed alignment jobs: what a client submits and what it gets back.

/// Opaque job handle, unique per [`crate::Service`] instance, assigned at
/// admission in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}", self.0)
    }
}

/// Tenant (client) identifier; admission quotas are per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tenant(pub u32);

/// Job priority. Higher values are more important: under overload a
/// saturated queue sheds its *lowest*-priority entry to admit a strictly
/// higher-priority arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

/// The alignment the job asks for. Sequences are 2-bit base codes
/// (`0..4`), one byte per base, as everywhere else in the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Smith–Waterman local alignment score of `query` vs `target`
    /// (affine gaps, the suite's standard DNA scoring).
    Pairwise {
        /// Query sequence codes.
        query: Vec<u8>,
        /// Target sequence codes.
        target: Vec<u8>,
    },
    /// Exact FM-index mapping of `read` against the service's reference
    /// genome; returns the best `(match_count, position)` candidate.
    FmMap {
        /// Read codes; length must equal the service's configured FM read
        /// length.
        read: Vec<u8>,
    },
    /// Pair-HMM forward likelihood of `read`/`quals` against `hap`.
    PairHmm {
        /// Read codes (configured read length).
        read: Vec<u8>,
        /// Phred quality per read base (same length as `read`).
        quals: Vec<u8>,
        /// Haplotype codes (configured haplotype length).
        hap: Vec<u8>,
    },
}

/// A submitted job: payload plus scheduling attributes.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Handle assigned at admission.
    pub id: JobId,
    /// Owning tenant (quota accounting).
    pub tenant: Tenant,
    /// Shed order under overload.
    pub priority: Priority,
    /// Cycle budget for any grid carrying this job, enforced on-device by
    /// the watchdog machinery; `None` uses the service default. A fused
    /// batch runs under the *minimum* budget of its members.
    pub deadline: Option<u64>,
    /// The work itself.
    pub kind: JobKind,
}

/// Successful result payload, per job kind.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Local alignment score.
    Score(i64),
    /// Best FM mapping: exact-match count and text position (both zero
    /// when the read is unmappable).
    Mapping {
        /// Matching bases at the reported position.
        score: u32,
        /// Position in the reference text.
        pos: u32,
    },
    /// log10 of the Pair-HMM forward likelihood (`-inf` when the
    /// probability underflows to zero).
    LogLik(f64),
}

/// Terminal state of a job, reported exactly once.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job ran to completion.
    Done(JobOutput),
    /// Shed under overload to admit a higher-priority arrival (graceful
    /// degradation — the client should resubmit later).
    Shed,
    /// Every grid carrying the job overran its cycle budget, down to a
    /// singleton batch.
    DeadlineExceeded,
    /// Retries and batch-splitting were exhausted without a clean run;
    /// carries the last device error, rendered.
    Failed(String),
}
