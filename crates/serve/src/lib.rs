//! `ggpu-serve` — a fault-isolated, backpressured alignment service over
//! the Genomics-GPU simulator.
//!
//! The benchmarks in this suite drive the device like a batch job: build
//! inputs, launch, synchronize, verify. Real genome-analysis deployments
//! look different — a queue of heterogeneous alignment *requests* arriving
//! continuously, sharing one device, where a single poisoned request must
//! not take the fleet down. This crate reproduces that host-side serving
//! layer on top of the simulator's stream model:
//!
//! * **Typed jobs** ([`JobKind`]): Smith–Waterman pairwise scoring,
//!   FM-index read mapping against a resident reference, and Pair-HMM
//!   forward likelihoods.
//! * **Shape batching** ([`ShapeKey`]): same-shaped requests fuse into one
//!   grid — same kernel binary, same strides — and are scheduled onto
//!   CUDA-style streams, one worker (stream + private slabs) at a time.
//! * **Admission control**: a bounded queue with per-tenant quotas.
//!   Overload answers a typed [`AdmitError::Overloaded`] with a retry
//!   hint — never an OOM abort — and sheds the lowest-priority queued job
//!   when a strictly higher-priority request arrives ([`JobOutcome::Shed`]).
//! * **Fault isolation & recovery**: a guest fault, hang, or deadline
//!   overrun poisons only the owning stream
//!   ([`ggpu_sim::Gpu::stream_fault`]); the service resets the stream
//!   ([`ggpu_sim::Gpu::reset_stream`]), moves the worker to a fresh one,
//!   and retries the batch with capped exponential backoff. Exhausted
//!   batches split in half, so a single poisoned job converges to its own
//!   terminal [`JobOutcome`] while its batch-mates still complete.
//! * **Deadlines**: per-job cycle budgets ride the launch
//!   ([`ggpu_sim::LaunchOptions::deadline`]) and are enforced *on device*
//!   by the watchdog machinery.
//! * **Observability**: every request is traced through its lifecycle
//!   (typed [`ServeEvent`]s carrying the device stream and grid handle),
//!   latencies land in dependency-free log-bucketed [`Histogram`]s per
//!   tenant/shape/outcome, and [`Service::report`] bundles it all —
//!   including a unified host+device Chrome trace — as a [`ServeReport`].
//!
//! Everything is deterministic: given the same submissions and the same
//! fault plan, outcomes and device statistics are bit-identical at any
//! `sim_threads` — which is what makes the fault-injection soak in
//! `tests/serve_soak.rs` assertable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
pub mod histogram;
mod job;
mod metrics;
mod queue;
mod report;
mod service;
mod shape;
mod telemetry;
pub mod traffic;

pub use error::{AdmitError, ServiceDead};
pub use histogram::{Histogram, LatencyStats};
pub use job::{JobId, JobKind, JobOutcome, JobOutput, JobSpec, Priority, Tenant};
pub use metrics::ServeMetrics;
pub use report::ServeReport;
pub use service::Service;
pub use shape::{shape_of, ShapeKey};
pub use telemetry::{
    BatchSpan, GridRef, JobTrail, OutcomeTag, RejectReason, ServeEvent, ServeEventKind,
};

use ggpu_sim::GpuConfig;

/// Static configuration of a [`Service`].
///
/// Kernel shapes are compile-time properties of the service: pairwise
/// length buckets, the FM read length, and the Pair-HMM pair geometry are
/// all fixed at [`Service::new`], and jobs that fit no configured shape
/// are refused at admission with a typed error.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base device configuration. The service forces the isolation knobs
    /// it depends on (`stream_isolation`, `kernel_records`,
    /// `flush_between_kernels`) regardless of what this says.
    pub gpu: GpuConfig,
    /// Devices in the node the service drives (each a full `gpu` clone;
    /// `0` is treated as `1`). Workers round-robin over devices, so the
    /// same submission stream shards across the node; the FM reference is
    /// uploaded once and broadcast to peer devices over the inter-GPU
    /// fabric.
    pub n_devices: usize,
    /// Concurrent workers (one stream + slab set each, pinned to device
    /// `worker % n_devices`).
    pub workers: usize,
    /// Admission queue bound; beyond it submissions shed or are refused.
    pub queue_capacity: usize,
    /// Maximum admitted-but-unfinished jobs per tenant.
    pub tenant_quota: usize,
    /// Maximum jobs fused into one grid.
    pub max_batch: usize,
    /// Launch attempts per batch before it splits (deadline overruns
    /// split immediately — rerunning identical work in a deterministic
    /// simulator would overrun identically).
    pub max_attempts: u32,
    /// Backoff after the first failure, in scheduling rounds.
    pub backoff_base: u64,
    /// Backoff ceiling, in rounds.
    pub backoff_cap: u64,
    /// Pairwise stride buckets (bases). A pair is served by the smallest
    /// bucket that fits it; longer pairs are [`AdmitError::TooLarge`].
    pub pairwise_buckets: Vec<u32>,
    /// Reference genome (2-bit codes) for FM mapping; empty disables the
    /// FM pipeline.
    pub fm_genome: Vec<u8>,
    /// Fixed FM read length (bases).
    pub fm_read_len: u32,
    /// Fixed Pair-HMM read length; 0 disables the pipeline.
    pub phmm_read_len: u32,
    /// Fixed Pair-HMM haplotype length (must be >= the read length).
    pub phmm_hap_len: u32,
    /// Cycle budget applied to jobs that set none; `None` leaves them
    /// unbounded (the device watchdog still applies).
    pub default_deadline: Option<u64>,
    /// Capacity of the telemetry event log ([`ServeEvent`]s); further
    /// events are dropped and counted, like the device trace buffer.
    pub telemetry_events: usize,
}

impl ServeConfig {
    /// A small configuration for tests: two workers, modest buckets, and
    /// the fast unit-test device. FM serving stays disabled until a
    /// genome is supplied.
    pub fn test_small() -> Self {
        ServeConfig {
            gpu: GpuConfig::test_small(),
            n_devices: 1,
            workers: 2,
            queue_capacity: 32,
            tenant_quota: 24,
            max_batch: 8,
            max_attempts: 3,
            backoff_base: 1,
            backoff_cap: 8,
            pairwise_buckets: vec![32, 64],
            fm_genome: Vec::new(),
            fm_read_len: 16,
            phmm_read_len: 10,
            phmm_hap_len: 14,
            default_deadline: None,
            telemetry_events: 1 << 16,
        }
    }

    /// Spread the service over `n` devices (builder style).
    pub fn with_devices(mut self, n: usize) -> Self {
        self.n_devices = n;
        self
    }
}
