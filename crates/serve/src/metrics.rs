//! Service counters: one cheap, copyable struct, bumped inline.

/// Monotonic counters over a [`crate::Service`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs offered to [`crate::Service::submit`].
    pub submitted: u64,
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Submissions refused with [`crate::AdmitError::Overloaded`].
    pub rejected_overload: u64,
    /// Submissions refused with [`crate::AdmitError::QuotaExceeded`].
    pub rejected_quota: u64,
    /// Submissions refused for shape ([`crate::AdmitError::TooLarge`] or
    /// [`crate::AdmitError::UnsupportedShape`]).
    pub rejected_shape: u64,
    /// Queued jobs shed to admit higher-priority arrivals.
    pub shed: u64,
    /// Jobs finished with [`crate::JobOutcome::Done`].
    pub completed: u64,
    /// Jobs finished with [`crate::JobOutcome::Failed`].
    pub failed: u64,
    /// Jobs finished with [`crate::JobOutcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Fused grids launched (including retries).
    pub batches_launched: u64,
    /// Batches re-queued after a recoverable failure.
    pub retries: u64,
    /// Batches split in half after exhausting retries.
    pub splits: u64,
    /// Faulted worker streams reset via [`ggpu_sim::Gpu::reset_stream`].
    pub stream_resets: u64,
    /// Fresh streams created to replace killed ones.
    pub streams_created: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
}
