//! Service counters: one cheap, copyable struct, bumped inline.

use ggpu_sim::json::JsonWriter;

/// Monotonic counters and saturation gauges over a [`crate::Service`]'s
/// lifetime.
///
/// # Conservation invariants
///
/// Admission is total — every submission is counted exactly once:
///
/// ```text
/// submitted == admitted + rejected_overload + rejected_quota + rejected_shape
/// ```
///
/// and every admitted job reaches exactly one terminal outcome once the
/// service drains ([`crate::Service::backlog`] == 0 and nothing is
/// launched):
///
/// ```text
/// admitted == completed + failed + deadline_exceeded + shed
/// ```
///
/// While work is in flight the right-hand side lags `admitted` by exactly
/// the number of admitted-but-unfinished jobs. Both invariants are
/// enforced by `conservation` tests in `crates/serve/tests` and by the
/// telemetry layer, whose end-to-end histogram count telescopes to the
/// terminal-outcome sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Jobs offered to [`crate::Service::submit`].
    pub submitted: u64,
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Submissions refused with [`crate::AdmitError::Overloaded`].
    pub rejected_overload: u64,
    /// Submissions refused with [`crate::AdmitError::QuotaExceeded`].
    pub rejected_quota: u64,
    /// Submissions refused for shape ([`crate::AdmitError::TooLarge`] or
    /// [`crate::AdmitError::UnsupportedShape`]).
    pub rejected_shape: u64,
    /// Queued jobs shed to admit higher-priority arrivals.
    pub shed: u64,
    /// Jobs finished with [`crate::JobOutcome::Done`].
    pub completed: u64,
    /// Jobs finished with [`crate::JobOutcome::Failed`].
    pub failed: u64,
    /// Jobs finished with [`crate::JobOutcome::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Fused grids launched (including retries).
    pub batches_launched: u64,
    /// Batches re-queued after a recoverable failure.
    pub retries: u64,
    /// Batches split in half after exhausting retries.
    pub splits: u64,
    /// Faulted worker streams reset via [`ggpu_sim::Gpu::reset_stream`].
    pub stream_resets: u64,
    /// Fresh streams created to replace killed ones.
    pub streams_created: u64,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Jobs currently waiting in the admission queue (gauge).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` (saturation is invisible from
    /// monotonic counters alone).
    pub queue_depth_hwm: u64,
    /// Batches currently launched or parked for retry (gauge).
    pub inflight_batches: u64,
    /// High-water mark of `inflight_batches`.
    pub inflight_batches_hwm: u64,
}

impl ServeMetrics {
    /// Record the current queue depth, tracking the high-water mark.
    pub(crate) fn gauge_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
        self.queue_depth_hwm = self.queue_depth_hwm.max(depth);
    }

    /// Record the current in-flight batch count, tracking the high-water
    /// mark.
    pub(crate) fn gauge_inflight_batches(&mut self, n: u64) {
        self.inflight_batches = n;
        self.inflight_batches_hwm = self.inflight_batches_hwm.max(n);
    }

    /// Serialize as a standalone JSON object (one key per field).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("submitted", self.submitted)
            .u64("admitted", self.admitted)
            .u64("rejected_overload", self.rejected_overload)
            .u64("rejected_quota", self.rejected_quota)
            .u64("rejected_shape", self.rejected_shape)
            .u64("shed", self.shed)
            .u64("completed", self.completed)
            .u64("failed", self.failed)
            .u64("deadline_exceeded", self.deadline_exceeded)
            .u64("batches_launched", self.batches_launched)
            .u64("retries", self.retries)
            .u64("splits", self.splits)
            .u64("stream_resets", self.stream_resets)
            .u64("streams_created", self.streams_created)
            .u64("rounds", self.rounds)
            .u64("queue_depth", self.queue_depth)
            .u64("queue_depth_hwm", self.queue_depth_hwm)
            .u64("inflight_batches", self.inflight_batches)
            .u64("inflight_batches_hwm", self.inflight_batches_hwm);
        w.end_obj();
        w.finish()
    }
}
