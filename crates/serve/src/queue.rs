//! Bounded admission queue with priority shedding.
//!
//! The queue is FIFO per shape — batches are assembled in arrival order —
//! but under overload it degrades gracefully instead of rejecting
//! blindly: a full queue sheds its lowest-priority entry (oldest among
//! ties) to admit a strictly higher-priority arrival.

use std::collections::VecDeque;

use crate::job::{JobSpec, Priority};
use crate::shape::ShapeKey;

/// One admitted, not-yet-batched job with its precomputed shape.
#[derive(Debug, Clone)]
pub(crate) struct QueuedJob {
    pub(crate) spec: JobSpec,
    pub(crate) shape: ShapeKey,
}

/// The admission queue. Capacity is enforced by the caller (`Service`)
/// so rejection can carry a typed, informative error.
#[derive(Debug, Default)]
pub(crate) struct AdmissionQueue {
    jobs: VecDeque<QueuedJob>,
}

impl AdmissionQueue {
    pub(crate) fn len(&self) -> usize {
        self.jobs.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub(crate) fn push(&mut self, job: QueuedJob) {
        self.jobs.push_back(job);
    }

    /// Remove and return the oldest lowest-priority entry iff its priority
    /// is strictly below `incoming` — the shed rule. `None` leaves the
    /// queue untouched (the arrival must be rejected instead).
    pub(crate) fn shed_for(&mut self, incoming: Priority) -> Option<QueuedJob> {
        let (idx, lowest) = self
            .jobs
            .iter()
            .enumerate()
            .min_by_key(|(i, j)| (j.spec.priority, *i))
            .map(|(i, j)| (i, j.spec.priority))?;
        if lowest < incoming {
            self.jobs.remove(idx)
        } else {
            None
        }
    }

    /// Assemble the next batch: the front job's shape, plus up to
    /// `max - 1` later jobs of the same shape, in arrival order.
    pub(crate) fn take_batch(&mut self, max: usize) -> Vec<QueuedJob> {
        let Some(front) = self.jobs.front() else {
            return Vec::new();
        };
        let shape = front.shape;
        let mut batch = Vec::new();
        let mut rest = VecDeque::with_capacity(self.jobs.len());
        for job in self.jobs.drain(..) {
            if batch.len() < max && job.shape == shape {
                batch.push(job);
            } else {
                rest.push_back(job);
            }
        }
        self.jobs = rest;
        batch
    }
}
