//! The serving observability report: metrics, latency histograms, the
//! host event stream, batch spans, request trails, and a unified
//! host+device Chrome-trace export.
//!
//! The Chrome trace renders one Perfetto process per participant on one
//! cycle timeline: pid 0 holds the host rows (an admission-queue-depth
//! counter track, one row per worker, one row per tenant) and pid
//! `1 + d` holds device `d`'s rows (one row per stream built from
//! [`ggpu_sim::KernelRecord`]s, plus PCIe/P2P transfers and
//! fault/watchdog instants from the stream-annotated device trace). Host
//! events carry the grid handle and [`ggpu_sim::StreamId`], so a slow
//! request can be followed from admission through queue wait, batch
//! formation, stream launch, and the device kernel's start/retire —
//! including retries and stream resets on a faulted path.

use std::collections::{BTreeMap, BTreeSet};

use ggpu_sim::json::{escape, num, JsonWriter};
use ggpu_sim::{grid_device, KernelRecord, TraceEvent, TraceEventKind};

use crate::histogram::{Histogram, LatencyStats};
use crate::metrics::ServeMetrics;
use crate::shape::ShapeKey;
use crate::telemetry::{BatchSpan, JobTrail, ServeEvent, ServeEventKind};

/// Everything the serving layer observed, in one exportable bundle.
/// Built by [`crate::Service::report`].
#[derive(Debug)]
pub struct ServeReport {
    /// Lifetime counters and gauges.
    pub metrics: ServeMetrics,
    /// Device clock in GHz (for cycle→time conversion in the trace).
    pub clock_ghz: f64,
    /// Latency histograms over every admitted job.
    pub global: LatencyStats,
    /// Latency histograms broken down per tenant.
    pub per_tenant: BTreeMap<u32, LatencyStats>,
    /// Latency histograms broken down per kernel shape.
    pub per_shape: BTreeMap<ShapeKey, LatencyStats>,
    /// End-to-end histograms per outcome class, as `(tag, histogram)` in
    /// a fixed order: done, shed, deadline_exceeded, failed.
    pub per_outcome: Vec<(&'static str, Histogram)>,
    /// The typed host event stream, in emission order.
    pub events: Vec<ServeEvent>,
    /// Host events dropped after the log filled.
    pub events_dropped: u64,
    /// One span per batch launch (launch → retire/fault-settle).
    pub spans: Vec<BatchSpan>,
    /// One trail per terminated job, in completion order.
    pub trails: Vec<JobTrail>,
    /// Admitted jobs not yet terminal when the report was taken.
    pub in_flight: u64,
    /// One log per device, in device-index order.
    pub devices: Vec<DeviceLog>,
}

/// One device's observability slice of a [`ServeReport`].
#[derive(Debug)]
pub struct DeviceLog {
    /// The device's stream-annotated event trace.
    pub events: Vec<TraceEvent>,
    /// Per-grid records (the join target of launch events); grid handles
    /// encode the device ([`ggpu_sim::grid_device`]).
    pub records: Vec<KernelRecord>,
}

impl ServeReport {
    /// The `n` slowest terminated jobs by end-to-end cycles (ties broken
    /// by job id, so the order is deterministic).
    pub fn slowest(&self, n: usize) -> Vec<&JobTrail> {
        let mut sorted: Vec<&JobTrail> = self.trails.iter().collect();
        sorted.sort_by(|a, b| b.e2e.cmp(&a.e2e).then(a.job.0.cmp(&b.job.0)));
        sorted.truncate(n);
        sorted
    }

    /// Every device's trace events, flattened in device-index order.
    pub fn device_events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.devices.iter().flat_map(|d| d.events.iter())
    }

    /// Every device's kernel records, flattened in device-index order.
    pub fn device_records(&self) -> impl Iterator<Item = &KernelRecord> + '_ {
        self.devices.iter().flat_map(|d| d.records.iter())
    }

    /// Device events causally tied to a trail: events whose grid handle
    /// matches one of the trail's launches (grid handles are node-unique),
    /// or whose stream matches one of the trail's streams *on the same
    /// device* within the trail's lifetime window — stream ids repeat
    /// across devices, so stream matches are scoped to the devices the
    /// trail actually launched on.
    pub fn causal_device_events(&self, trail: &JobTrail) -> Vec<&TraceEvent> {
        let grids: BTreeSet<u64> = trail.grids.iter().map(|g| g.grid).collect();
        let streams: BTreeSet<(usize, usize)> = trail
            .grids
            .iter()
            .map(|g| (grid_device(g.grid), g.stream))
            .collect();
        self.devices
            .iter()
            .enumerate()
            .flat_map(|(d, log)| log.events.iter().map(move |ev| (d, ev)))
            .filter(|(d, ev)| {
                let (grid, stream) = match &ev.kind {
                    TraceEventKind::KernelLaunch { grid, stream, .. }
                    | TraceEventKind::CdpEnqueue { grid, stream, .. }
                    | TraceEventKind::KernelStart { grid, stream }
                    | TraceEventKind::KernelRetire { grid, stream } => (Some(*grid), *stream),
                    TraceEventKind::Fault { stream, .. }
                    | TraceEventKind::Deadlock { stream, .. } => (None, *stream),
                    _ => return false,
                };
                if let Some(g) = grid {
                    grids.contains(&g)
                } else {
                    streams.contains(&(*d, stream))
                        && ev.cycle >= trail.submit_cycle
                        && ev.cycle <= trail.complete_cycle
                }
            })
            .map(|(_, ev)| ev)
            .collect()
    }

    /// Serialize the whole report as one JSON document (hand-rolled via
    /// [`ggpu_sim::json`]; parse it back with [`ggpu_sim::json::Json`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.f64("clock_ghz", self.clock_ghz)
            .raw("metrics", &self.metrics.to_json())
            .u64("in_flight", self.in_flight)
            .u64("events_dropped", self.events_dropped);
        w.begin_obj_key("latency");
        w.raw("global", &self.global.to_json());
        w.begin_obj_key("per_tenant");
        for (t, stats) in &self.per_tenant {
            w.raw(&t.to_string(), &stats.to_json());
        }
        w.end_obj();
        w.begin_obj_key("per_shape");
        for (shape, stats) in &self.per_shape {
            w.raw(&shape.to_string(), &stats.to_json());
        }
        w.end_obj();
        w.begin_obj_key("per_outcome");
        for (tag, h) in &self.per_outcome {
            w.raw(tag, &h.to_json());
        }
        w.end_obj();
        w.end_obj();
        w.begin_arr_key("events");
        for ev in &self.events {
            w.elem_raw(&ev.to_json());
        }
        w.end_arr();
        w.begin_arr_key("batches");
        for span in &self.spans {
            w.elem_raw(&span.to_json());
        }
        w.end_arr();
        w.begin_arr_key("requests");
        for t in &self.trails {
            w.elem_raw(&trail_json(t));
        }
        w.end_arr();
        w.begin_arr_key("device_events");
        for ev in self.device_events() {
            w.elem_raw(&ev.to_json());
        }
        w.end_arr();
        w.begin_arr_key("kernels");
        for r in self.device_records() {
            w.elem_raw(&r.to_json());
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Render the unified host+device Chrome trace. Load at
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let ghz = if self.clock_ghz > 0.0 {
            self.clock_ghz
        } else {
            1.0
        };
        let us = |cycles: u64| cycles as f64 / (ghz * 1000.0);
        let mut out: Vec<String> = Vec::new();
        let mut ev = |name: &str,
                      ph: char,
                      ts: f64,
                      dur: Option<f64>,
                      pid: usize,
                      tid: u64,
                      args: &[(&str, String)]| {
            let mut s = format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                escape(name),
                ph,
                num(ts),
                pid,
                tid
            );
            if let Some(d) = dur {
                s.push_str(&format!(",\"dur\":{}", num(d.max(0.001))));
            }
            if ph == 'i' {
                s.push_str(",\"s\":\"t\"");
            }
            if !args.is_empty() {
                s.push_str(",\"args\":{");
                for (i, (k, v)) in args.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("\"{}\":{}", escape(k), v));
                }
                s.push('}');
            }
            s.push('}');
            out.push(s);
        };

        const HOST: usize = 0;
        // Device `d` renders as pid DEV0 + d.
        const DEV0: usize = 1;
        const TID_QUEUE: u64 = 0;
        const TID_WORKER0: u64 = 1;
        const TID_TENANT0: u64 = 100;

        ev(
            "process_name",
            'M',
            0.0,
            None,
            HOST,
            0,
            &[("name", "\"ggpu-serve host\"".into())],
        );
        for d in 0..self.devices.len() {
            ev(
                "process_name",
                'M',
                0.0,
                None,
                DEV0 + d,
                0,
                &[("name", format!("\"device {d}\""))],
            );
            ev(
                "thread_name",
                'M',
                0.0,
                None,
                DEV0 + d,
                0,
                &[("name", "\"transfers (pcie/p2p)\"".into())],
            );
        }
        ev(
            "thread_name",
            'M',
            0.0,
            None,
            HOST,
            TID_QUEUE,
            &[("name", "\"admission queue\"".into())],
        );

        // --- host: queue-depth counter track -------------------------------
        for e in &self.events {
            let depth = match &e.kind {
                ServeEventKind::Admit { queue_depth, .. }
                | ServeEventKind::Shed { queue_depth, .. }
                | ServeEventKind::BatchAssign { queue_depth, .. } => *queue_depth,
                _ => continue,
            };
            ev(
                "queue_depth",
                'C',
                us(e.cycle),
                None,
                HOST,
                TID_QUEUE,
                &[("jobs", format!("{depth}"))],
            );
        }

        // --- host: one row per worker (batch spans + recovery instants) ----
        let mut workers: BTreeSet<usize> = BTreeSet::new();
        let mut batch_worker: BTreeMap<u64, usize> = BTreeMap::new();
        for span in &self.spans {
            workers.insert(span.worker);
            batch_worker.insert(span.batch, span.worker);
            let start = span.start_cycle.unwrap_or(span.launch_cycle);
            let name = format!(
                "batch {} {} x{}{}",
                span.batch,
                span.shape,
                span.jobs,
                if span.faulted { " FAULTED" } else { "" }
            );
            ev(
                &name,
                'X',
                us(span.launch_cycle),
                Some(us(span.end_cycle.saturating_sub(span.launch_cycle))),
                HOST,
                TID_WORKER0 + span.worker as u64,
                &[
                    ("batch", format!("{}", span.batch)),
                    ("grid", format!("{}", span.grid)),
                    ("stream", format!("{}", span.stream)),
                    ("attempt", format!("{}", span.attempt)),
                    ("jobs", format!("{}", span.jobs)),
                    ("launch_cycle", format!("{}", span.launch_cycle)),
                    ("start_cycle", format!("{start}")),
                    ("end_cycle", format!("{}", span.end_cycle)),
                    ("faulted", format!("{}", span.faulted)),
                ],
            );
        }
        for e in &self.events {
            match &e.kind {
                ServeEventKind::StreamReset {
                    worker,
                    old_stream,
                    new_stream,
                } => {
                    workers.insert(*worker);
                    ev(
                        &format!("stream reset {} -> {}", old_stream.0, new_stream.0),
                        'i',
                        us(e.cycle),
                        None,
                        HOST,
                        TID_WORKER0 + *worker as u64,
                        &[
                            ("old_stream", format!("{}", old_stream.0)),
                            ("new_stream", format!("{}", new_stream.0)),
                        ],
                    );
                }
                ServeEventKind::Retry {
                    batch,
                    attempt,
                    not_before_round,
                } => {
                    let worker = batch_worker.get(batch).copied().unwrap_or(0);
                    ev(
                        &format!("retry batch {batch}"),
                        'i',
                        us(e.cycle),
                        None,
                        HOST,
                        TID_WORKER0 + worker as u64,
                        &[
                            ("attempt", format!("{attempt}")),
                            ("not_before_round", format!("{not_before_round}")),
                        ],
                    );
                }
                ServeEventKind::Split { batch, left, right } => {
                    let worker = batch_worker.get(batch).copied().unwrap_or(0);
                    ev(
                        &format!("split batch {batch} -> {left}+{right}"),
                        'i',
                        us(e.cycle),
                        None,
                        HOST,
                        TID_WORKER0 + worker as u64,
                        &[("batch", format!("{batch}"))],
                    );
                }
                _ => {}
            }
        }
        for w_idx in &workers {
            ev(
                "thread_name",
                'M',
                0.0,
                None,
                HOST,
                TID_WORKER0 + *w_idx as u64,
                &[("name", format!("\"worker {w_idx}\""))],
            );
        }

        // --- host: one row per tenant (request lifecycles) -----------------
        let mut tenants: BTreeSet<u32> = BTreeSet::new();
        for t in &self.trails {
            tenants.insert(t.tenant.0);
            let mut args = vec![
                ("job", format!("{}", t.job.0)),
                ("shape", format!("\"{}\"", escape(&t.shape.to_string()))),
                ("priority", format!("{}", t.priority.0)),
                ("outcome", format!("\"{}\"", t.outcome.tag())),
                ("submit_cycle", format!("{}", t.submit_cycle)),
                ("complete_cycle", format!("{}", t.complete_cycle)),
                ("e2e_cycles", format!("{}", t.e2e)),
            ];
            if let Some(g) = t.grids.last() {
                args.push(("grid", format!("{}", g.grid)));
                args.push(("stream", format!("{}", g.stream)));
            }
            ev(
                &format!("job {} [{}]", t.job.0, t.outcome.tag()),
                'X',
                us(t.submit_cycle),
                Some(us(t.e2e)),
                HOST,
                TID_TENANT0 + t.tenant.0 as u64,
                &args,
            );
        }
        for t in &tenants {
            ev(
                "thread_name",
                'M',
                0.0,
                None,
                HOST,
                TID_TENANT0 + *t as u64,
                &[("name", format!("\"tenant {t}\""))],
            );
        }

        // --- devices: one pid per device, one row per stream ----------------
        for (d, log) in self.devices.iter().enumerate() {
            let pid = DEV0 + d;
            let mut streams: BTreeSet<usize> = BTreeSet::new();
            for r in &log.records {
                streams.insert(r.stream);
                ev(
                    &format!("{} #{}", r.kernel, r.grid),
                    'X',
                    us(r.start_cycle),
                    Some(us(r.retire_cycle.saturating_sub(r.start_cycle))),
                    pid,
                    1 + r.stream as u64,
                    &[
                        ("grid", format!("{}", r.grid)),
                        ("kernel", format!("\"{}\"", escape(&r.kernel))),
                        ("stream", format!("{}", r.stream)),
                        ("ctas", format!("{}", r.ctas)),
                        ("launch_cycle", format!("{}", r.launch_cycle)),
                        ("retire_cycle", format!("{}", r.retire_cycle)),
                    ],
                );
            }
            // Faults, watchdog fires, and PCIe/P2P transfers from the trace.
            for e in &log.events {
                match &e.kind {
                    TraceEventKind::Memcpy { dir, bytes, cycles } => {
                        ev(
                            &format!("memcpy_{dir}"),
                            'X',
                            us(e.cycle),
                            Some(us(*cycles)),
                            pid,
                            0,
                            &[("bytes", format!("{bytes}"))],
                        );
                    }
                    TraceEventKind::Fault {
                        kind,
                        kernel,
                        stream,
                    } => {
                        streams.insert(*stream);
                        ev(
                            &format!("FAULT: {kind}"),
                            'i',
                            us(e.cycle),
                            None,
                            pid,
                            1 + *stream as u64,
                            &[
                                ("kernel", format!("\"{}\"", escape(kernel))),
                                ("stream", format!("{stream}")),
                            ],
                        );
                    }
                    TraceEventKind::Deadlock {
                        stalled_for,
                        stream,
                    } => {
                        streams.insert(*stream);
                        ev(
                            "DEADLOCK (watchdog)",
                            'i',
                            us(e.cycle),
                            None,
                            pid,
                            1 + *stream as u64,
                            &[("stalled_for", format!("{stalled_for}"))],
                        );
                    }
                    _ => {}
                }
            }
            for s in &streams {
                ev(
                    "thread_name",
                    'M',
                    0.0,
                    None,
                    pid,
                    1 + *s as u64,
                    &[("name", format!("\"stream {s}\""))],
                );
            }
        }

        let mut doc = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        doc.push_str(&out.join(","));
        doc.push_str("]}");
        doc
    }
}

/// Serialize one trail as a JSON object.
fn trail_json(t: &JobTrail) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.u64("job", t.job.0)
        .u64("tenant", t.tenant.0 as u64)
        .str("shape", &t.shape.to_string())
        .u64("priority", t.priority.0 as u64)
        .str("outcome", t.outcome.tag())
        .u64("submit_cycle", t.submit_cycle)
        .opt_u64("batch_assign_cycle", t.batch_assign_cycle)
        .opt_u64("first_launch_cycle", t.first_launch_cycle)
        .u64("complete_cycle", t.complete_cycle)
        .opt_u64("device_exec_cycles", t.device_exec)
        .u64("e2e_cycles", t.e2e);
    w.begin_arr_key("grids");
    for g in &t.grids {
        w.elem_raw(&format!(
            "{{\"grid\":{},\"stream\":{},\"worker\":{},\"launch_cycle\":{}}}",
            g.grid, g.stream, g.worker, g.launch_cycle
        ));
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}
