//! The service proper: admission, batching, stream scheduling, recovery.

use std::collections::{BTreeMap, HashMap};

use ggpu_isa::{KernelId, LaunchDims, Program};
use ggpu_kernels::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode};
use ggpu_kernels::nvb::{build_fm_search_kernel, FmTables};
use ggpu_kernels::pairhmm::{build_pairhmm_kernel, phred_const_data, PairHmmKernelCfg, RowStorage};
use ggpu_kernels::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use ggpu_sim::{DevicePtr, Gpu, GpuNode, LaunchOptions, NodeConfig, SimError, StreamId};

use crate::batch::{self, Batch};
use crate::error::{AdmitError, ServiceDead};
use crate::job::{JobId, JobKind, JobOutcome, JobSpec, Priority, Tenant};
use crate::metrics::ServeMetrics;
use crate::queue::{AdmissionQueue, QueuedJob};
use crate::report::ServeReport;
use crate::shape::{shape_of, ShapeKey};
use crate::telemetry::{OutcomeTag, RejectReason, ServeTelemetry};
use crate::ServeConfig;

/// A compiled pairwise pipeline: one kernel per length bucket.
struct DpPipe {
    bucket: u32,
    kernel: KernelId,
    tpc: u32,
}

/// The FM-index pipeline: kernel plus device-resident reference tables
/// (uploaded once at build, shared read-only by every stream).
struct FmPipe {
    kernel: KernelId,
    text: DevicePtr,
    occ: DevicePtr,
    sa: DevicePtr,
    read_len: u32,
}

/// The Pair-HMM pipeline (shared-memory rows — no per-launch scratch).
struct PhPipe {
    kernel: KernelId,
    tpc: u32,
}

/// One worker: a device, a stream on it, and private input/output slabs.
/// Slabs are allocated eagerly at build time and recycled across every
/// batch and shape, so the request path never allocates device memory —
/// overload surfaces as a typed admission error, not as OOM mid-flight.
struct Worker {
    device: usize,
    stream: StreamId,
    in_a: DevicePtr,
    in_b: DevicePtr,
    in_c: DevicePtr,
    out: DevicePtr,
}

/// The alignment service. See the crate docs for the architecture.
pub struct Service {
    cfg: ServeConfig,
    node: GpuNode,
    dp: Vec<DpPipe>,
    /// One FM pipe per device (the reference tables are replicated to
    /// every device over the fabric); empty when FM serving is disabled.
    fm: Vec<FmPipe>,
    ph: Option<PhPipe>,
    workers: Vec<Worker>,
    queue: AdmissionQueue,
    parked: Vec<Batch>,
    inflight: HashMap<Tenant, usize>,
    outcomes: BTreeMap<JobId, JobOutcome>,
    metrics: ServeMetrics,
    telemetry: ServeTelemetry,
    round: u64,
    next_job: u64,
    next_batch: u64,
    /// Kernel records already fed to telemetry, per device.
    records_seen: Vec<usize>,
}

/// Largest thread count (a power of two, at most `cap`) whose shared-
/// memory rows fit the per-SM budget.
fn pick_tpc(row_bytes: u32, smem_bytes: u32, cap: u32) -> u32 {
    let mut tpc = cap.max(1).next_power_of_two();
    while tpc > 1 && row_bytes.saturating_mul(tpc) > smem_bytes {
        tpc /= 2;
    }
    tpc
}

impl Service {
    /// Build the service: compile every configured kernel shape, upload
    /// the FM reference, create one stream and one slab set per worker.
    /// Every device byte the request path will ever touch is allocated
    /// here.
    pub fn new(cfg: ServeConfig) -> Result<Self, SimError> {
        let mut gcfg = cfg.gpu.clone();
        // The service owns the isolation contract: per-stream fault
        // scoping, canonical kernel boundaries, and per-grid records are
        // not optional here.
        gcfg.stream_isolation = true;
        gcfg.kernel_records = true;
        gcfg.flush_between_kernels = true;
        gcfg.sample_interval_cycles = 0;
        // The unified host+device timeline needs the stream-annotated
        // device event trace; the buffer is bounded, so this is a memory
        // cap, not a correctness knob.
        gcfg.trace = true;
        let smem = gcfg.sm.smem_bytes;

        let mut program = Program::new();
        let mut dp_cfgs = Vec::new();
        for &bucket in &cfg.pairwise_buckets {
            let tpc = pick_tpc(2 * (bucket + 1) * 8, smem, 64);
            let kcfg = DpKernelCfg {
                mode: DpMode::Local,
                max_len: bucket,
                rows_in_smem: true,
                threads_per_cta: tpc,
                matches: MATCH,
                mismatch: MISMATCH,
                open: GAP_OPEN,
                extend: GAP_EXTEND,
                shared_target: false,
                subst_matrix: None,
            };
            let kernel = program.add(build_dp_kernel(&format!("serve-sw-{bucket}"), &kcfg));
            dp_cfgs.push((
                DpPipe {
                    bucket,
                    kernel,
                    tpc,
                },
                kcfg,
            ));
        }
        let fm_tables = (!cfg.fm_genome.is_empty()).then(|| FmTables::build(&cfg.fm_genome));
        let fm_kernel = fm_tables
            .as_ref()
            .map(|_| program.add(build_fm_search_kernel("serve-fm")));
        let ph_cfg = (cfg.phmm_read_len > 0 && cfg.phmm_hap_len >= cfg.phmm_read_len).then(|| {
            PairHmmKernelCfg {
                read_len: cfg.phmm_read_len,
                hap_len: cfg.phmm_hap_len,
                rows: RowStorage::Shared,
                threads_per_cta: pick_tpc(6 * (cfg.phmm_hap_len + 1) * 8, smem, 32),
            }
        });
        let ph_kernel = ph_cfg
            .as_ref()
            .map(|c| program.add(build_pairhmm_kernel("serve-pairhmm", c)));

        let n_devices = cfg.n_devices.max(1);
        let mut node = GpuNode::new(program, NodeConfig::new(n_devices, gcfg));
        let mut dp = Vec::new();
        for (pipe, kcfg) in dp_cfgs {
            for d in 0..n_devices {
                node.device_mut(d)
                    .bind_constants(pipe.kernel, scoring_const_data(&kcfg));
            }
            dp.push(pipe);
        }
        let mut fm = Vec::new();
        if let (Some(tables), Some(kernel)) = (fm_tables, fm_kernel) {
            let occ_bytes: Vec<u8> = tables.occ.iter().flat_map(|v| v.to_le_bytes()).collect();
            let sa_bytes: Vec<u8> = tables.sa.iter().flat_map(|v| v.to_le_bytes()).collect();
            for d in 0..n_devices {
                let dev = node.device_mut(d);
                dev.bind_constants(kernel, tables.const_data());
                let text = dev.try_malloc(tables.text.len() as u64)?;
                let occ = dev.try_malloc(occ_bytes.len() as u64)?;
                let sa = dev.try_malloc(sa_bytes.len() as u64)?;
                fm.push(FmPipe {
                    kernel,
                    text,
                    occ,
                    sa,
                    read_len: cfg.fm_read_len,
                });
            }
            // Upload the reference once over PCIe, then replicate it to
            // the peer devices over the inter-GPU fabric.
            node.device_mut(0)
                .try_memcpy_h2d(fm[0].text, &tables.text)?;
            node.device_mut(0).try_memcpy_h2d(fm[0].occ, &occ_bytes)?;
            node.device_mut(0).try_memcpy_h2d(fm[0].sa, &sa_bytes)?;
            for d in 1..n_devices {
                node.try_p2p_copy(0, fm[0].text, d, fm[d].text, tables.text.len())?;
                node.try_p2p_copy(0, fm[0].occ, d, fm[d].occ, occ_bytes.len())?;
                node.try_p2p_copy(0, fm[0].sa, d, fm[d].sa, sa_bytes.len())?;
            }
            if n_devices > 1 {
                // Land the broadcast before any kernel can read the tables.
                for r in node.try_sync_all() {
                    r?;
                }
            }
        }
        let ph = match (ph_cfg, ph_kernel) {
            (Some(c), Some(kernel)) => {
                for d in 0..n_devices {
                    node.device_mut(d)
                        .bind_constants(kernel, phred_const_data());
                }
                Some(PhPipe {
                    kernel,
                    tpc: c.threads_per_cta,
                })
            }
            _ => None,
        };

        // Slab sizing: the maximum any shape needs for a full batch.
        let nb = cfg.max_batch.max(1) as u64;
        let lmax = cfg.pairwise_buckets.iter().copied().max().unwrap_or(0) as u64;
        let a_bytes = (nb * lmax)
            .max(nb * cfg.fm_read_len as u64)
            .max(nb * cfg.phmm_read_len as u64)
            .max(1);
        let b_bytes = (nb * lmax).max(nb * cfg.phmm_read_len as u64).max(1);
        let c_bytes = (nb * 4).max(nb * cfg.phmm_hap_len as u64).max(1);
        let mut workers = Vec::new();
        let mut metrics = ServeMetrics::default();
        for w in 0..cfg.workers.max(1) {
            let device = w % n_devices;
            let dev = node.device_mut(device);
            workers.push(Worker {
                device,
                stream: dev.create_stream(),
                in_a: dev.try_malloc(a_bytes)?,
                in_b: dev.try_malloc(b_bytes)?,
                in_c: dev.try_malloc(c_bytes)?,
                out: dev.try_malloc(nb * 8)?,
            });
            metrics.streams_created += 1;
        }

        let telemetry = ServeTelemetry::new(cfg.telemetry_events);
        Ok(Service {
            cfg,
            node,
            dp,
            fm,
            ph,
            workers,
            queue: AdmissionQueue::default(),
            parked: Vec::new(),
            inflight: HashMap::new(),
            outcomes: BTreeMap::new(),
            metrics,
            telemetry,
            round: 0,
            next_job: 0,
            next_batch: 0,
            records_seen: vec![0; n_devices],
        })
    }

    /// The host-side clock: the furthest-ahead device cycle counter.
    /// Deterministic (device clocks are) and monotone, so telemetry
    /// timestamps order consistently across devices.
    fn now(&self) -> u64 {
        self.node.devices().map(Gpu::cycle).max().unwrap_or(0)
    }

    /// Submit one job. Admission is synchronous and typed: the job is
    /// either queued (returning its [`JobId`]) or refused with an
    /// [`AdmitError`] that tells the client exactly why and what to do.
    pub fn submit(
        &mut self,
        tenant: Tenant,
        priority: Priority,
        deadline: Option<u64>,
        kind: JobKind,
    ) -> Result<JobId, AdmitError> {
        self.metrics.submitted += 1;
        let cycle = self.now();
        self.telemetry.on_submit(cycle, tenant, priority);
        let shape = match shape_of(&kind, &self.cfg) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.rejected_shape += 1;
                self.telemetry.on_reject(cycle, tenant, RejectReason::Shape);
                return Err(e);
            }
        };
        let in_flight = self.inflight.get(&tenant).copied().unwrap_or(0);
        if in_flight >= self.cfg.tenant_quota {
            self.metrics.rejected_quota += 1;
            self.telemetry.on_reject(cycle, tenant, RejectReason::Quota);
            return Err(AdmitError::QuotaExceeded {
                tenant,
                in_flight,
                quota: self.cfg.tenant_quota,
            });
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            match self.queue.shed_for(priority) {
                Some(victim) => {
                    self.metrics.shed += 1;
                    self.telemetry.on_shed(
                        cycle,
                        victim.spec.id,
                        victim.spec.tenant,
                        self.queue.len() as u64,
                    );
                    self.finish(victim.spec.id, victim.spec.tenant, JobOutcome::Shed);
                }
                None => {
                    self.metrics.rejected_overload += 1;
                    self.telemetry
                        .on_reject(cycle, tenant, RejectReason::Overload);
                    let per_round = (self.workers.len() * self.cfg.max_batch.max(1)) as u64;
                    return Err(AdmitError::Overloaded {
                        retry_after_rounds: (self.queue.len() as u64 / per_round.max(1)).max(1),
                    });
                }
            }
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        *self.inflight.entry(tenant).or_insert(0) += 1;
        self.metrics.admitted += 1;
        self.queue.push(QueuedJob {
            spec: JobSpec {
                id,
                tenant,
                priority,
                deadline,
                kind,
            },
            shape,
        });
        self.metrics.gauge_queue_depth(self.queue.len() as u64);
        self.telemetry
            .on_admit(cycle, id, tenant, shape, priority, self.queue.len() as u64);
        Ok(id)
    }

    /// Run one scheduling round: un-park batches whose backoff expired,
    /// fill the remaining workers from the admission queue, launch every
    /// batch on its worker's stream, synchronize once, then settle each
    /// stream — faulted streams are reset (and replaced with fresh ones)
    /// and their batches re-queued, healthy streams' results are decoded.
    pub fn run_round(&mut self) -> Result<(), ServiceDead> {
        self.round += 1;
        self.metrics.rounds += 1;
        self.telemetry.set_round(self.round);
        let mut work: Vec<Batch> = Vec::new();
        let mut still_parked = Vec::new();
        for b in std::mem::take(&mut self.parked) {
            if b.not_before <= self.round && work.len() < self.workers.len() {
                work.push(b);
            } else {
                still_parked.push(b);
            }
        }
        self.parked = still_parked;
        while work.len() < self.workers.len() {
            let jobs = self.queue.take_batch(self.cfg.max_batch.max(1));
            if jobs.is_empty() {
                break;
            }
            let id = self.next_batch;
            self.next_batch += 1;
            let cycle = self.now();
            let depth = self.queue.len() as u64;
            for job in &jobs {
                self.telemetry
                    .on_batch_assign(cycle, job.spec.id, id, depth);
            }
            work.push(Batch::new(id, jobs));
        }
        self.metrics.gauge_queue_depth(self.queue.len() as u64);
        if work.is_empty() {
            self.metrics
                .gauge_inflight_batches(self.parked.len() as u64);
            return Ok(());
        }
        self.metrics
            .gauge_inflight_batches((work.len() + self.parked.len()) as u64);

        let mut launched: Vec<(usize, Batch, usize)> = Vec::new();
        let mut failed: Vec<(Batch, SimError)> = Vec::new();
        for (w, batch) in work.into_iter().enumerate() {
            match self.upload_and_launch(w, &batch) {
                Ok(grid) => {
                    self.metrics.batches_launched += 1;
                    let members: Vec<JobId> = batch.jobs.iter().map(|j| j.spec.id).collect();
                    let span = self.telemetry.on_launch(
                        self.now(),
                        batch.id,
                        w,
                        self.workers[w].stream,
                        grid,
                        batch.shape,
                        batch.attempts + 1,
                        &members,
                    );
                    launched.push((w, batch, span));
                }
                // Host-side failure (e.g. a dropped PCIe transfer):
                // nothing reached the device for this batch.
                Err(e) => failed.push((batch, e)),
            }
        }
        if !launched.is_empty() {
            // Streams >= 1 never poison a device: a worker fault leaves
            // its device's result Ok and is read back per stream below.
            // Devices simulate concurrently; results come back in
            // device-index order.
            for r in self.node.try_sync_all() {
                r.map_err(|e| ServiceDead {
                    error: e.to_string(),
                })?;
            }
        }
        self.ingest_records();
        for (w, batch, span) in launched {
            let (device, stream) = (self.workers[w].device, self.workers[w].stream);
            if let Some(err) = self.node.device(device).stream_fault(stream).cloned() {
                // Recover the stream (proves the device survives), then
                // retire it — retries go out on a fresh stream. The fault
                // is scoped to this device; workers on other devices never
                // see it.
                let cycle = self.now();
                self.telemetry.on_span_faulted(span, cycle);
                let _ = self.node.device_mut(device).reset_stream(stream);
                self.metrics.stream_resets += 1;
                self.workers[w].stream = self.node.device_mut(device).create_stream();
                self.metrics.streams_created += 1;
                self.telemetry
                    .on_stream_reset(cycle, w, stream, self.workers[w].stream);
                failed.push((batch, err));
            } else {
                match self.readback(w, &batch) {
                    Ok(outputs) => {
                        for (job, out) in batch.jobs.into_iter().zip(outputs) {
                            self.metrics.completed += 1;
                            self.finish(job.spec.id, job.spec.tenant, JobOutcome::Done(out));
                        }
                    }
                    Err(e) => failed.push((batch, e)),
                }
            }
        }
        for (batch, err) in failed {
            self.batch_failed(batch, err);
        }
        self.metrics
            .gauge_inflight_batches(self.parked.len() as u64);
        Ok(())
    }

    /// Feed newly retired [`ggpu_sim::KernelRecord`]s to the telemetry
    /// layer (grid start/retire joins for spans and device-exec stage),
    /// device by device. Grid handles are node-unique, so the joins need
    /// no device disambiguation.
    fn ingest_records(&mut self) {
        for d in 0..self.node.n_devices() {
            let records = self.node.device(d).kernel_records();
            let seen = self.records_seen[d];
            if records.len() > seen {
                self.telemetry.ingest_records(&records[seen..]);
                self.records_seen[d] = records.len();
            }
        }
    }

    /// Drive rounds until no queued or parked work remains (or the round
    /// cap trips, in which case leftovers fail loudly rather than hang).
    pub fn run_until_idle(&mut self, max_rounds: u64) -> Result<(), ServiceDead> {
        let mut rounds = 0u64;
        while !self.queue.is_empty() || !self.parked.is_empty() {
            rounds += 1;
            if rounds > max_rounds {
                for batch in std::mem::take(&mut self.parked) {
                    for job in batch.jobs {
                        self.metrics.failed += 1;
                        self.finish(
                            job.spec.id,
                            job.spec.tenant,
                            JobOutcome::Failed("round cap reached with work pending".into()),
                        );
                    }
                }
                while !self.queue.is_empty() {
                    for job in self.queue.take_batch(usize::MAX) {
                        self.metrics.failed += 1;
                        self.finish(
                            job.spec.id,
                            job.spec.tenant,
                            JobOutcome::Failed("round cap reached with work pending".into()),
                        );
                    }
                }
                break;
            }
            self.run_round()?;
        }
        Ok(())
    }

    /// Drain all recorded outcomes, ordered by [`JobId`].
    pub fn take_outcomes(&mut self) -> Vec<(JobId, JobOutcome)> {
        std::mem::take(&mut self.outcomes).into_iter().collect()
    }

    /// The outcome of `id`, if it has terminated.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.get(&id)
    }

    /// Current counters.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics
    }

    /// Jobs admitted but not yet terminated (queued, parked, or running).
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.parked.iter().map(|b| b.jobs.len()).sum::<usize>()
    }

    /// Node-total device statistics — every per-device counter merged
    /// with [`ggpu_sim::RunStats::merge`] (for soak assertions and
    /// dashboards). Identical to the single device's stats when
    /// `n_devices == 1`.
    pub fn stats(&self) -> ggpu_sim::RunStats {
        self.node.stats().total()
    }

    /// Per-device statistics plus fabric counters.
    pub fn node_stats(&self) -> ggpu_sim::NodeStats {
        self.node.stats()
    }

    /// Devices the service is serving over.
    pub fn n_devices(&self) -> usize {
        self.node.n_devices()
    }

    /// Device-memory allocation counts per device. Flat across rounds and
    /// shape changes once the service is built: slabs and local-memory
    /// arenas are recycled, never reallocated.
    pub fn device_alloc_counts(&self) -> Vec<u64> {
        self.node
            .devices()
            .map(|g| g.memory().alloc_count())
            .collect()
    }

    /// Per-grid records from every device, concatenated in device-index
    /// order (stream-stamped; grid handles encode the device).
    pub fn kernel_records(&self) -> Vec<ggpu_sim::KernelRecord> {
        self.node
            .devices()
            .flat_map(|g| g.kernel_records().iter().cloned())
            .collect()
    }

    /// Snapshot everything the serving layer observed — counters, the
    /// latency histogram forest, the typed host event stream, batch
    /// spans, request trails, and the device's stream-annotated trace —
    /// as one exportable [`ServeReport`]. Taking a report does not drain
    /// anything; it can be called repeatedly.
    pub fn report(&mut self) -> ServeReport {
        self.ingest_records();
        ServeReport {
            metrics: self.metrics,
            clock_ghz: self.cfg.gpu.clock_ghz,
            global: self.telemetry.global.clone(),
            per_tenant: self.telemetry.per_tenant.clone(),
            per_shape: self.telemetry.per_shape.clone(),
            per_outcome: vec![
                ("done", self.telemetry.per_outcome[0].clone()),
                ("shed", self.telemetry.per_outcome[1].clone()),
                ("deadline_exceeded", self.telemetry.per_outcome[2].clone()),
                ("failed", self.telemetry.per_outcome[3].clone()),
            ],
            events: self.telemetry.events().to_vec(),
            events_dropped: self.telemetry.dropped(),
            spans: self.telemetry.spans().to_vec(),
            trails: self.telemetry.trails().to_vec(),
            in_flight: self.telemetry.in_flight() as u64,
            devices: self
                .node
                .devices()
                .map(|g| crate::report::DeviceLog {
                    events: g.trace_events().to_vec(),
                    records: g.kernel_records().to_vec(),
                })
                .collect(),
        }
    }

    /// Record a terminal outcome exactly once and release quota.
    fn finish(&mut self, id: JobId, tenant: Tenant, outcome: JobOutcome) {
        if let Some(n) = self.inflight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        self.telemetry
            .on_complete(self.now(), id, tenant, OutcomeTag::of(&outcome));
        let prev = self.outcomes.insert(id, outcome);
        debug_assert!(prev.is_none(), "outcome recorded twice for {id}");
    }

    /// Capped exponential backoff, in rounds.
    fn backoff(&self, attempts: u32) -> u64 {
        let shift = attempts.saturating_sub(1).min(32);
        self.cfg
            .backoff_cap
            .min(self.cfg.backoff_base.saturating_mul(1u64 << shift))
            .max(1)
    }

    /// Failure policy. Deadline overruns skip the retry ladder (the
    /// simulator is deterministic — the same batch would overrun again)
    /// and go straight to splitting; other errors retry with capped
    /// exponential backoff. When retries are spent the batch splits in
    /// half (partial results: the healthy half completes; a poisoned
    /// singleton converges to a terminal outcome). Splitting is skipped
    /// while the queue is saturated — amplifying load under overload
    /// would trade latency for collapse.
    fn batch_failed(&mut self, mut batch: Batch, err: SimError) {
        let deadline = matches!(err, SimError::DeadlineExceeded { .. });
        let cycle = self.now();
        batch.attempts += 1;
        if !deadline && batch.attempts < self.cfg.max_attempts.max(1) {
            self.metrics.retries += 1;
            batch.not_before = self.round + self.backoff(batch.attempts);
            self.telemetry
                .on_retry(cycle, batch.id, batch.attempts, batch.not_before);
            self.parked.push(batch);
            return;
        }
        if batch.jobs.len() > 1 && self.queue.len() < self.cfg.queue_capacity {
            self.metrics.splits += 1;
            let right = batch.jobs.split_off(batch.jobs.len() / 2);
            let (left_id, right_id) = (self.next_batch, self.next_batch + 1);
            self.next_batch += 2;
            self.telemetry.on_split(cycle, batch.id, left_id, right_id);
            for (id, half) in [(left_id, batch.jobs), (right_id, right)] {
                let mut b = Batch::new(id, half);
                b.not_before = self.round + 1;
                self.parked.push(b);
            }
            return;
        }
        for job in batch.jobs {
            let outcome = if deadline {
                self.metrics.deadline_exceeded += 1;
                JobOutcome::DeadlineExceeded
            } else {
                self.metrics.failed += 1;
                JobOutcome::Failed(err.to_string())
            };
            self.finish(job.spec.id, job.spec.tenant, outcome);
        }
    }

    /// Upload a batch into worker `w`'s slabs and launch its fused grid
    /// on the worker's stream (on the worker's device), returning the
    /// node-unique device grid handle (the telemetry join key into kernel
    /// records and the device trace). Any error leaves the device clean —
    /// the grid was not enqueued.
    fn upload_and_launch(&mut self, w: usize, batch: &Batch) -> Result<u64, SimError> {
        let n = batch.jobs.len() as u64;
        let worker = &self.workers[w];
        let (device, stream, in_a, in_b, in_c, out) = (
            worker.device,
            worker.stream,
            worker.in_a,
            worker.in_b,
            worker.in_c,
            worker.out,
        );
        let opts = LaunchOptions {
            stream,
            deadline: batch.cycle_budget(self.cfg.default_deadline),
        };
        let grid = match batch.shape {
            ShapeKey::Pairwise { bucket } => {
                let pipe = self
                    .dp
                    .iter()
                    .find(|p| p.bucket == bucket)
                    .expect("bucket compiled at build");
                let (kernel, tpc) = (pipe.kernel, pipe.tpc);
                let (q, t, lens) = batch::encode_pairwise(&batch.jobs, bucket);
                let gpu = self.node.device_mut(device);
                gpu.try_memcpy_h2d(in_a, &q)?;
                gpu.try_memcpy_h2d(in_b, &t)?;
                gpu.try_memcpy_h2d(in_c, &lens)?;
                let dims = Self::dims_for(n, tpc);
                gpu.try_launch_on(
                    kernel,
                    dims,
                    &[
                        in_a.0,
                        in_b.0,
                        out.0,
                        n,
                        0,
                        dims.total_threads(),
                        in_c.0,
                        0,
                        0,
                    ],
                    opts,
                )?
            }
            ShapeKey::Fm => {
                let pipe = self.fm.get(device).expect("FM shape admitted without pipe");
                let (kernel, occ, sa, text, read_len) =
                    (pipe.kernel, pipe.occ, pipe.sa, pipe.text, pipe.read_len);
                let reads = batch::encode_fm(&batch.jobs);
                let gpu = self.node.device_mut(device);
                gpu.try_memcpy_h2d(in_a, &reads)?;
                // The kernel writes `out` only for mappable reads; zero
                // the slab so unmapped lanes read as "no hit" rather than
                // the previous batch's results.
                gpu.try_memcpy_h2d(out, &vec![0u8; (n * 8) as usize])?;
                let dims = Self::dims_for(n, 32);
                gpu.try_launch_on(
                    kernel,
                    dims,
                    &[
                        in_a.0,
                        occ.0,
                        out.0,
                        n,
                        0,
                        dims.total_threads(),
                        sa.0,
                        text.0,
                        read_len as u64,
                        0,
                    ],
                    opts,
                )?
            }
            ShapeKey::PairHmm => {
                let pipe = self
                    .ph
                    .as_ref()
                    .expect("PairHMM shape admitted without pipe");
                let (kernel, tpc) = (pipe.kernel, pipe.tpc);
                let (reads, quals, haps) = batch::encode_pairhmm(&batch.jobs);
                let gpu = self.node.device_mut(device);
                gpu.try_memcpy_h2d(in_a, &reads)?;
                gpu.try_memcpy_h2d(in_b, &quals)?;
                gpu.try_memcpy_h2d(in_c, &haps)?;
                let dims = Self::dims_for(n, tpc);
                gpu.try_launch_on(
                    kernel,
                    dims,
                    &[
                        in_a.0,
                        in_c.0,
                        out.0,
                        n,
                        0,
                        dims.total_threads(),
                        in_b.0,
                        0,
                        0,
                    ],
                    opts,
                )?
            }
        };
        Ok(grid)
    }

    /// Launch shape for an `n`-job batch: enough CTAs to spread work, a
    /// grid-stride loop covers the rest.
    fn dims_for(n: u64, tpc: u32) -> LaunchDims {
        let ctas = n.div_ceil(tpc as u64).clamp(1, 4) as u32;
        LaunchDims::linear(ctas, tpc)
    }

    /// Copy a finished batch's results home and decode them. A dropped
    /// D2H transfer is retried once (the drop is per-transfer, not
    /// sticky) before counting as a batch failure.
    fn readback(&mut self, w: usize, batch: &Batch) -> Result<Vec<crate::JobOutput>, SimError> {
        let (device, out) = (self.workers[w].device, self.workers[w].out);
        let bytes = batch.jobs.len() * 8;
        let gpu = self.node.device_mut(device);
        let raw = match gpu.try_memcpy_d2h(out, bytes) {
            Ok(raw) => raw,
            Err(SimError::MemcpyDropped { .. }) => gpu.try_memcpy_d2h(out, bytes)?,
            Err(e) => return Err(e),
        };
        Ok(batch::decode(batch.shape, &raw))
    }
}
