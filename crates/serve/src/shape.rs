//! Shape classification: which fused grid a job can ride in.
//!
//! Only jobs with the *same* shape key can share a launch — they use the
//! same kernel binary, the same buffer strides, and the same constant
//! image, so fusing them costs nothing but an index range.

use crate::error::AdmitError;
use crate::job::JobKind;
use crate::ServeConfig;

/// Batching key. Two jobs fuse into one grid iff their keys are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeKey {
    /// Smith–Waterman pairs padded to `bucket` bases (a configured
    /// power-of-two-ish stride; the kernel is compiled per bucket).
    Pairwise {
        /// Buffer stride in bases.
        bucket: u32,
    },
    /// FM-index mapping at the service's fixed read length.
    Fm,
    /// Pair-HMM at the service's fixed read/haplotype lengths.
    PairHmm,
}

impl std::fmt::Display for ShapeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeKey::Pairwise { bucket } => write!(f, "pairwise/{bucket}"),
            ShapeKey::Fm => write!(f, "fm-map"),
            ShapeKey::PairHmm => write!(f, "pairhmm"),
        }
    }
}

/// Classify a job against the service's configured shapes, or reject it
/// with a typed admission error.
pub fn shape_of(kind: &JobKind, cfg: &ServeConfig) -> Result<ShapeKey, AdmitError> {
    match kind {
        JobKind::Pairwise { query, target } => {
            let len = query.len().max(target.len());
            if len == 0 {
                return Err(AdmitError::UnsupportedShape {
                    why: "empty pairwise sequences".into(),
                });
            }
            let bucket = cfg
                .pairwise_buckets
                .iter()
                .copied()
                .filter(|&b| len <= b as usize)
                .min()
                .ok_or(AdmitError::TooLarge {
                    len,
                    max: cfg.pairwise_buckets.iter().copied().max().unwrap_or(0) as usize,
                })?;
            Ok(ShapeKey::Pairwise { bucket })
        }
        JobKind::FmMap { read } => {
            if cfg.fm_genome.is_empty() {
                return Err(AdmitError::UnsupportedShape {
                    why: "service built without an FM reference".into(),
                });
            }
            if read.len() != cfg.fm_read_len as usize {
                return Err(AdmitError::UnsupportedShape {
                    why: format!(
                        "FM read length {} != configured {}",
                        read.len(),
                        cfg.fm_read_len
                    ),
                });
            }
            Ok(ShapeKey::Fm)
        }
        JobKind::PairHmm { read, quals, hap } => {
            if read.len() != cfg.phmm_read_len as usize || quals.len() != read.len() {
                return Err(AdmitError::UnsupportedShape {
                    why: format!(
                        "PairHMM read/qual lengths {}/{} != configured {}",
                        read.len(),
                        quals.len(),
                        cfg.phmm_read_len
                    ),
                });
            }
            if hap.len() != cfg.phmm_hap_len as usize {
                return Err(AdmitError::UnsupportedShape {
                    why: format!(
                        "PairHMM hap length {} != configured {}",
                        hap.len(),
                        cfg.phmm_hap_len
                    ),
                });
            }
            Ok(ShapeKey::PairHmm)
        }
    }
}
