//! Request-lifecycle telemetry: a typed host event stream, per-job
//! latency tracks, and per-batch device spans.
//!
//! Every event is stamped with the device cycle at emission
//! ([`ggpu_sim::Gpu::cycle`]) — the same clock the device's
//! [`ggpu_sim::TraceEvent`] stream uses — so host events and device
//! kernel events join on one timeline. Launch events additionally carry
//! the worker's [`ggpu_sim::StreamId`] and the device grid handle, which
//! is the foreign key into [`ggpu_sim::KernelRecord`]s and the
//! stream-annotated device trace.
//!
//! Everything here is driven by deterministic cycle counts and service
//! decisions, so the event stream, the latency histograms, and the
//! per-batch spans are bit-identical at any `sim_threads`.

use std::collections::{BTreeMap, HashMap};

use ggpu_sim::json::JsonWriter;
use ggpu_sim::StreamId;

use crate::histogram::LatencyStats;
use crate::job::{JobId, JobOutcome, Priority, Tenant};
use crate::shape::ShapeKey;

/// Why a submission was refused (the telemetry mirror of
/// [`crate::AdmitError`], collapsed to the three counter classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Queue full and the arrival outranked nobody.
    Overload,
    /// Tenant over its in-flight quota.
    Quota,
    /// No configured kernel shape fits the job.
    Shape,
}

impl RejectReason {
    /// Short machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            RejectReason::Overload => "overload",
            RejectReason::Quota => "quota",
            RejectReason::Shape => "shape",
        }
    }
}

/// Terminal outcome class (the telemetry mirror of [`JobOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeTag {
    /// Finished with a result.
    Done,
    /// Evicted for a higher-priority arrival.
    Shed,
    /// Cycle budget exceeded on device.
    DeadlineExceeded,
    /// Failed after exhausting recovery.
    Failed,
}

impl OutcomeTag {
    /// Classify a terminal [`JobOutcome`].
    pub fn of(outcome: &JobOutcome) -> Self {
        match outcome {
            JobOutcome::Done(_) => OutcomeTag::Done,
            JobOutcome::Shed => OutcomeTag::Shed,
            JobOutcome::DeadlineExceeded => OutcomeTag::DeadlineExceeded,
            JobOutcome::Failed(_) => OutcomeTag::Failed,
        }
    }

    /// Short machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            OutcomeTag::Done => "done",
            OutcomeTag::Shed => "shed",
            OutcomeTag::DeadlineExceeded => "deadline_exceeded",
            OutcomeTag::Failed => "failed",
        }
    }
}

/// What happened in the serving layer (see DESIGN.md §Serving
/// observability for the schema).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEventKind {
    /// A job was offered to [`crate::Service::submit`].
    Submit {
        /// Submitting tenant.
        tenant: Tenant,
        /// Requested priority.
        priority: Priority,
    },
    /// The job passed admission and entered the queue.
    Admit {
        /// Assigned job id.
        job: JobId,
        /// Submitting tenant.
        tenant: Tenant,
        /// Classified kernel shape.
        shape: ShapeKey,
        /// Requested priority.
        priority: Priority,
        /// Queue depth after the push.
        queue_depth: u64,
    },
    /// The submission was refused at the door.
    Reject {
        /// Submitting tenant.
        tenant: Tenant,
        /// Which admission gate refused it.
        reason: RejectReason,
    },
    /// A queued job was shed to admit a higher-priority arrival.
    Shed {
        /// The evicted job.
        job: JobId,
        /// Its tenant.
        tenant: Tenant,
        /// Queue depth after the eviction.
        queue_depth: u64,
    },
    /// A queued job joined a batch.
    BatchAssign {
        /// The job.
        job: JobId,
        /// The batch it joined.
        batch: u64,
        /// Queue depth after the job left the queue.
        queue_depth: u64,
    },
    /// A batch's fused grid was enqueued on a worker's stream.
    Launch {
        /// The batch.
        batch: u64,
        /// Worker index.
        worker: usize,
        /// The worker's device stream.
        stream: StreamId,
        /// Device grid handle (foreign key into [`ggpu_sim::KernelRecord`]).
        grid: u64,
        /// Jobs fused into the grid.
        jobs: u64,
        /// Launch attempt (1 for the first try).
        attempt: u32,
    },
    /// A failed batch was parked for a backoff retry.
    Retry {
        /// The batch.
        batch: u64,
        /// Attempts so far.
        attempt: u32,
        /// Earliest round it may relaunch.
        not_before_round: u64,
    },
    /// A failed batch split into two halves.
    Split {
        /// The exhausted batch.
        batch: u64,
        /// New left-half batch id.
        left: u64,
        /// New right-half batch id.
        right: u64,
    },
    /// A faulted worker stream was reset and replaced.
    StreamReset {
        /// Worker index.
        worker: usize,
        /// The poisoned stream that was reset.
        old_stream: StreamId,
        /// The fresh replacement stream.
        new_stream: StreamId,
    },
    /// A job reached its terminal outcome.
    Complete {
        /// The job.
        job: JobId,
        /// Its tenant.
        tenant: Tenant,
        /// Outcome class.
        outcome: OutcomeTag,
    },
}

impl ServeEventKind {
    /// Short machine-readable tag for this event kind.
    pub fn tag(&self) -> &'static str {
        match self {
            ServeEventKind::Submit { .. } => "submit",
            ServeEventKind::Admit { .. } => "admit",
            ServeEventKind::Reject { .. } => "reject",
            ServeEventKind::Shed { .. } => "shed",
            ServeEventKind::BatchAssign { .. } => "batch_assign",
            ServeEventKind::Launch { .. } => "launch",
            ServeEventKind::Retry { .. } => "retry",
            ServeEventKind::Split { .. } => "split",
            ServeEventKind::StreamReset { .. } => "stream_reset",
            ServeEventKind::Complete { .. } => "complete",
        }
    }
}

/// One timestamped serving-layer event.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Device cycle at emission (same clock as the device trace).
    pub cycle: u64,
    /// Scheduling round at emission (0 before the first round).
    pub round: u64,
    /// What happened.
    pub kind: ServeEventKind,
}

impl ServeEvent {
    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("cycle", self.cycle)
            .u64("round", self.round)
            .str("event", self.kind.tag());
        match &self.kind {
            ServeEventKind::Submit { tenant, priority } => {
                w.u64("tenant", tenant.0 as u64)
                    .u64("priority", priority.0 as u64);
            }
            ServeEventKind::Admit {
                job,
                tenant,
                shape,
                priority,
                queue_depth,
            } => {
                w.u64("job", job.0)
                    .u64("tenant", tenant.0 as u64)
                    .str("shape", &shape.to_string())
                    .u64("priority", priority.0 as u64)
                    .u64("queue_depth", *queue_depth);
            }
            ServeEventKind::Reject { tenant, reason } => {
                w.u64("tenant", tenant.0 as u64).str("reason", reason.tag());
            }
            ServeEventKind::Shed {
                job,
                tenant,
                queue_depth,
            } => {
                w.u64("job", job.0)
                    .u64("tenant", tenant.0 as u64)
                    .u64("queue_depth", *queue_depth);
            }
            ServeEventKind::BatchAssign {
                job,
                batch,
                queue_depth,
            } => {
                w.u64("job", job.0)
                    .u64("batch", *batch)
                    .u64("queue_depth", *queue_depth);
            }
            ServeEventKind::Launch {
                batch,
                worker,
                stream,
                grid,
                jobs,
                attempt,
            } => {
                w.u64("batch", *batch)
                    .u64("worker", *worker as u64)
                    .u64("stream", stream.0 as u64)
                    .u64("grid", *grid)
                    .u64("jobs", *jobs)
                    .u64("attempt", *attempt as u64);
            }
            ServeEventKind::Retry {
                batch,
                attempt,
                not_before_round,
            } => {
                w.u64("batch", *batch)
                    .u64("attempt", *attempt as u64)
                    .u64("not_before_round", *not_before_round);
            }
            ServeEventKind::Split { batch, left, right } => {
                w.u64("batch", *batch)
                    .u64("left", *left)
                    .u64("right", *right);
            }
            ServeEventKind::StreamReset {
                worker,
                old_stream,
                new_stream,
            } => {
                w.u64("worker", *worker as u64)
                    .u64("old_stream", old_stream.0 as u64)
                    .u64("new_stream", new_stream.0 as u64);
            }
            ServeEventKind::Complete {
                job,
                tenant,
                outcome,
            } => {
                w.u64("job", job.0)
                    .u64("tenant", tenant.0 as u64)
                    .str("outcome", outcome.tag());
            }
        }
        w.end_obj();
        w.finish()
    }
}

/// One grid launched for a job, with its device join keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRef {
    /// Device grid handle.
    pub grid: u64,
    /// Stream it launched on.
    pub stream: usize,
    /// Worker that owned the launch.
    pub worker: usize,
    /// Cycle the host enqueued it.
    pub launch_cycle: u64,
}

/// The completed lifecycle of one admitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrail {
    /// The job.
    pub job: JobId,
    /// Its tenant.
    pub tenant: Tenant,
    /// Its kernel shape.
    pub shape: ShapeKey,
    /// Its priority.
    pub priority: Priority,
    /// Cycle it was admitted.
    pub submit_cycle: u64,
    /// Cycle it first joined a batch (None: terminated from the queue).
    pub batch_assign_cycle: Option<u64>,
    /// Cycle its batch first launched.
    pub first_launch_cycle: Option<u64>,
    /// Cycle it reached its terminal outcome.
    pub complete_cycle: u64,
    /// Outcome class.
    pub outcome: OutcomeTag,
    /// Every grid launched on its behalf (including failed attempts),
    /// oldest first; capped at [`MAX_TRAIL_GRIDS`].
    pub grids: Vec<GridRef>,
    /// Device execution cycles of the final successful grid, when it
    /// retired with a [`ggpu_sim::KernelRecord`].
    pub device_exec: Option<u64>,
    /// End-to-end cycles (complete - submit).
    pub e2e: u64,
}

/// Grids retained per job trail (retries on a poisoned batch are capped
/// by the service's attempt/split ladder, so this bound is generous).
const MAX_TRAIL_GRIDS: usize = 32;

/// One batch launch as a host-side span: launch to retire (or to the
/// settle cycle when the stream faulted and no record exists).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpan {
    /// Batch id.
    pub batch: u64,
    /// Worker index.
    pub worker: usize,
    /// Stream it ran on.
    pub stream: usize,
    /// Device grid handle.
    pub grid: u64,
    /// Kernel shape.
    pub shape: ShapeKey,
    /// Jobs fused into the grid.
    pub jobs: u64,
    /// Launch attempt (1-based).
    pub attempt: u32,
    /// Cycle the host enqueued the grid.
    pub launch_cycle: u64,
    /// Cycle the grid's first CTA dispatched (from its record), when known.
    pub start_cycle: Option<u64>,
    /// Retire cycle (from its record) or the settle cycle if it faulted.
    pub end_cycle: u64,
    /// Whether the stream came back faulted for this launch.
    pub faulted: bool,
}

impl BatchSpan {
    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("batch", self.batch)
            .u64("worker", self.worker as u64)
            .u64("stream", self.stream as u64)
            .u64("grid", self.grid)
            .str("shape", &self.shape.to_string())
            .u64("jobs", self.jobs)
            .u64("attempt", self.attempt as u64)
            .u64("launch_cycle", self.launch_cycle)
            .opt_u64("start_cycle", self.start_cycle)
            .u64("end_cycle", self.end_cycle)
            .bool("faulted", self.faulted);
        w.end_obj();
        w.finish()
    }
}

/// An in-flight job's accumulating lifecycle state.
#[derive(Debug, Clone)]
struct JobTrack {
    tenant: Tenant,
    shape: ShapeKey,
    priority: Priority,
    submit_cycle: u64,
    batch_assign_cycle: Option<u64>,
    first_launch_cycle: Option<u64>,
    grids: Vec<GridRef>,
}

/// The serving layer's telemetry state: bounded event log, per-job
/// tracks/trails, per-batch spans, grid timing joins, and the latency
/// histogram forest.
#[derive(Debug, Default)]
pub(crate) struct ServeTelemetry {
    events: Vec<ServeEvent>,
    capacity: usize,
    dropped: u64,
    round: u64,
    tracks: HashMap<JobId, JobTrack>,
    trails: Vec<JobTrail>,
    spans: Vec<BatchSpan>,
    /// Open spans: index into `spans` still awaiting an end cycle.
    open_spans: Vec<usize>,
    /// grid handle -> (start_cycle, retire_cycle), fed from KernelRecords.
    grid_times: HashMap<u64, (u64, u64)>,
    pub(crate) global: LatencyStats,
    pub(crate) per_tenant: BTreeMap<u32, LatencyStats>,
    pub(crate) per_shape: BTreeMap<ShapeKey, LatencyStats>,
    /// End-to-end histograms keyed by [`OutcomeTag`] order:
    /// done, shed, deadline_exceeded, failed.
    pub(crate) per_outcome: [crate::histogram::Histogram; 4],
}

fn outcome_slot(tag: OutcomeTag) -> usize {
    match tag {
        OutcomeTag::Done => 0,
        OutcomeTag::Shed => 1,
        OutcomeTag::DeadlineExceeded => 2,
        OutcomeTag::Failed => 3,
    }
}

impl ServeTelemetry {
    pub(crate) fn new(capacity: usize) -> Self {
        ServeTelemetry {
            capacity,
            ..Default::default()
        }
    }

    fn push(&mut self, cycle: u64, kind: ServeEventKind) {
        if self.events.len() < self.capacity {
            self.events.push(ServeEvent {
                cycle,
                round: self.round,
                kind,
            });
        } else {
            self.dropped += 1;
        }
    }

    pub(crate) fn events(&self) -> &[ServeEvent] {
        &self.events
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn trails(&self) -> &[JobTrail] {
        &self.trails
    }

    pub(crate) fn spans(&self) -> &[BatchSpan] {
        &self.spans
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.tracks.len()
    }

    pub(crate) fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Ingest newly retired kernel records for grid start/retire joins,
    /// and close any open batch span whose grid now has a record.
    pub(crate) fn ingest_records(&mut self, records: &[ggpu_sim::KernelRecord]) {
        for r in records {
            self.grid_times
                .insert(r.grid, (r.start_cycle, r.retire_cycle));
        }
        self.open_spans.retain(|&i| {
            let span = &mut self.spans[i];
            if let Some(&(start, retire)) = self.grid_times.get(&span.grid) {
                span.start_cycle = Some(start);
                span.end_cycle = retire;
                false
            } else {
                true
            }
        });
    }

    pub(crate) fn on_submit(&mut self, cycle: u64, tenant: Tenant, priority: Priority) {
        self.push(cycle, ServeEventKind::Submit { tenant, priority });
    }

    pub(crate) fn on_reject(&mut self, cycle: u64, tenant: Tenant, reason: RejectReason) {
        self.push(cycle, ServeEventKind::Reject { tenant, reason });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_admit(
        &mut self,
        cycle: u64,
        job: JobId,
        tenant: Tenant,
        shape: ShapeKey,
        priority: Priority,
        queue_depth: u64,
    ) {
        self.tracks.insert(
            job,
            JobTrack {
                tenant,
                shape,
                priority,
                submit_cycle: cycle,
                batch_assign_cycle: None,
                first_launch_cycle: None,
                grids: Vec::new(),
            },
        );
        self.push(
            cycle,
            ServeEventKind::Admit {
                job,
                tenant,
                shape,
                priority,
                queue_depth,
            },
        );
    }

    pub(crate) fn on_shed(&mut self, cycle: u64, job: JobId, tenant: Tenant, queue_depth: u64) {
        self.push(
            cycle,
            ServeEventKind::Shed {
                job,
                tenant,
                queue_depth,
            },
        );
    }

    pub(crate) fn on_batch_assign(&mut self, cycle: u64, job: JobId, batch: u64, queue_depth: u64) {
        if let Some(t) = self.tracks.get_mut(&job) {
            if t.batch_assign_cycle.is_none() {
                t.batch_assign_cycle = Some(cycle);
            }
        }
        self.push(
            cycle,
            ServeEventKind::BatchAssign {
                job,
                batch,
                queue_depth,
            },
        );
    }

    /// Record a launch: the event, the open batch span, and per-member
    /// grid refs. `members` are the batch's job ids.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_launch(
        &mut self,
        cycle: u64,
        batch: u64,
        worker: usize,
        stream: StreamId,
        grid: u64,
        shape: ShapeKey,
        attempt: u32,
        members: &[JobId],
    ) -> usize {
        for &job in members {
            if let Some(t) = self.tracks.get_mut(&job) {
                if t.first_launch_cycle.is_none() {
                    t.first_launch_cycle = Some(cycle);
                }
                if t.grids.len() < MAX_TRAIL_GRIDS {
                    t.grids.push(GridRef {
                        grid,
                        stream: stream.0,
                        worker,
                        launch_cycle: cycle,
                    });
                }
            }
        }
        self.push(
            cycle,
            ServeEventKind::Launch {
                batch,
                worker,
                stream,
                grid,
                jobs: members.len() as u64,
                attempt,
            },
        );
        let idx = self.spans.len();
        self.spans.push(BatchSpan {
            batch,
            worker,
            stream: stream.0,
            grid,
            shape,
            jobs: members.len() as u64,
            attempt,
            launch_cycle: cycle,
            start_cycle: None,
            end_cycle: cycle,
            faulted: false,
        });
        self.open_spans.push(idx);
        idx
    }

    /// Mark a launched span as faulted, ending at the settle cycle.
    pub(crate) fn on_span_faulted(&mut self, span: usize, cycle: u64) {
        if let Some(s) = self.spans.get_mut(span) {
            s.faulted = true;
            s.end_cycle = cycle;
        }
        self.open_spans.retain(|&i| i != span);
    }

    pub(crate) fn on_retry(&mut self, cycle: u64, batch: u64, attempt: u32, not_before_round: u64) {
        self.push(
            cycle,
            ServeEventKind::Retry {
                batch,
                attempt,
                not_before_round,
            },
        );
    }

    pub(crate) fn on_split(&mut self, cycle: u64, batch: u64, left: u64, right: u64) {
        self.push(cycle, ServeEventKind::Split { batch, left, right });
    }

    pub(crate) fn on_stream_reset(
        &mut self,
        cycle: u64,
        worker: usize,
        old_stream: StreamId,
        new_stream: StreamId,
    ) {
        self.push(
            cycle,
            ServeEventKind::StreamReset {
                worker,
                old_stream,
                new_stream,
            },
        );
    }

    /// Close a job's track into a trail, record its stage latencies into
    /// the histogram forest, and emit the Complete event.
    pub(crate) fn on_complete(&mut self, cycle: u64, job: JobId, tenant: Tenant, tag: OutcomeTag) {
        self.push(
            cycle,
            ServeEventKind::Complete {
                job,
                tenant,
                outcome: tag,
            },
        );
        let Some(track) = self.tracks.remove(&job) else {
            return;
        };
        let e2e = cycle.saturating_sub(track.submit_cycle);
        let queue_wait = track
            .batch_assign_cycle
            .map(|c| c.saturating_sub(track.submit_cycle));
        let batch_formation = match (track.batch_assign_cycle, track.first_launch_cycle) {
            (Some(a), Some(l)) => Some(l.saturating_sub(a)),
            _ => None,
        };
        let device_exec = if tag == OutcomeTag::Done {
            track
                .grids
                .last()
                .and_then(|g| self.grid_times.get(&g.grid))
                .map(|&(start, retire)| retire.saturating_sub(start))
        } else {
            None
        };
        for stats in [
            &mut self.global,
            self.per_tenant.entry(track.tenant.0).or_default(),
            self.per_shape.entry(track.shape).or_default(),
        ] {
            if let Some(v) = queue_wait {
                stats.queue_wait.record(v);
            }
            if let Some(v) = batch_formation {
                stats.batch_formation.record(v);
            }
            if let Some(v) = device_exec {
                stats.device_exec.record(v);
            }
            stats.e2e.record(e2e);
        }
        self.per_outcome[outcome_slot(tag)].record(e2e);
        self.trails.push(JobTrail {
            job,
            tenant: track.tenant,
            shape: track.shape,
            priority: track.priority,
            submit_cycle: track.submit_cycle,
            batch_assign_cycle: track.batch_assign_cycle,
            first_launch_cycle: track.first_launch_cycle,
            complete_cycle: cycle,
            outcome: tag,
            grids: track.grids,
            device_exec,
            e2e,
        });
    }
}
