//! Seeded synthetic traffic and throughput-mode driving.
//!
//! Two consumers share this module: the `ggpu-stat` telemetry CLI
//! (scenario replay) and the `ggpu-bench` measurement harness (the
//! sustained-traffic serving benchmark). Keeping the job-mix generator
//! here means both drive the *same* request population, so a latency
//! histogram in one and a throughput record in the other describe the
//! same workload.
//!
//! [`drive`] is the throughput-mode hook: it offers jobs to a
//! [`Service`] at a fixed per-round rate and — unlike an interactive
//! client — **does not retry** admission rejections. Rejected work is
//! dropped and counted, which is what makes the offered load an
//! independent variable: the service's completion rate, shed rate, and
//! latency distribution become functions of it.

use ggpu_sim::GpuConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{AdmitError, JobKind, Priority, ServeConfig, Service, ServiceDead, Tenant};

/// Reference-genome length the synthetic mix maps reads against.
pub const GENOME_LEN: usize = 600;
/// Fixed FM-index read length of the mix (bases).
pub const FM_READ_LEN: u32 = 16;
/// Fixed Pair-HMM read length of the mix (bases).
pub const PHMM_READ_LEN: u32 = 10;
/// Fixed Pair-HMM haplotype length of the mix (bases).
pub const PHMM_HAP_LEN: u32 = 14;
/// Tenants the mix round-robins submissions across.
pub const TENANTS: u32 = 4;

/// The service geometry every seeded scenario and benchmark starts
/// from: 3 workers, batches of 4, a 24-deep queue, and all three kernel
/// pipelines enabled against `genome` (2-bit codes). Callers tweak from
/// here (shrink the queue for overload, attach a fault plan, spread
/// over devices).
pub fn base_config(genome: &[u8]) -> ServeConfig {
    let mut cfg = ServeConfig::test_small();
    cfg.gpu = GpuConfig::test_small();
    cfg.gpu.watchdog_cycles = 10_000;
    cfg.workers = 3;
    cfg.queue_capacity = 24;
    cfg.tenant_quota = 64;
    cfg.max_batch = 4;
    cfg.fm_genome = genome.to_vec();
    cfg.fm_read_len = FM_READ_LEN;
    cfg.phmm_read_len = PHMM_READ_LEN;
    cfg.phmm_hap_len = PHMM_HAP_LEN;
    cfg
}

/// One seeded job; the mix cycles uniformly through all three kernel
/// shapes (pairwise alignment, FM-index mapping, Pair-HMM likelihood).
pub fn gen_job(genome: &[u8], rng: &mut StdRng) -> JobKind {
    match rng.gen_range(0..3u32) {
        0 => {
            let ql = rng.gen_range(6..60usize);
            let tl = rng.gen_range(6..60usize);
            JobKind::Pairwise {
                query: (0..ql).map(|_| rng.gen_range(0..4u8)).collect(),
                target: (0..tl).map(|_| rng.gen_range(0..4u8)).collect(),
            }
        }
        1 => {
            let s = rng.gen_range(0..genome.len() - FM_READ_LEN as usize);
            JobKind::FmMap {
                read: genome[s..s + FM_READ_LEN as usize].to_vec(),
            }
        }
        _ => {
            let hap: Vec<u8> = (0..PHMM_HAP_LEN).map(|_| rng.gen_range(0..4u8)).collect();
            let s = rng.gen_range(0..=(PHMM_HAP_LEN - PHMM_READ_LEN) as usize);
            let read = hap[s..s + PHMM_READ_LEN as usize].to_vec();
            let quals: Vec<u8> = (0..PHMM_READ_LEN)
                .map(|_| rng.gen_range(15..45u8))
                .collect();
            JobKind::PairHmm { read, quals, hap }
        }
    }
}

/// A fixed offered load: `per_round` jobs submitted before each
/// scheduling round until `total_jobs` have been offered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfferedLoad {
    /// Jobs offered per scheduling round.
    pub per_round: usize,
    /// Total jobs offered over the run.
    pub total_jobs: usize,
    /// Seed of the job mix (same seed ⇒ byte-identical submissions).
    pub seed: u64,
}

/// What [`drive`] observed, summarized from the service's own
/// conservation ledger after the queue drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Jobs offered (== `total_jobs`).
    pub offered: u64,
    /// Jobs past admission.
    pub admitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs refused at admission (queue full / quota / shape).
    pub rejected: u64,
    /// Admitted jobs shed by priority eviction.
    pub shed: u64,
    /// Scheduling rounds taken, including the drain tail.
    pub rounds: u64,
}

impl TrafficSummary {
    /// Fraction of offered work that did not complete because the
    /// service refused or shed it under load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.rejected + self.shed) as f64 / self.offered as f64
        }
    }
}

/// Offer `load` to `svc` and run until the service drains.
///
/// Admission rejections are dropped, not re-offered — the point of
/// throughput mode is to hold the offered load fixed and observe the
/// service. Returns the summary; errors only if the device itself dies
/// (a stream-scoped fault is the service's problem, not the driver's).
pub fn drive(
    svc: &mut Service,
    genome: &[u8],
    load: &OfferedLoad,
) -> Result<TrafficSummary, ServiceDead> {
    let mut rng = StdRng::seed_from_u64(load.seed ^ 0x5eed);
    let mut offered = 0u64;
    while (offered as usize) < load.total_jobs {
        let this_round = load.per_round.min(load.total_jobs - offered as usize);
        for _ in 0..this_round {
            let kind = gen_job(genome, &mut rng);
            let tenant = Tenant(offered as u32 % TENANTS);
            match svc.submit(tenant, Priority(1), None, kind) {
                Ok(_) | Err(AdmitError::Overloaded { .. }) => {}
                // Quota/shape refusals are still counted by the service;
                // the driver treats every rejection the same way: drop.
                Err(_) => {}
            }
            offered += 1;
        }
        svc.run_round()?;
    }
    svc.run_until_idle(10_000)?;
    let m = svc.metrics();
    Ok(TrafficSummary {
        offered,
        admitted: m.admitted,
        completed: m.completed,
        rejected: m.rejected_overload + m.rejected_quota + m.rejected_shape,
        shed: m.shed,
        rounds: m.rounds,
    })
}
