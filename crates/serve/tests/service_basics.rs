//! Functional tests for the serving layer: results match the CPU
//! oracles, admission control is typed, and priorities shed correctly.

use ggpu_genomics::{random_genome, sw_score, GapModel, PairHmm, Simple};
use ggpu_kernels::nvb::FmTables;
use ggpu_kernels::pairhmm::{GAP_EXT_P, GAP_OPEN_P};
use ggpu_kernels::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use ggpu_serve::{
    AdmitError, JobKind, JobOutcome, JobOutput, Priority, ServeConfig, Service, Tenant,
};
use rand::{Rng, SeedableRng};

fn rand_seq(rng: &mut rand::rngs::StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..4u8)).collect()
}

#[test]
fn pairwise_results_match_cpu_oracle() {
    let mut svc = Service::new(ServeConfig::test_small()).expect("build service");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut expected = Vec::new();
    for _ in 0..12 {
        // Mixed lengths to exercise both buckets and in-bucket padding.
        let ql = rng.gen_range(8..60usize);
        let tl = rng.gen_range(8..60usize);
        let q = rand_seq(&mut rng, ql);
        let t = rand_seq(&mut rng, tl);
        let subst = Simple::new(MATCH, MISMATCH);
        let gaps = GapModel::Affine {
            open: GAP_OPEN,
            extend: GAP_EXTEND,
        };
        expected.push(sw_score(&q, &t, &subst, gaps) as i64);
        svc.submit(
            Tenant(0),
            Priority(0),
            None,
            JobKind::Pairwise {
                query: q,
                target: t,
            },
        )
        .expect("admit");
    }
    svc.run_until_idle(100).expect("no device-wide fault");
    let outcomes = svc.take_outcomes();
    assert_eq!(outcomes.len(), expected.len());
    for ((id, outcome), want) in outcomes.iter().zip(&expected) {
        match outcome {
            JobOutcome::Done(JobOutput::Score(s)) => {
                assert_eq!(s, want, "{id}: wrong SW score");
            }
            other => panic!("{id}: expected Done(Score), got {other:?}"),
        }
    }
    let m = svc.metrics();
    assert_eq!(m.completed, 12);
    assert_eq!(m.failed + m.deadline_exceeded + m.shed, 0);
}

#[test]
fn fm_mapping_matches_cpu_oracle() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(22);
    let genome = random_genome(600, &mut rng);
    let mut cfg = ServeConfig::test_small();
    cfg.fm_genome = genome.codes().to_vec();
    cfg.fm_read_len = 16;
    let tables = FmTables::build(genome.codes());
    let mut svc = Service::new(cfg).expect("build service");
    let mut expected = Vec::new();
    for i in 0..10 {
        let read: Vec<u8> = if i % 3 == 2 {
            rand_seq(&mut rng, 16) // usually unmappable
        } else {
            let start = rng.gen_range(0..600 - 16);
            genome.codes()[start..start + 16].to_vec()
        };
        expected.push(tables.map_read(&read));
        svc.submit(Tenant(1), Priority(0), None, JobKind::FmMap { read })
            .expect("admit");
    }
    svc.run_until_idle(100).expect("no device-wide fault");
    for ((id, outcome), want) in svc.take_outcomes().iter().zip(&expected) {
        match outcome {
            JobOutcome::Done(JobOutput::Mapping { score, pos }) => {
                let packed = ((*score as u64) << 32) | *pos as u64;
                assert_eq!(packed, *want, "{id}: wrong mapping");
            }
            other => panic!("{id}: expected Done(Mapping), got {other:?}"),
        }
    }
}

#[test]
fn pairhmm_likelihoods_match_cpu_oracle() {
    let mut svc = Service::new(ServeConfig::test_small()).expect("build service");
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let hmm = PairHmm {
        gap_open: GAP_OPEN_P,
        gap_ext: GAP_EXT_P,
    };
    let mut expected = Vec::new();
    for _ in 0..6 {
        let hap = rand_seq(&mut rng, 14);
        let start = rng.gen_range(0..=4usize);
        let read: Vec<u8> = hap[start..start + 10].to_vec();
        let quals: Vec<u8> = (0..10).map(|_| rng.gen_range(15..45u8)).collect();
        expected.push(hmm.forward(&read, &quals, &hap));
        svc.submit(
            Tenant(2),
            Priority(0),
            None,
            JobKind::PairHmm { read, quals, hap },
        )
        .expect("admit");
    }
    svc.run_until_idle(100).expect("no device-wide fault");
    for ((id, outcome), want) in svc.take_outcomes().iter().zip(&expected) {
        match outcome {
            JobOutcome::Done(JobOutput::LogLik(got)) => {
                assert!(
                    got.is_finite() && (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{id}: log-lik {got} != {want}"
                );
            }
            other => panic!("{id}: expected Done(LogLik), got {other:?}"),
        }
    }
}

#[test]
fn overload_is_typed_and_sheds_by_priority() {
    let mut cfg = ServeConfig::test_small();
    cfg.queue_capacity = 4;
    cfg.tenant_quota = 100;
    let mut svc = Service::new(cfg).expect("build service");
    let job = |_p: u8| JobKind::Pairwise {
        query: vec![0, 1, 2, 3],
        target: vec![0, 1, 2, 3],
    };
    let low = svc
        .submit(Tenant(0), Priority(1), None, job(1))
        .expect("admit low");
    for _ in 0..3 {
        svc.submit(Tenant(0), Priority(2), None, job(2))
            .expect("admit");
    }
    // Queue full. Equal priority must be refused with a typed error...
    match svc.submit(Tenant(0), Priority(1), None, job(1)) {
        Err(AdmitError::Overloaded { retry_after_rounds }) => {
            assert!(retry_after_rounds >= 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // ...while a strictly higher priority sheds the lowest-priority job.
    let high = svc
        .submit(Tenant(0), Priority(5), None, job(5))
        .expect("high-priority arrival must be admitted");
    assert_eq!(svc.outcome(low), Some(&JobOutcome::Shed));
    svc.run_until_idle(100).expect("no device-wide fault");
    assert!(matches!(svc.outcome(high), Some(JobOutcome::Done(_))));
    let m = svc.metrics();
    assert_eq!(m.shed, 1);
    assert_eq!(m.rejected_overload, 1);
}

#[test]
fn quota_and_shape_rejections_are_typed() {
    let mut cfg = ServeConfig::test_small();
    cfg.tenant_quota = 2;
    let mut svc = Service::new(cfg).expect("build service");
    let pair = || JobKind::Pairwise {
        query: vec![0, 1],
        target: vec![2, 3],
    };
    svc.submit(Tenant(7), Priority(0), None, pair())
        .expect("1st");
    svc.submit(Tenant(7), Priority(0), None, pair())
        .expect("2nd");
    match svc.submit(Tenant(7), Priority(0), None, pair()) {
        Err(AdmitError::QuotaExceeded {
            tenant, in_flight, ..
        }) => {
            assert_eq!(tenant, Tenant(7));
            assert_eq!(in_flight, 2);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Other tenants are unaffected.
    svc.submit(Tenant(8), Priority(0), None, pair())
        .expect("other tenant admits");
    // Oversized and malformed jobs are refused by shape.
    match svc.submit(
        Tenant(8),
        Priority(0),
        None,
        JobKind::Pairwise {
            query: vec![0; 1000],
            target: vec![1; 1000],
        },
    ) {
        Err(AdmitError::TooLarge { len: 1000, max: 64 }) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
    match svc.submit(
        Tenant(8),
        Priority(0),
        None,
        JobKind::FmMap { read: vec![0; 16] },
    ) {
        Err(AdmitError::UnsupportedShape { .. }) => {} // no FM reference configured
        other => panic!("expected UnsupportedShape, got {other:?}"),
    }
    // Quota releases as jobs finish: after draining, tenant 7 can submit
    // again.
    svc.run_until_idle(100).expect("no device-wide fault");
    svc.submit(Tenant(7), Priority(0), None, pair())
        .expect("quota released after completion");
}

#[test]
fn metrics_conserve_submissions_and_track_saturation() {
    // Exercise every admission gate — overload, quota, shape, shedding —
    // then drain, and check the ServeMetrics conservation invariants:
    //   submitted == admitted + rejected_overload + rejected_quota
    //                + rejected_shape
    //   admitted  == completed + failed + deadline_exceeded + shed
    let mut cfg = ServeConfig::test_small();
    cfg.queue_capacity = 4;
    cfg.tenant_quota = 3;
    let mut svc = Service::new(cfg).expect("build service");
    let pair = |p: u8| JobKind::Pairwise {
        query: vec![p % 4; 8],
        target: vec![(p + 1) % 4; 8],
    };
    // Tenant 0 exhausts its quota (3 admitted, 4th refused).
    for _ in 0..3 {
        svc.submit(Tenant(0), Priority(1), None, pair(0))
            .expect("admit within quota");
    }
    assert!(matches!(
        svc.submit(Tenant(0), Priority(1), None, pair(0)),
        Err(AdmitError::QuotaExceeded { .. })
    ));
    // Tenant 1 fills the queue (1 more slot), then overloads it.
    svc.submit(Tenant(1), Priority(1), None, pair(1))
        .expect("fill the last slot");
    assert!(matches!(
        svc.submit(Tenant(1), Priority(1), None, pair(1)),
        Err(AdmitError::Overloaded { .. })
    ));
    // A higher-priority arrival sheds the lowest-priority queued job.
    svc.submit(Tenant(2), Priority(9), None, pair(2))
        .expect("high priority must shed its way in");
    // A malformed job is refused by shape.
    assert!(matches!(
        svc.submit(
            Tenant(2),
            Priority(0),
            None,
            JobKind::Pairwise {
                query: vec![0; 1000],
                target: vec![1; 1000],
            },
        ),
        Err(AdmitError::TooLarge { .. })
    ));
    svc.run_until_idle(100).expect("no device-wide fault");
    assert_eq!(svc.backlog(), 0);

    let m = svc.metrics();
    assert_eq!(
        m.submitted,
        m.admitted + m.rejected_overload + m.rejected_quota + m.rejected_shape,
        "admission is not total: {m:?}"
    );
    assert_eq!(
        m.admitted,
        m.completed + m.failed + m.deadline_exceeded + m.shed,
        "a drained service must account every admitted job: {m:?}"
    );
    assert_eq!(m.submitted, 8);
    assert_eq!(m.admitted, 5);
    assert_eq!(m.rejected_quota, 1);
    assert_eq!(m.rejected_overload, 1);
    assert_eq!(m.rejected_shape, 1);
    assert_eq!(m.shed, 1);
    // Every admitted job reached exactly one terminal outcome.
    assert_eq!(svc.take_outcomes().len(), m.admitted as usize);

    // Saturation gauges: the queue hit its bound while filling, and both
    // gauges return to zero once drained.
    assert_eq!(m.queue_depth_hwm, 4, "queue saturation went unrecorded");
    assert_eq!(m.queue_depth, 0);
    assert!(m.inflight_batches_hwm >= 1);
    assert_eq!(m.inflight_batches, 0);
}

#[test]
fn mixed_shapes_batch_separately_and_all_complete() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    let genome = random_genome(400, &mut rng);
    let mut cfg = ServeConfig::test_small();
    cfg.fm_genome = genome.codes().to_vec();
    cfg.max_batch = 4;
    let mut svc = Service::new(cfg).expect("build service");
    let mut n = 0;
    for i in 0..18 {
        let kind = match i % 3 {
            0 => JobKind::Pairwise {
                query: rand_seq(&mut rng, 20),
                target: rand_seq(&mut rng, 24),
            },
            1 => {
                let start = rng.gen_range(0..400 - 16);
                JobKind::FmMap {
                    read: genome.codes()[start..start + 16].to_vec(),
                }
            }
            _ => {
                let hap = rand_seq(&mut rng, 14);
                JobKind::PairHmm {
                    read: hap[..10].to_vec(),
                    quals: vec![30; 10],
                    hap,
                }
            }
        };
        svc.submit(Tenant(i % 4), Priority(0), None, kind)
            .expect("admit");
        n += 1;
    }
    svc.run_until_idle(200).expect("no device-wide fault");
    let outcomes = svc.take_outcomes();
    assert_eq!(outcomes.len(), n);
    assert!(outcomes
        .iter()
        .all(|(_, o)| matches!(o, JobOutcome::Done(_))));
    // Fused batching actually happened: fewer grids than jobs.
    let m = svc.metrics();
    assert!(m.batches_launched < n as u64);
    // Every grid record is stamped with a non-default stream.
    assert!(svc.kernel_records().iter().all(|r| r.stream >= 1));
}

#[test]
fn device_allocations_stay_flat_across_shape_changes() {
    // The request path must never allocate device memory: worker slabs
    // are built once in `Service::new` and recycled across every batch
    // and every shape. Run waves of each shape in rotation and pin the
    // per-device allocation counters after the first full rotation.
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let genome = random_genome(400, &mut rng);
    let mut cfg = ServeConfig::test_small();
    cfg.fm_genome = genome.codes().to_vec();
    let mut svc = Service::new(cfg).expect("build service");
    let wave = |svc: &mut Service, shape: usize, rng: &mut rand::rngs::StdRng| {
        for _ in 0..4 {
            let kind = match shape {
                0 => JobKind::Pairwise {
                    query: rand_seq(rng, 20),
                    target: rand_seq(rng, 24),
                },
                1 => JobKind::Pairwise {
                    // The other length bucket: a different kernel and
                    // different slab strides on the same worker slabs.
                    query: rand_seq(rng, 50),
                    target: rand_seq(rng, 60),
                },
                2 => {
                    let start = rng.gen_range(0..400 - 16);
                    JobKind::FmMap {
                        read: genome.codes()[start..start + 16].to_vec(),
                    }
                }
                _ => {
                    let hap = rand_seq(rng, 14);
                    JobKind::PairHmm {
                        read: hap[..10].to_vec(),
                        quals: vec![30; 10],
                        hap,
                    }
                }
            };
            svc.submit(Tenant(0), Priority(0), None, kind)
                .expect("admit");
        }
        svc.run_until_idle(200).expect("no device-wide fault");
    };
    // Warmup: every shape has executed at least once.
    for shape in 0..4 {
        wave(&mut svc, shape, &mut rng);
    }
    let warm = svc.device_alloc_counts();
    // Keep rotating shapes: no shape change may allocate device memory.
    for round in 0..3 {
        for shape in 0..4 {
            wave(&mut svc, shape, &mut rng);
            assert_eq!(
                svc.device_alloc_counts(),
                warm,
                "allocation count grew in round {round} after switching to shape {shape}"
            );
        }
    }
    assert!(
        matches!(svc.metrics().completed, n if n == 16 + 3 * 16),
        "all waves completed"
    );
}
