//! Whole-GPU configuration (Tables I and II) with the RTX 3070 baseline.

use ggpu_icnt::IcntConfig;
use ggpu_mem::{CacheConfig, DramConfig, WritePolicy};
use ggpu_sm::SmConfig;

/// Host-to-device interconnect (PCIe) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieConfig {
    /// Fixed per-transfer latency in GPU cycles (driver + DMA setup).
    pub latency: u64,
    /// Transfer bandwidth in bytes per GPU cycle.
    pub bytes_per_cycle: f64,
}

impl Default for PcieConfig {
    /// ~PCIe 4.0 x16 at a 1.5 GHz GPU clock.
    fn default() -> Self {
        PcieConfig {
            latency: 2_000,
            bytes_per_cycle: 12.0,
        }
    }
}

/// Deterministic fault-injection plan, for exercising the error paths of
/// the device model (and of harnesses built on it) without crafting a
/// faulty kernel.
///
/// All knobs default to `None` (no injection). Injection is deterministic:
/// the same plan over the same workload faults at the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Treat `[start, end)` as unmapped: any access overlapping the range
    /// raises an illegal-address fault even inside a live allocation.
    pub poison: Option<(u64, u64)>,
    /// Silently drop the Nth (0-based) memory reply packet. The owning warp
    /// waits forever and the watchdog reports the hang.
    pub drop_reply: Option<u64>,
    /// From this cycle on, report the CDP pending-launch queue as full, so
    /// the next device-side launch faults with a queue overflow.
    pub cdp_full_at: Option<u64>,
    /// Drop the Nth (0-based) PCIe transfer: the `try_memcpy_*` call
    /// returns [`crate::SimError::MemcpyDropped`] without moving any data.
    /// H2D and D2H transfers share one counter, in call order. Not sticky —
    /// the caller can simply retry (exercises host-side retry logic).
    pub drop_memcpy: Option<u64>,
    /// Corrupt the Nth (0-based) PCIe transfer: the call succeeds but every
    /// payload byte is XORed with `0xA5` (H2D corrupts what lands in device
    /// memory, D2H corrupts what the host reads back). Shares the transfer
    /// counter with [`FaultPlan::drop_memcpy`].
    pub poison_memcpy: Option<u64>,
}

/// Full GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of SMs ("shader cores" in Table I; 78 in the paper's setup).
    pub n_sms: usize,
    /// Number of memory partitions (L2 slice + DRAM channel each).
    pub n_partitions: usize,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Per-partition L2 slice geometry (total L2 = slice × partitions).
    pub l2_slice: CacheConfig,
    /// Per-partition DRAM channel.
    pub dram: DramConfig,
    /// Interconnect configuration (shared by request and reply networks).
    pub icnt: IcntConfig,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// Host-side kernel-launch overhead in cycles (driver + setup); burned
    /// before each grid's CTAs begin dispatching.
    pub kernel_launch_overhead: u64,
    /// Device-side (CDP) child-launch overhead in cycles.
    pub cdp_launch_overhead: u64,
    /// Flush L1/L2 between host kernel launches, modelling the locality
    /// loss across `cudaMemcpy` boundaries the paper describes in §IV-G.
    pub flush_between_kernels: bool,
    /// PCIe model.
    pub pcie: PcieConfig,
    /// GPU clock in GHz, used only to convert cycles to seconds in reports.
    pub clock_ghz: f64,
    /// Forward-progress watchdog: if no SM issues an instruction and no
    /// memory-system activity is observed for this many consecutive cycles,
    /// `try_synchronize` returns a deadlock report instead of spinning.
    pub watchdog_cycles: u64,
    /// Device memory capacity in bytes; `try_malloc` beyond it fails.
    pub memory_limit: u64,
    /// CDP pending-launch queue capacity (as `cudaLimitDevRuntimePendingLaunchCount`).
    pub cdp_queue_limit: usize,
    /// Maximum CDP nesting depth (as `cudaLimitDevRuntimeSyncDepth`).
    pub cdp_max_depth: u32,
    /// Deterministic fault injection (testing / hardening harnesses).
    pub fault_plan: FaultPlan,
    /// Interval-sampler period in cycles; `0` (the default) disables
    /// sampling entirely — the only cost on the disabled path is one
    /// branch per device cycle.
    pub sample_interval_cycles: u64,
    /// Interval-sample ring capacity; once full, the oldest sample is
    /// evicted (and counted in `samples_dropped`).
    pub sample_ring_capacity: usize,
    /// Record a structured event trace into the built-in in-memory buffer.
    /// Off by default; custom sinks can be installed regardless via
    /// [`crate::Gpu::set_trace_sink`].
    pub trace: bool,
    /// Built-in trace-buffer capacity in events (terminal fault/deadlock
    /// events are retained past it).
    pub trace_capacity: usize,
    /// Also emit an event per L2 line fill from DRAM. High frequency;
    /// off by default so traces stay kernel-granular.
    pub trace_cache_fills: bool,
    /// Worker threads the cycle engine shards SMs across. `1` runs the
    /// classic single-threaded loop. Any value produces bit-identical
    /// [`crate::RunStats`], profiles, and traces — SMs tick against a
    /// read-only memory snapshot and their outputs merge in deterministic
    /// (SM index, issue order) — so this is purely a wall-clock knob.
    /// Clamped to the SM count at `synchronize` time (see
    /// [`GpuConfig::resolved_sim_threads`]). [`GpuConfig::rtx3070`] seeds
    /// it from the `GGPU_SIM_THREADS` environment variable when set,
    /// falling back to the host's available parallelism.
    pub sim_threads: usize,
    /// Idle-cycle fast-forward: when no SM can issue and no queue, channel,
    /// or dispatcher can change state before a provably-known future cycle,
    /// `synchronize` jumps the clock to that cycle and credits the skipped
    /// span to every counter at once. Every statistic, profile, sample, and
    /// trace is bit-identical with this on or off (the skip only elides
    /// cycles whose outcome is already determined), so it defaults to on;
    /// the switch exists for A/B validation and engine debugging.
    pub fast_forward: bool,
    /// Stream-isolation mode: enforce *canonical kernel boundaries* so a
    /// grid's timing and counters depend only on the device configuration
    /// and the grid itself, never on what ran before it on other streams.
    /// Concretely: (a) a finished host grid retires only once every
    /// in-flight effect (network packets, DRAM requests, SM outstanding
    /// loads) has drained; (b) at each host-grid arm the SM scheduler
    /// cursors and the CTA dispatch cursor reset, and (with
    /// [`GpuConfig::flush_between_kernels`]) DRAM open rows close alongside
    /// the cache flush. Off by default — the legacy engine retires grids
    /// the cycle their last CTA completes, which is faster but lets row
    /// state and cursor positions leak across kernels. `ggpu-serve` turns
    /// this on: it is what makes a non-faulted stream's results bit-equal
    /// to a fault-free run even when sibling streams fault and retry.
    pub stream_isolation: bool,
    /// Keep a per-kernel [`crate::KernelRecord`] for every retired grid
    /// even when tracing, sampling, and attribution are all off. Serving
    /// harnesses use the records as their per-batch accounting ledger.
    pub kernel_records: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::rtx3070()
    }
}

impl GpuConfig {
    /// The paper's baseline: RTX 3070 per Table I (78 shader cores, 128KB
    /// L1, 4MB L2, FR-FCFS, local crossbar, 40B flits).
    pub fn rtx3070() -> Self {
        GpuConfig {
            n_sms: 78,
            n_partitions: 8,
            sm: SmConfig::default(),
            // 4MB / 8 partitions = 512KB per slice, 16-way. Write-through keeps
            // the store path simple (stores stream to DRAM, loads allocate).
            l2_slice: CacheConfig::new(512 * 1024, 16, WritePolicy::WriteThrough),
            dram: DramConfig::default(),
            icnt: IcntConfig::default(),
            l2_latency: 90,
            kernel_launch_overhead: 3_000,
            cdp_launch_overhead: 500,
            flush_between_kernels: true,
            pcie: PcieConfig::default(),
            clock_ghz: 1.5,
            watchdog_cycles: 50_000,
            memory_limit: 8 << 30,
            cdp_queue_limit: 2048,
            cdp_max_depth: 24,
            fault_plan: FaultPlan::default(),
            sample_interval_cycles: 0,
            sample_ring_capacity: 4096,
            trace: false,
            trace_capacity: 1 << 20,
            trace_cache_fills: false,
            sim_threads: sim_threads_from_env(),
            fast_forward: true,
            stream_isolation: false,
            kernel_records: false,
        }
    }

    /// A small configuration for fast unit tests (4 SMs, 2 partitions).
    pub fn test_small() -> Self {
        GpuConfig {
            n_sms: 4,
            n_partitions: 2,
            kernel_launch_overhead: 100,
            cdp_launch_overhead: 50,
            ..Self::rtx3070()
        }
    }

    /// Set total L1 (per SM) and total L2 sizes, keeping geometry rules from
    /// Table I (the Figure 12-14 cache sweep).
    pub fn with_cache_sizes(mut self, l1_bytes: u64, l2_total_bytes: u64) -> Self {
        self.sm.l1.bytes = l1_bytes;
        self.l2_slice.bytes = l2_total_bytes / self.n_partitions as u64;
        self
    }

    /// Scale SM resources (CTAs, threads, registers, shared memory) to
    /// `percent` of the baseline — the Figure 11 CTA sweep.
    pub fn with_cta_scale(mut self, percent: u32) -> Self {
        let base = SmConfig::default();
        self.sm.max_ctas = (base.max_ctas * percent / 100).max(1);
        self.sm.max_threads = (base.max_threads * percent / 100).max(32);
        self.sm.registers = (base.registers * percent / 100).max(1024);
        self.sm.smem_bytes = (base.smem_bytes * percent / 100).max(1024);
        self
    }

    /// Set the engine's worker-thread count (clamped to at least 1); see
    /// [`GpuConfig::sim_threads`].
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads.max(1);
        self
    }

    /// Enable or disable idle-cycle fast-forward; see
    /// [`GpuConfig::fast_forward`]. On by default — turning it off forces
    /// the engine to tick every cycle (A/B validation and debugging).
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Enable or disable stream-isolation mode (canonical kernel
    /// boundaries); see [`GpuConfig::stream_isolation`].
    pub fn with_stream_isolation(mut self, on: bool) -> Self {
        self.stream_isolation = on;
        self
    }

    /// Keep per-kernel records regardless of other profiling knobs; see
    /// [`GpuConfig::kernel_records`].
    pub fn with_kernel_records(mut self, on: bool) -> Self {
        self.kernel_records = on;
        self
    }

    /// Enable or disable per-PC attribution (the code axis of
    /// [`crate::ProfileReport`]); shorthand for setting
    /// [`ggpu_sm::SmConfig::attribution`].
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.sm.attribution = on;
        self
    }

    /// The worker-thread count the engine will actually use: `sim_threads`
    /// clamped to `[1, n_sms]`. Harnesses record this, not the raw knob,
    /// so results stay interpretable on hosts with fewer cores than SMs.
    pub fn resolved_sim_threads(&self) -> usize {
        self.sim_threads.clamp(1, self.n_sms.max(1))
    }

    /// Total L2 capacity across partitions.
    pub fn l2_total(&self) -> u64 {
        self.l2_slice.bytes * self.n_partitions as u64
    }
}

/// Default engine thread count: `GGPU_SIM_THREADS` when set to a positive
/// integer, otherwise the host's available parallelism (the engine is
/// bit-identical at any thread count, so defaulting to all cores is safe).
fn sim_threads_from_env() -> usize {
    std::env::var("GGPU_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = GpuConfig::rtx3070();
        assert_eq!(c.n_sms, 78);
        assert_eq!(c.sm.max_ctas, 32);
        assert_eq!(c.sm.max_threads, 1536);
        assert_eq!(c.sm.registers, 65536);
        assert_eq!(c.sm.smem_bytes, 100 * 1024);
        assert_eq!(c.sm.l1.bytes, 128 * 1024);
        assert_eq!(c.l2_total(), 4 * 1024 * 1024);
        assert_eq!(c.icnt.flit_bytes, 40);
    }

    #[test]
    fn robustness_defaults() {
        let c = GpuConfig::rtx3070();
        assert_eq!(c.watchdog_cycles, 50_000);
        assert_eq!(c.memory_limit, 8 << 30);
        assert_eq!(c.cdp_queue_limit, 2048);
        assert_eq!(c.cdp_max_depth, 24);
        assert_eq!(c.fault_plan, FaultPlan::default());
        assert!(c.fault_plan.poison.is_none());
        assert!(c.fault_plan.drop_memcpy.is_none());
        assert!(c.fault_plan.poison_memcpy.is_none());
        assert!(!c.stream_isolation, "legacy boundaries by default");
        assert!(!c.kernel_records);
        assert!(c.with_stream_isolation(true).stream_isolation);
        assert!(
            GpuConfig::rtx3070()
                .with_kernel_records(true)
                .kernel_records
        );
    }

    #[test]
    fn profiling_is_off_by_default() {
        let c = GpuConfig::rtx3070();
        assert_eq!(c.sample_interval_cycles, 0);
        assert_eq!(c.sample_ring_capacity, 4096);
        assert!(!c.trace);
        assert_eq!(c.trace_capacity, 1 << 20);
        assert!(!c.trace_cache_fills);
    }

    #[test]
    fn cache_sweep_builder() {
        let c = GpuConfig::rtx3070().with_cache_sizes(0, 128 * 1024);
        assert_eq!(c.sm.l1.bytes, 0);
        assert_eq!(c.l2_total(), 128 * 1024);
    }

    #[test]
    fn sim_threads_builder_clamps_to_one() {
        // The default comes from GGPU_SIM_THREADS (the CI matrix sets it),
        // so only assert it is sane, not that it equals 1.
        assert!(GpuConfig::rtx3070().sim_threads >= 1);
        assert_eq!(GpuConfig::rtx3070().with_sim_threads(4).sim_threads, 4);
        assert_eq!(GpuConfig::rtx3070().with_sim_threads(0).sim_threads, 1);
    }

    #[test]
    fn resolved_sim_threads_clamps_to_sm_count() {
        let c = GpuConfig::test_small().with_sim_threads(64);
        assert_eq!(c.resolved_sim_threads(), 4);
        assert_eq!(
            GpuConfig::rtx3070()
                .with_sim_threads(4)
                .resolved_sim_threads(),
            4
        );
    }

    #[test]
    fn fast_forward_defaults_on() {
        assert!(GpuConfig::rtx3070().fast_forward);
        assert!(GpuConfig::test_small().fast_forward);
        assert!(!GpuConfig::rtx3070().with_fast_forward(false).fast_forward);
    }

    #[test]
    fn attribution_builder_and_default() {
        assert!(!GpuConfig::rtx3070().sm.attribution);
        assert!(GpuConfig::rtx3070().with_attribution(true).sm.attribution);
    }

    #[test]
    fn cta_scale_builder() {
        let c = GpuConfig::rtx3070().with_cta_scale(50);
        assert_eq!(c.sm.max_ctas, 16);
        assert_eq!(c.sm.max_threads, 768);
        let c2 = GpuConfig::rtx3070().with_cta_scale(200);
        assert_eq!(c2.sm.max_ctas, 64);
    }
}
