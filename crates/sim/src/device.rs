//! The whole-GPU device: SM cluster, interconnect, L2 partitions, DRAM
//! channels, CTA dispatcher, CDP runtime, and the host API.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use ggpu_icnt::Icnt;
use ggpu_isa::{FaultKind, Kernel, KernelId, LaunchDims, Program};
use ggpu_mem::{Cache, CacheOutcome, Dram, LINE_BYTES};
use ggpu_sm::{CtaConfig, MemRequest, ReqKind, SmCore, TickOutput, Trap, WarpReport, WarpWait};

use crate::config::GpuConfig;
use crate::error::{DeadlockReport, DeviceFault, LaunchProblem, SimError};
use crate::memory::{DeviceMemory, DevicePtr};
use crate::profile::{IntervalSample, KernelRecord, ProfileReport, Sampler};
use crate::stats::{HostStats, RunStats};
use crate::trace::{CopyDir, TraceBuffer, TraceEvent, TraceEventKind, TraceSink};

/// Absolute backstop on simulated cycles per `synchronize`. The configurable
/// forward-progress watchdog ([`GpuConfig::watchdog_cycles`]) normally fires
/// long before this; the backstop only matters if a workload keeps producing
/// token progress (e.g. one instruction every few thousand cycles) forever.
const MAX_SYNC_CYCLES: u64 = 2_000_000_000;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A request packet arrived at its memory partition.
    L2Arrive {
        sm: usize,
        id: u64,
        addr: u64,
        kind: u8,
        tex: bool,
    },
    /// A reply packet arrived back at its SM.
    Reply { sm: usize, id: u64 },
}

/// Where trace events go. [`SinkSlot::Off`] keeps the disabled path at a
/// single branch per emission site.
#[derive(Debug)]
enum SinkSlot {
    /// Tracing disabled (the default).
    Off,
    /// The built-in in-memory buffer ([`GpuConfig::trace`]).
    Buffer(TraceBuffer),
    /// A user-installed sink ([`Gpu::set_trace_sink`]).
    Custom(Box<dyn TraceSink>),
}

#[derive(Debug)]
enum DramTarget {
    /// Fill an L2 line and answer the waiters registered under it.
    Fill { part: usize, line: u64 },
    /// Pure write traffic; nothing to do on completion.
    Write,
}

#[derive(Debug)]
struct Grid {
    kernel: KernelId,
    dims: LaunchDims,
    params: Arc<Vec<u64>>,
    const_data: Arc<Vec<u8>>,
    local_base: u64,
    local_stride: u64,
    next_cta: u64,
    done_ctas: u64,
    /// `(sm, slot, parent grid handle)` for CDP children.
    parent: Option<(usize, usize, u64)>,
    /// Earliest cycle CTAs may dispatch (launch overhead); `None` until the
    /// grid reaches the head of its queue.
    armed_at: Option<u64>,
    from_host: bool,
    /// CDP nesting depth: 0 for host grids, parent + 1 for children.
    depth: u32,
    /// Cycle at which the grid was enqueued.
    launch_cycle: u64,
    /// Cycle at which the first CTA dispatched; `None` until then.
    start_cycle: Option<u64>,
}

impl Grid {
    fn fully_dispatched(&self) -> bool {
        self.next_cta >= self.dims.num_ctas()
    }
    fn finished(&self) -> bool {
        self.fully_dispatched() && self.done_ctas >= self.dims.num_ctas()
    }
}

/// The simulated GPU plus its host-side API.
///
/// A typical benchmark host program:
///
/// 1. [`Gpu::new`] with a [`Program`] and [`GpuConfig`],
/// 2. [`Gpu::malloc`] / [`Gpu::memcpy_h2d`] to stage inputs,
/// 3. [`Gpu::launch`] one or more grids, [`Gpu::synchronize`] to run them,
/// 4. [`Gpu::memcpy_d2h`] to fetch results, [`Gpu::stats`] for counters.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    program: Arc<Program>,
    sms: Vec<SmCore>,
    mem: DeviceMemory,
    l2: Vec<Cache>,
    dram: Vec<Dram>,
    icnt_req: Icnt,
    icnt_rep: Icnt,
    cycle: u64,
    events: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    ev_seq: u64,
    host_queue: VecDeque<u64>,
    device_queue: VecDeque<u64>,
    grids: HashMap<u64, Grid>,
    next_grid: u64,
    const_bindings: HashMap<u32, Arc<Vec<u8>>>,
    /// (partition, line) → (sm, req id) entries awaiting an L2 fill.
    l2_waiters: HashMap<(usize, u64), Vec<(usize, u64)>>,
    /// DRAM requests in flight, by channel-unique key.
    dram_inflight: HashMap<u64, DramTarget>,
    next_dram_key: u64,
    /// Per-partition overflow queue when a DRAM channel's queue is full.
    dram_wait: Vec<VecDeque<(u64, u64)>>,
    dispatch_cursor: usize,
    host: HostStats,
    /// Sticky device fault (CUDA semantics): once set, every device-touching
    /// API call returns it until [`Gpu::reset_fault`].
    fault: Option<SimError>,
    /// Last cycle at which the forward-progress watchdog observed activity.
    last_progress: u64,
    /// Replies sent so far, for deterministic drop-the-Nth injection.
    replies_sent: u64,
    /// Where trace events go ([`SinkSlot::Off`] unless tracing is on).
    sink: SinkSlot,
    /// Per-kernel records, in retire order (collected while profiling is
    /// enabled).
    records: Vec<KernelRecord>,
    /// Counter snapshot at the last retire boundary (or stats reset); the
    /// base of the next kernel record's delta.
    record_base: RunStats,
    /// Interval sampler, present only when
    /// [`GpuConfig::sample_interval_cycles`] is non-zero.
    sampler: Option<Sampler>,
}

impl Gpu {
    /// Build a GPU running `program` under `config`.
    pub fn new(program: Program, config: GpuConfig) -> Self {
        program
            .validate()
            .unwrap_or_else(|(name, e)| panic!("kernel `{name}` invalid: {e}"));
        let program = Arc::new(program);
        let sms = (0..config.n_sms)
            .map(|_| SmCore::new(config.sm, Arc::clone(&program)))
            .collect();
        let l2 = (0..config.n_partitions)
            .map(|_| Cache::new(config.l2_slice))
            .collect();
        let dram = (0..config.n_partitions)
            .map(|_| Dram::new(config.dram))
            .collect();
        let icnt_req = Icnt::new(config.icnt, config.n_sms, config.n_partitions);
        let icnt_rep = Icnt::new(config.icnt, config.n_sms, config.n_partitions);
        let mut mem = DeviceMemory::new();
        mem.set_poison(config.fault_plan.poison);
        Gpu {
            sms,
            mem,
            l2,
            dram,
            icnt_req,
            icnt_rep,
            cycle: 0,
            events: BinaryHeap::new(),
            ev_seq: 0,
            host_queue: VecDeque::new(),
            device_queue: VecDeque::new(),
            grids: HashMap::new(),
            next_grid: 1,
            const_bindings: HashMap::new(),
            l2_waiters: HashMap::new(),
            dram_inflight: HashMap::new(),
            next_dram_key: 0,
            dram_wait: vec![VecDeque::new(); config.n_partitions],
            dispatch_cursor: 0,
            host: HostStats::default(),
            fault: None,
            last_progress: 0,
            replies_sent: 0,
            sink: if config.trace {
                SinkSlot::Buffer(TraceBuffer::new(config.trace_capacity))
            } else {
                SinkSlot::Off
            },
            records: Vec::new(),
            record_base: RunStats::default(),
            sampler: (config.sample_interval_cycles > 0)
                .then(|| Sampler::new(config.sample_interval_cycles, config.sample_ring_capacity)),
            config,
            program,
        }
    }

    /// The configuration the GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The program loaded on the device.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Functional device memory (for test setup/inspection).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Mutable functional device memory.
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    // ---- host API -------------------------------------------------------
    //
    // Each operation comes in a fallible `try_*` flavour returning
    // `Result<_, SimError>` and a thin panicking wrapper keeping the
    // original signature. Guest faults and deadlocks are *sticky*: after
    // one, every `try_*` call returns the same error until `reset_fault`.

    /// Allocate device memory, failing when the configured capacity
    /// ([`GpuConfig::memory_limit`]) would be exceeded.
    ///
    /// Allocation failure is *not* sticky (as in CUDA): the device stays
    /// usable and smaller allocations may still succeed.
    pub fn try_malloc(&mut self, bytes: u64) -> Result<DevicePtr, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let in_use = self.mem.allocated();
        if bytes.saturating_add(in_use) > self.config.memory_limit {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                in_use,
                limit: self.config.memory_limit,
            });
        }
        Ok(self.mem.alloc(bytes))
    }

    /// Allocate device memory.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_malloc`] would return an error.
    pub fn malloc(&mut self, bytes: u64) -> DevicePtr {
        self.try_malloc(bytes)
            .unwrap_or_else(|e| panic!("malloc failed: {e}"))
    }

    /// Copy host data to the device (one PCI transaction).
    pub fn try_memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> Result<(), SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        self.mem.write_slice(dst, data);
        let cost = self.config.pcie.latency
            + (data.len() as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.h2d_bytes += data.len() as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::H2D,
                bytes: data.len() as u64,
                cycles: cost,
            });
        }
        Ok(())
    }

    /// Copy host data to the device (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) {
        self.try_memcpy_h2d(dst, data)
            .unwrap_or_else(|e| panic!("memcpy_h2d failed: {e}"));
    }

    /// Copy device data back to the host (one PCI transaction).
    pub fn try_memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Result<Vec<u8>, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let cost =
            self.config.pcie.latency + (len as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.d2h_bytes += len as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::D2H,
                bytes: len as u64,
                cycles: cost,
            });
        }
        Ok(self.mem.read_slice(src, len))
    }

    /// Copy device data back to the host (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Vec<u8> {
        self.try_memcpy_d2h(src, len)
            .unwrap_or_else(|e| panic!("memcpy_d2h failed: {e}"))
    }

    /// Bind a constant-memory image to a kernel (as `cudaMemcpyToSymbol`
    /// would); inherited by CDP children of the same kernel id.
    pub fn bind_constants(&mut self, kernel: KernelId, data: Vec<u8>) {
        self.const_bindings.insert(kernel.0, Arc::new(data));
    }

    /// Validate a launch configuration against the program and the SM
    /// resource limits; `Err` carries the specific [`LaunchProblem`].
    fn validate_launch(
        &self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<(), SimError> {
        let k = match self.program.get(kernel) {
            Some(k) => k,
            None => {
                return Err(SimError::InvalidLaunch {
                    kernel: format!("k{}", kernel.0),
                    problem: LaunchProblem::UnknownKernel,
                })
            }
        };
        let invalid = |problem| SimError::InvalidLaunch {
            kernel: k.name.clone(),
            problem,
        };
        let tpc = dims.threads_per_cta();
        if dims.num_ctas() == 0 || tpc == 0 {
            return Err(invalid(LaunchProblem::ZeroDimension));
        }
        let sm = &self.config.sm;
        if tpc > sm.max_threads {
            return Err(invalid(LaunchProblem::TooManyThreads {
                requested: tpc,
                limit: sm.max_threads,
            }));
        }
        let regs = k.regs_per_thread.saturating_mul(tpc);
        if regs > sm.registers {
            return Err(invalid(LaunchProblem::RegistersExceeded {
                requested: regs,
                limit: sm.registers,
            }));
        }
        if k.smem_per_cta > sm.smem_bytes {
            return Err(invalid(LaunchProblem::SharedMemExceeded {
                requested: k.smem_per_cta,
                limit: sm.smem_bytes,
            }));
        }
        let required = k.param_words_required();
        if params.len() < required {
            return Err(invalid(LaunchProblem::ParamCountMismatch {
                required,
                provided: params.len(),
            }));
        }
        Ok(())
    }

    /// Enqueue a grid on the default stream (serialized with prior host
    /// launches) after validating the configuration. Returns the grid
    /// handle.
    pub fn try_launch(
        &mut self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<u64, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        self.validate_launch(kernel, dims, params)?;
        let program = Arc::clone(&self.program);
        let k: &Kernel = program.kernel(kernel);
        let (local_base, local_stride) = self.alloc_local_arena(k, dims);
        let const_data = self
            .const_bindings
            .get(&kernel.0)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()));
        let handle = self.next_grid;
        self.next_grid += 1;
        self.grids.insert(
            handle,
            Grid {
                kernel,
                dims,
                params: Arc::new(params.to_vec()),
                const_data,
                local_base,
                local_stride,
                next_cta: 0,
                done_ctas: 0,
                parent: None,
                armed_at: None,
                from_host: true,
                depth: 0,
                launch_cycle: self.cycle,
                start_cycle: None,
            },
        );
        self.host_queue.push_back(handle);
        self.host.kernel_launches += 1;
        if self.trace_on() {
            self.emit(TraceEventKind::KernelLaunch {
                grid: handle,
                kernel: self.kernel_name(kernel),
                ctas: dims.num_ctas(),
                threads_per_cta: dims.threads_per_cta(),
            });
        }
        Ok(handle)
    }

    /// Enqueue a grid on the default stream. Returns the grid handle.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_launch`] would return an error (unknown
    /// kernel, invalid configuration, or a prior sticky fault).
    pub fn launch(&mut self, kernel: KernelId, dims: LaunchDims, params: &[u64]) -> u64 {
        self.try_launch(kernel, dims, params)
            .unwrap_or_else(|e| panic!("launch failed: {e}"))
    }

    /// Run the device until all launched grids complete; returns elapsed
    /// kernel cycles.
    ///
    /// When a warp raises a guest fault, the device drains in-flight work,
    /// enters the (sticky) fault state, and this returns the
    /// [`SimError::DeviceFault`]. When the forward-progress watchdog sees
    /// no activity for [`GpuConfig::watchdog_cycles`] consecutive cycles,
    /// the device is halted the same way and this returns a
    /// [`SimError::Deadlock`] with a per-warp blocked-state report. Either
    /// way the `Gpu` stays usable after [`Gpu::reset_fault`].
    pub fn try_synchronize(&mut self) -> Result<u64, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let start = self.cycle;
        self.last_progress = self.cycle;
        while self.busy() {
            self.tick();
            if let Some(f) = self.fault.clone() {
                self.host.kernel_cycles += self.cycle - start;
                self.flush_sample();
                return Err(f);
            }
            let stalled = self.cycle - self.last_progress;
            if stalled >= self.config.watchdog_cycles || self.cycle - start >= MAX_SYNC_CYCLES {
                let err = SimError::Deadlock(Box::new(self.deadlock_report(stalled)));
                self.fault = Some(err.clone());
                if self.trace_on() {
                    self.emit(TraceEventKind::Deadlock {
                        stalled_for: stalled,
                    });
                }
                self.halt_device();
                self.host.kernel_cycles += self.cycle - start;
                self.flush_sample();
                return Err(err);
            }
        }
        let elapsed = self.cycle - start;
        self.host.kernel_cycles += elapsed;
        self.flush_sample();
        Ok(elapsed)
    }

    /// Run the device until all launched grids complete; returns elapsed
    /// kernel cycles.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_synchronize`] would return an error (guest
    /// fault or deadlock).
    pub fn synchronize(&mut self) -> u64 {
        self.try_synchronize()
            .unwrap_or_else(|e| panic!("synchronize failed: {e}"))
    }

    /// Convenience: launch one grid and synchronize.
    pub fn try_run_kernel(
        &mut self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<u64, SimError> {
        self.try_launch(kernel, dims, params)?;
        self.try_synchronize()
    }

    /// Convenience: launch one grid and synchronize.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_run_kernel`] would return an error.
    pub fn run_kernel(&mut self, kernel: KernelId, dims: LaunchDims, params: &[u64]) -> u64 {
        self.try_run_kernel(kernel, dims, params)
            .unwrap_or_else(|e| panic!("kernel failed: {e}"))
    }

    /// The sticky fault the device is currently in, if any.
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Clear the sticky fault state and return it. The device was already
    /// halted and drained when the fault was raised, so it is immediately
    /// ready for new launches (memory contents and statistics survive).
    pub fn reset_fault(&mut self) -> Option<SimError> {
        self.fault.take()
    }

    /// Whether any work remains on the device.
    pub fn busy(&self) -> bool {
        !self.grids.is_empty()
            || !self.events.is_empty()
            || self.sms.iter().any(|s| !s.is_idle() || s.has_outstanding())
            || self.dram.iter().any(|d| !d.is_idle())
            || self.dram_wait.iter().any(|q| !q.is_empty())
    }

    // ---- statistics -------------------------------------------------------

    /// Snapshot all counters.
    pub fn stats(&self) -> RunStats {
        let mut r = RunStats {
            host: self.host,
            icnt_req: *self.icnt_req.stats(),
            icnt_rep: *self.icnt_rep.stats(),
            ..RunStats::default()
        };
        for sm in &self.sms {
            r.sm.merge(sm.stats());
            RunStats::merge_cache(&mut r.l1, sm.l1_stats());
        }
        for l2 in &self.l2 {
            RunStats::merge_cache(&mut r.l2, l2.stats());
        }
        for d in &self.dram {
            RunStats::merge_dram(&mut r.dram, d.stats());
        }
        r
    }

    /// Reset every statistic (not memory contents or cache tags), including
    /// per-kernel records, interval samples, and the trace buffer.
    pub fn reset_stats(&mut self) {
        self.host = HostStats::default();
        for sm in &mut self.sms {
            let _ = sm.take_stats();
            sm.reset_cache_stats();
        }
        for l2 in &mut self.l2 {
            l2.reset_stats();
        }
        for d in &mut self.dram {
            d.reset_stats();
        }
        self.icnt_req.reset_stats();
        self.icnt_rep.reset_stats();
        self.records.clear();
        self.record_base = RunStats::default();
        if let Some(s) = &mut self.sampler {
            let interval = s.interval;
            let capacity = s.capacity;
            *s = Sampler::new(interval, capacity);
            s.last_boundary = self.cycle;
        }
        if let SinkSlot::Buffer(b) = &mut self.sink {
            let _ = b.take();
        }
    }

    // ---- profiling --------------------------------------------------------

    /// Whether the profiling layer is collecting anything: a trace sink is
    /// installed and/or interval sampling is on. Per-kernel records are
    /// collected exactly while this is true. Profiling never changes
    /// simulated timing or [`Gpu::stats`] — with everything disabled the
    /// per-cycle cost is a single branch.
    pub fn profiling_enabled(&self) -> bool {
        self.trace_on() || self.sampler.is_some()
    }

    /// Install a custom trace sink (replacing the built-in buffer if
    /// [`GpuConfig::trace`] was set). The sink sees every event from now on.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = SinkSlot::Custom(sink);
    }

    /// Per-kernel counter records collected so far, in retire order.
    pub fn kernel_records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Completed interval samples currently in the ring, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &IntervalSample> + '_ {
        self.sampler.iter().flat_map(|s| s.ring.iter())
    }

    /// Samples evicted from the ring so far.
    pub fn samples_dropped(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.dropped)
    }

    /// Events recorded by the built-in trace buffer (empty when tracing is
    /// off or a custom sink is installed).
    pub fn trace_events(&self) -> &[TraceEvent] {
        match &self.sink {
            SinkSlot::Buffer(b) => b.events(),
            _ => &[],
        }
    }

    /// Take everything the profiler has collected as one machine-readable
    /// [`ProfileReport`], leaving the profiler empty (subsequent records and
    /// samples start from the current counter values).
    pub fn take_profile(&mut self) -> ProfileReport {
        self.flush_sample();
        let stats = self.stats();
        let (samples, samples_dropped) = match &mut self.sampler {
            Some(s) => (
                std::mem::take(&mut s.ring).into_iter().collect(),
                std::mem::take(&mut s.dropped),
            ),
            None => (Vec::new(), 0),
        };
        let (events, events_dropped) = match &mut self.sink {
            SinkSlot::Buffer(b) => b.take(),
            _ => (Vec::new(), 0),
        };
        self.record_base = stats.clone();
        ProfileReport {
            stats,
            clock_ghz: self.config.clock_ghz,
            kernels: std::mem::take(&mut self.records),
            samples,
            samples_dropped,
            events,
            events_dropped,
        }
    }

    #[inline]
    fn trace_on(&self) -> bool {
        !matches!(self.sink, SinkSlot::Off)
    }

    /// Hand one event to the installed sink. Callers guard with
    /// [`Gpu::trace_on`] so the disabled path never constructs an event.
    fn emit(&mut self, kind: TraceEventKind) {
        let ev = TraceEvent {
            cycle: self.cycle,
            kind,
        };
        match &mut self.sink {
            SinkSlot::Off => {}
            SinkSlot::Buffer(b) => b.event(&ev),
            SinkSlot::Custom(s) => s.event(&ev),
        }
    }

    /// Display name for a kernel id.
    fn kernel_name(&self, id: KernelId) -> String {
        self.program
            .get(id)
            .map(|k| k.name.clone())
            .unwrap_or_else(|| format!("k{}", id.0))
    }

    /// Close the sampler's partial trailing window (no-op when sampling is
    /// off or no cycles elapsed since the last boundary).
    fn flush_sample(&mut self) {
        if self.sampler.is_some() {
            let snap = self.stats();
            if let Some(s) = &mut self.sampler {
                s.close_window(self.cycle, &snap);
            }
        }
    }

    // ---- internals --------------------------------------------------------

    #[inline]
    fn partition_of(&self, addr: u64) -> usize {
        ((addr / 256) % self.config.n_partitions as u64) as usize
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        self.ev_seq += 1;
        self.events.push(Reverse((time, self.ev_seq, ev)));
    }

    fn route_request(&mut self, sm: usize, req: MemRequest) {
        let part = self.partition_of(req.addr);
        let bytes = match req.kind {
            ReqKind::Load => 32,
            ReqKind::Store => 8 + LINE_BYTES as u32,
            ReqKind::Atomic => 40,
        };
        let t = self.icnt_req.send(
            self.icnt_req.src_node(sm),
            self.icnt_req.dst_node(part),
            bytes,
            self.cycle,
        );
        let kind = match req.kind {
            ReqKind::Load => 0,
            ReqKind::Store => 1,
            ReqKind::Atomic => 2,
        };
        self.push_event(
            t.max(self.cycle + 1),
            Ev::L2Arrive {
                sm,
                id: req.id,
                addr: req.addr,
                kind,
                tex: req.tex,
            },
        );
    }

    fn enqueue_dram(&mut self, part: usize, addr: u64, target: DramTarget) {
        let key = self.next_dram_key;
        self.next_dram_key += 1;
        self.dram_inflight.insert(key, target);
        if !self.dram[part].push(key, addr, self.cycle) {
            self.dram_wait[part].push_back((key, addr));
        }
    }

    fn send_reply(&mut self, part: usize, sm: usize, id: u64, extra_delay: u64) {
        let n = self.replies_sent;
        self.replies_sent += 1;
        if self.config.fault_plan.drop_reply == Some(n) {
            // Injected loss: the waiting warp never unblocks and the
            // watchdog reports the hang.
            return;
        }
        let t = self.icnt_rep.send(
            self.icnt_rep.dst_node(part),
            self.icnt_rep.src_node(sm),
            8 + LINE_BYTES as u32,
            self.cycle + extra_delay,
        );
        self.push_event(t.max(self.cycle + 1), Ev::Reply { sm, id });
    }

    fn handle_l2_arrive(&mut self, sm: usize, id: u64, addr: u64, kind: u8, tex: bool) {
        let part = self.partition_of(addr);
        let line = addr / LINE_BYTES;
        match kind {
            // Load or atomic: read path through L2.
            0 | 2 => match self.l2[part].access(addr, false) {
                CacheOutcome::Hit => {
                    self.send_reply(part, sm, id, self.config.l2_latency);
                }
                CacheOutcome::MshrMerged => {
                    self.l2_waiters
                        .entry((part, line))
                        .or_default()
                        .push((sm, id));
                }
                _ => {
                    self.l2_waiters
                        .entry((part, line))
                        .or_default()
                        .push((sm, id));
                    self.enqueue_dram(part, addr, DramTarget::Fill { part, line });
                }
            },
            // Store: write-through L2 (update on hit, stream to DRAM).
            _ => {
                let _ = self.l2[part].access(addr, true);
                let _ = tex;
                self.enqueue_dram(part, addr, DramTarget::Write);
            }
        }
    }

    fn dram_tick(&mut self) {
        for part in 0..self.dram.len() {
            // Feed waiting requests as queue space opens.
            while let Some(&(key, addr)) = self.dram_wait[part].front() {
                if self.dram[part].push(key, addr, self.cycle) {
                    self.dram_wait[part].pop_front();
                } else {
                    break;
                }
            }
            for key in self.dram[part].tick(self.cycle) {
                match self.dram_inflight.remove(&key) {
                    Some(DramTarget::Fill { part, line }) => {
                        self.l2[part].fill(line * LINE_BYTES, false);
                        if self.config.trace_cache_fills && self.trace_on() {
                            self.emit(TraceEventKind::CacheFill {
                                partition: part as u64,
                                addr: line * LINE_BYTES,
                            });
                        }
                        if let Some(waiters) = self.l2_waiters.remove(&(part, line)) {
                            for (sm, id) in waiters {
                                self.send_reply(part, sm, id, 0);
                            }
                        }
                    }
                    Some(DramTarget::Write) | None => {}
                }
            }
        }
    }

    fn arm_and_dispatch(&mut self) {
        // CDP children dispatch immediately (after their overhead window).
        let device_handles: Vec<u64> = self.device_queue.iter().copied().collect();
        for h in device_handles {
            self.dispatch_grid(h);
        }
        self.device_queue.retain(|h| {
            self.grids
                .get(h)
                .map(|g| !g.fully_dispatched())
                .unwrap_or(false)
        });

        // Host grids serialize on the default stream: only the head runs.
        if let Some(&head) = self.host_queue.front() {
            let arm = {
                let g = self.grids.get_mut(&head).expect("head grid exists");
                if g.armed_at.is_none() {
                    g.armed_at = Some(self.cycle + self.config.kernel_launch_overhead);
                    true
                } else {
                    false
                }
            };
            if arm && self.config.flush_between_kernels {
                for sm in &mut self.sms {
                    sm.flush_caches();
                }
                for l2 in &mut self.l2 {
                    l2.flush();
                }
            }
            self.dispatch_grid(head);
        }
    }

    fn dispatch_grid(&mut self, handle: u64) {
        let (kernel_id, dims, params, const_data, local_base, local_stride, mut next_cta, armed) = {
            let g = match self.grids.get(&handle) {
                Some(g) => g,
                None => return,
            };
            if g.armed_at.map(|t| self.cycle < t).unwrap_or(true) || g.fully_dispatched() {
                return;
            }
            (
                g.kernel,
                g.dims,
                Arc::clone(&g.params),
                Arc::clone(&g.const_data),
                g.local_base,
                g.local_stride,
                g.next_cta,
                true,
            )
        };
        debug_assert!(armed);
        let total = dims.num_ctas();
        let n_sms = self.sms.len();
        let mut failures = 0;
        while next_cta < total && failures < n_sms {
            let sm = self.dispatch_cursor % n_sms;
            self.dispatch_cursor += 1;
            let cfg = CtaConfig {
                kernel_id,
                grid_handle: handle,
                cta_linear: next_cta,
                dims,
                params: Arc::clone(&params),
                const_data: Arc::clone(&const_data),
                local_base,
                local_stride,
            };
            if self.sms[sm].try_launch_cta(cfg) {
                next_cta += 1;
                failures = 0;
            } else {
                failures += 1;
            }
        }
        let mut started = false;
        if let Some(g) = self.grids.get_mut(&handle) {
            g.next_cta = next_cta;
            if g.start_cycle.is_none() && next_cta > 0 {
                g.start_cycle = Some(self.cycle);
                started = true;
            }
        }
        if started && self.trace_on() {
            self.emit(TraceEventKind::KernelStart { grid: handle });
        }
    }

    /// Allocate a grid's local-memory arena, returning `(base, stride)`.
    ///
    /// The per-thread stride is rounded up to 8 bytes and the arena is sized
    /// in whole warps: the warp-interleaved layout places same-granule
    /// accesses of all 32 lanes adjacently, so an unaligned stride (or a
    /// partial final warp) would otherwise reach past the allocation and
    /// trip the architectural bounds check.
    fn alloc_local_arena(&mut self, k: &Kernel, dims: LaunchDims) -> (u64, u64) {
        let local_stride = (k.local_bytes_per_thread as u64).next_multiple_of(8);
        if local_stride == 0 {
            return (0, 0);
        }
        let warp_slots = dims.num_ctas() * dims.warps_per_cta() as u64;
        let base = self
            .mem
            .alloc(local_stride * warp_slots * ggpu_isa::WARP_SIZE as u64)
            .0;
        (base, local_stride)
    }

    // ---- fault handling ---------------------------------------------------

    /// Compose the host-facing error for a warp trap raised on SM `sm`.
    fn fault_from_trap(&self, sm: usize, t: &Trap) -> SimError {
        let kernel = self
            .program
            .get(t.kernel)
            .map(|k| k.name.clone())
            .unwrap_or_else(|| format!("k{}", t.kernel.0));
        SimError::DeviceFault(Box::new(DeviceFault {
            kind: t.kind,
            kernel,
            sm,
            cta: Some(t.cta_linear),
            warp: Some(t.warp),
            warp_in_cta: Some(t.warp_in_cta),
            lane_mask: Some(t.lane_mask),
            pc: Some(t.pc),
            instr: t.instr.clone(),
            addr: t.addr,
            cycle: self.cycle,
        }))
    }

    /// Halt the device after a fault: abort resident work on every SM, drop
    /// queued grids and in-flight packets, and drain the DRAM channels so
    /// the device returns to a clean idle state. Memory contents, cache
    /// tags, and statistics survive.
    fn halt_device(&mut self) {
        for sm in &mut self.sms {
            sm.abort_workload();
        }
        self.events.clear();
        self.host_queue.clear();
        self.device_queue.clear();
        self.grids.clear();
        self.l2_waiters.clear();
        self.dram_inflight.clear();
        for q in &mut self.dram_wait {
            q.clear();
        }
        // Drain DRAM off the device clock; completions are discarded since
        // their waiters were just aborted. Bounded: one issue per cycle and
        // bounded per-request latency, the cap is never the limiter.
        let mut t = self.cycle;
        let deadline = self.cycle + 1_000_000;
        while self.dram.iter().any(|d| !d.is_idle()) && t < deadline {
            t += 1;
            for d in &mut self.dram {
                let _ = d.tick(t);
            }
        }
    }

    /// Snapshot everything a deadlock post-mortem needs. Must run *before*
    /// [`Gpu::halt_device`] wipes the state it describes.
    fn deadlock_report(&self, stalled_for: u64) -> DeadlockReport {
        let mut warps: Vec<WarpReport> = Vec::new();
        for (i, sm) in self.sms.iter().enumerate() {
            warps.extend(
                sm.warp_report(i)
                    .into_iter()
                    .filter(|w| w.wait != WarpWait::Done),
            );
        }
        DeadlockReport {
            cycle: self.cycle,
            stalled_for,
            warps,
            host_queue: self.host_queue.len(),
            device_queue: self.device_queue.len(),
            events_in_flight: self.events.len(),
            outstanding_requests: self.sms.iter().map(|s| s.outstanding_requests()).sum(),
            dram_queued: self.dram.iter().map(|d| d.queue_depth()).sum::<usize>()
                + self.dram_wait.iter().map(|q| q.len()).sum::<usize>(),
        }
    }

    fn grid_done(&mut self, handle: u64) {
        let grid = match self.grids.remove(&handle) {
            Some(g) => g,
            None => return,
        };
        if self.profiling_enabled() {
            // Per-kernel counter scoping by retire interval: this record's
            // delta covers everything since the previous retire boundary, so
            // record deltas telescope to the run totals.
            let snap = self.stats();
            let delta = snap.delta_since(&self.record_base);
            self.record_base = snap;
            self.records.push(KernelRecord {
                grid: handle,
                kernel: self.kernel_name(grid.kernel),
                kernel_id: grid.kernel.0,
                ctas: grid.dims.num_ctas(),
                threads_per_cta: grid.dims.threads_per_cta(),
                parent: grid.parent.map(|(_, _, p)| p),
                depth: grid.depth,
                launch_cycle: grid.launch_cycle,
                start_cycle: grid.start_cycle.unwrap_or(grid.launch_cycle),
                retire_cycle: self.cycle,
                stats: delta,
            });
        }
        if self.trace_on() {
            self.emit(TraceEventKind::KernelRetire { grid: handle });
        }
        if let Some((sm, slot, parent_handle)) = grid.parent {
            self.sms[sm].child_grid_done(slot, Some(parent_handle));
            if self.trace_on() {
                self.emit(TraceEventKind::CdpDrain {
                    parent: parent_handle,
                    child: handle,
                });
            }
        }
        if grid.from_host {
            debug_assert_eq!(self.host_queue.front(), Some(&handle));
            self.host_queue.pop_front();
        }
    }

    /// Advance the device one cycle. No-op while the device is in the fault
    /// state (until [`Gpu::reset_fault`]).
    pub fn tick(&mut self) {
        if self.fault.is_some() {
            return;
        }
        self.cycle += 1;
        let now = self.cycle;

        // 1. Deliver due network events.
        while let Some(Reverse((t, _, _))) = self.events.peek() {
            if *t > now {
                break;
            }
            let Reverse((_, _, ev)) = self.events.pop().expect("peeked");
            match ev {
                Ev::L2Arrive {
                    sm,
                    id,
                    addr,
                    kind,
                    tex,
                } => self.handle_l2_arrive(sm, id, addr, kind, tex),
                Ev::Reply { sm, id } => self.sms[sm].mem_response(id, now),
            }
        }

        // 2. DRAM channels.
        self.dram_tick();

        // 3. CTA dispatch (children first, then the head host grid).
        self.arm_and_dispatch();

        // 4. SM cores.
        let device_busy = self
            .grids
            .values()
            .any(|g| !g.fully_dispatched() || g.armed_at.map(|t| now < t).unwrap_or(true));
        let mut out = TickOutput::default();
        let mut first_trap: Option<(usize, Trap)> = None;
        for sm in 0..self.sms.len() {
            self.sms[sm].tick(now, &mut self.mem, device_busy, &mut out);
            let requests = std::mem::take(&mut out.mem_requests);
            for req in requests {
                self.route_request(sm, req);
            }
            let launches = std::mem::take(&mut out.launches);
            for l in launches {
                self.spawn_child(sm, l);
            }
            let completed = std::mem::take(&mut out.completed);
            for c in completed {
                if let Some(g) = self.grids.get_mut(&c.grid_handle) {
                    g.done_ctas += 1;
                    if g.finished() {
                        self.grid_done(c.grid_handle);
                    }
                }
            }
            for t in std::mem::take(&mut out.traps) {
                if first_trap.is_none() {
                    first_trap = Some((sm, t));
                }
            }
        }

        // 5. Fault resolution: the first trap of the cycle (or a CDP-limit
        // fault raised in `spawn_child`) puts the device into the sticky
        // fault state and halts it.
        if self.fault.is_none() {
            if let Some((sm, t)) = first_trap {
                self.fault = Some(self.fault_from_trap(sm, &t));
                if self.trace_on() {
                    self.emit(TraceEventKind::Fault {
                        kind: t.kind,
                        kernel: self.kernel_name(t.kernel),
                    });
                }
            }
        }
        if self.fault.is_some() {
            self.halt_device();
            return;
        }

        // 6. Forward-progress watchdog bookkeeping. Progress means: an
        // instruction issued, a network packet is still in flight, a DRAM
        // channel is working, or a grid is waiting out its launch overhead.
        let progress = out.issued > 0
            || !self.events.is_empty()
            || self.dram.iter().any(|d| !d.is_idle())
            || self
                .grids
                .values()
                .any(|g| g.armed_at.is_some_and(|t| t > now));
        if progress {
            self.last_progress = now;
        }

        // 7. Interval sampler: close a window at each absolute multiple of
        // the sampling period. One branch when sampling is off.
        if self.config.sample_interval_cycles != 0
            && now.is_multiple_of(self.config.sample_interval_cycles)
        {
            self.flush_sample();
        }
    }

    fn spawn_child(&mut self, parent_sm: usize, l: ggpu_sm::DeviceLaunch) {
        if self.fault.is_some() {
            return;
        }
        let parent = self.grids.get(&l.parent_grid);
        let depth = parent.map(|g| g.depth).unwrap_or(0) + 1;
        let forced_full = self
            .config
            .fault_plan
            .cdp_full_at
            .is_some_and(|c| self.cycle >= c);
        let queue_full = forced_full || self.device_queue.len() >= self.config.cdp_queue_limit;
        let too_deep = depth > self.config.cdp_max_depth;
        if queue_full || too_deep {
            let kind = if queue_full {
                FaultKind::CdpQueueOverflow
            } else {
                FaultKind::CdpNestingExceeded
            };
            let kernel = parent
                .map(|g| g.kernel)
                .and_then(|k| self.program.get(k))
                .map(|k| k.name.clone())
                .unwrap_or_else(|| "?".to_string());
            self.fault = Some(SimError::DeviceFault(Box::new(DeviceFault {
                kind,
                kernel: kernel.clone(),
                sm: parent_sm,
                cta: None,
                warp: None,
                warp_in_cta: None,
                lane_mask: None,
                pc: None,
                instr: format!("launch k{} grid {} block {}", l.kernel, l.grid_x, l.block_x),
                addr: None,
                cycle: self.cycle,
            })));
            if self.trace_on() {
                self.emit(TraceEventKind::Fault { kind, kernel });
            }
            return;
        }
        let kernel = KernelId(l.kernel);
        let program = Arc::clone(&self.program);
        let k = match program.get(kernel) {
            Some(k) => k,
            None => return,
        };
        let dims = LaunchDims::linear(l.grid_x, l.block_x);
        let (local_base, local_stride) = self.alloc_local_arena(k, dims);
        let const_data = self
            .const_bindings
            .get(&l.kernel)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()));
        let handle = self.next_grid;
        self.next_grid += 1;
        self.grids.insert(
            handle,
            Grid {
                kernel,
                dims,
                params: Arc::new(l.params),
                const_data,
                local_base,
                local_stride,
                next_cta: 0,
                done_ctas: 0,
                parent: Some((parent_sm, l.parent_slot, l.parent_grid)),
                armed_at: Some(self.cycle + self.config.cdp_launch_overhead),
                from_host: false,
                depth,
                launch_cycle: self.cycle,
                start_cycle: None,
            },
        );
        self.device_queue.push_back(handle);
        if self.trace_on() {
            self.emit(TraceEventKind::CdpEnqueue {
                grid: handle,
                kernel: self.kernel_name(kernel),
                parent: l.parent_grid,
                depth,
                ctas: dims.num_ctas(),
                threads_per_cta: dims.threads_per_cta(),
            });
        }
    }
}
