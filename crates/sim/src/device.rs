//! The whole-GPU device: SM cluster, interconnect, L2 partitions, DRAM
//! channels, CTA dispatcher, CDP runtime, and the host API.
//!
//! This file is the facade: the [`Gpu`] state and its construction,
//! accessors, statistics, and profiling surface. The behaviour lives in
//! focused submodules:
//!
//! * [`engine`] — the per-cycle loop (event delivery, DRAM, SM phase,
//!   commit), `synchronize`, and fault/deadlock handling.
//! * [`launch`] — grid validation/queueing, CTA dispatch, and the CDP
//!   runtime.
//! * [`memcpy`] — host transfers: `malloc`, `memcpy_h2d`/`d2h`, constant
//!   binding, and the PCIe cost model.
//! * [`parallel`] — the SM-sharded multi-threaded executor behind
//!   [`GpuConfig::sim_threads`], plus the lane/shard plumbing shared with
//!   the single-threaded path.

mod engine;
mod fastforward;
mod launch;
mod memcpy;
mod parallel;

pub use self::launch::LaunchOptions;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ggpu_icnt::{DeliveryQueue, Icnt};
use ggpu_isa::{KernelId, Program};
use ggpu_mem::{Cache, Dram};
use ggpu_sm::{SmCore, SmPorts};

use crate::config::GpuConfig;
use crate::error::SimError;
use crate::memory::DeviceMemory;
use crate::profile::{
    IntervalSample, KernelPcProfile, KernelRecord, PartitionUnit, PcProfile, PcProfileRow,
    ProfileReport, Sampler, SmUnit, UnitProfile,
};
use crate::stats::{HostStats, RunStats};
use crate::trace::{TraceBuffer, TraceEvent, TraceEventKind, TraceSink};

use self::engine::{DramTarget, Ev};
use self::launch::Grid;
use self::memcpy::InboundCopy;
use self::parallel::{LaneSet, SmLane};

/// Identifier of a host-side stream. Stream 0 is the default stream every
/// [`Gpu::launch`] targets; additional streams come from
/// [`Gpu::create_stream`]. Grids on different streams still execute one at
/// a time (the device arbitrates round-robin between stream queues), but
/// faults are scoped: a guest fault, deadlock, or deadline overrun poisons
/// only the owning stream, and [`Gpu::reset_stream`] recovers it while
/// other streams' results stay bit-identical to a fault-free run (under
/// [`GpuConfig::stream_isolation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

impl StreamId {
    /// The default stream (CUDA's stream 0).
    pub const DEFAULT: StreamId = StreamId(0);
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream {}", self.0)
    }
}

/// Per-stream host state: the FIFO of queued grid handles and the stream's
/// sticky fault, if any.
#[derive(Debug, Default)]
struct StreamState {
    queue: VecDeque<u64>,
    fault: Option<SimError>,
}

/// Where trace events go. [`SinkSlot::Off`] keeps the disabled path at a
/// single branch per emission site.
#[derive(Debug)]
enum SinkSlot {
    /// Tracing disabled (the default).
    Off,
    /// The built-in in-memory buffer ([`GpuConfig::trace`]).
    Buffer(TraceBuffer),
    /// A user-installed sink ([`Gpu::set_trace_sink`]).
    Custom(Box<dyn TraceSink>),
}

/// The simulated GPU plus its host-side API.
///
/// A typical benchmark host program:
///
/// 1. [`Gpu::new`] with a [`Program`] and [`GpuConfig`],
/// 2. [`Gpu::malloc`] / [`Gpu::memcpy_h2d`] to stage inputs,
/// 3. [`Gpu::launch`] one or more grids, [`Gpu::synchronize`] to run them,
/// 4. [`Gpu::memcpy_d2h`] to fetch results, [`Gpu::stats`] for counters.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    program: Arc<Program>,
    /// One lane per SM: the core plus its port pair. All SM traffic crosses
    /// the ports, so lanes can tick concurrently against a read-only memory
    /// snapshot (see [`parallel`]).
    lanes: Vec<SmLane>,
    mem: DeviceMemory,
    l2: Vec<Cache>,
    dram: Vec<Dram>,
    icnt_req: Icnt,
    icnt_rep: Icnt,
    cycle: u64,
    /// In-flight network packets, popped in (time, insertion) order.
    events: DeliveryQueue<Ev>,
    /// Peer-to-peer payloads in flight *towards* this device over the node
    /// fabric, applied to memory in the serial post phase at their exact
    /// arrival cycle ([`crate::GpuNode::try_p2p_copy`] stamps them).
    pending_inbound: DeliveryQueue<InboundCopy>,
    /// Host streams; index 0 is the default stream (the legacy host queue).
    streams: Vec<StreamState>,
    /// Stream whose head grid currently owns the device (armed or running),
    /// `None` between host grids.
    active_stream: Option<usize>,
    /// Round-robin arbitration cursor over `streams`.
    stream_cursor: usize,
    /// Finished host grid awaiting canonical-idle retirement
    /// ([`GpuConfig::stream_isolation`] two-phase drain); `None` otherwise.
    draining: Option<u64>,
    device_queue: VecDeque<u64>,
    grids: HashMap<u64, Grid>,
    next_grid: u64,
    /// Retired local-memory arenas available for reuse, as `(size, base)`.
    /// Exact-size recycling keyed off the launch geometry keeps steady-state
    /// serving at zero allocations per batch (see
    /// [`crate::DeviceMemory::alloc_count`]).
    free_arenas: Vec<(u64, u64)>,
    const_bindings: HashMap<u32, Arc<Vec<u8>>>,
    /// (partition, line) → (sm, req id) entries awaiting an L2 fill.
    l2_waiters: HashMap<(usize, u64), Vec<(usize, u64)>>,
    /// DRAM requests in flight, by channel-unique key.
    dram_inflight: HashMap<u64, DramTarget>,
    next_dram_key: u64,
    dispatch_cursor: usize,
    /// Reused per-cycle scratch for the device-queue dispatch sweep.
    scratch_handles: Vec<u64>,
    host: HostStats,
    /// Sticky device fault (CUDA semantics): once set, every device-touching
    /// API call returns it until [`Gpu::reset_fault`].
    fault: Option<SimError>,
    /// Last cycle at which the forward-progress watchdog observed activity.
    last_progress: u64,
    /// Cycles elided by idle-cycle fast-forward ([`GpuConfig::fast_forward`]).
    /// These cycles are fully accounted in every counter; this tracks how
    /// much simulated time the engine did not have to tick one-by-one.
    fast_forward_skipped_cycles: u64,
    /// Replies sent so far, for deterministic drop-the-Nth injection.
    replies_sent: u64,
    /// PCIe transfers so far (H2D + D2H), for deterministic drop/poison
    /// injection on the memcpy path.
    memcpys_done: u64,
    /// Fault raised during the current cycle's merge (trap or CDP-limit
    /// violation), resolved against the owning stream at the end of
    /// `cycle_post`.
    pending_fault: Option<SimError>,
    /// Where trace events go ([`SinkSlot::Off`] unless tracing is on).
    sink: SinkSlot,
    /// Per-kernel records, in retire order (collected while profiling is
    /// enabled).
    records: Vec<KernelRecord>,
    /// Counter snapshot at the last retire boundary (or stats reset); the
    /// base of the next kernel record's delta.
    record_base: RunStats,
    /// Interval sampler, present only when
    /// [`GpuConfig::sample_interval_cycles`] is non-zero.
    sampler: Option<Sampler>,
}

impl Gpu {
    /// Build a GPU running `program` under `config`.
    pub fn new(program: Program, config: GpuConfig) -> Self {
        program
            .validate()
            .unwrap_or_else(|(name, e)| panic!("kernel `{name}` invalid: {e}"));
        let program = Arc::new(program);
        let lanes = (0..config.n_sms)
            .map(|_| SmLane {
                core: SmCore::new(config.sm, Arc::clone(&program)),
                ports: SmPorts::new(),
            })
            .collect();
        let l2 = (0..config.n_partitions)
            .map(|_| Cache::new(config.l2_slice))
            .collect();
        let dram = (0..config.n_partitions)
            .map(|_| Dram::new(config.dram))
            .collect();
        let icnt_req = Icnt::new(config.icnt, config.n_sms, config.n_partitions);
        let icnt_rep = Icnt::new(config.icnt, config.n_sms, config.n_partitions);
        let mut mem = DeviceMemory::new();
        mem.set_poison(config.fault_plan.poison);
        Gpu {
            lanes,
            mem,
            l2,
            dram,
            icnt_req,
            icnt_rep,
            cycle: 0,
            events: DeliveryQueue::new(),
            pending_inbound: DeliveryQueue::new(),
            streams: vec![StreamState::default()],
            active_stream: None,
            stream_cursor: 0,
            draining: None,
            device_queue: VecDeque::new(),
            grids: HashMap::new(),
            next_grid: 1,
            free_arenas: Vec::new(),
            const_bindings: HashMap::new(),
            l2_waiters: HashMap::new(),
            dram_inflight: HashMap::new(),
            next_dram_key: 0,
            dispatch_cursor: 0,
            scratch_handles: Vec::new(),
            host: HostStats::default(),
            fault: None,
            last_progress: 0,
            fast_forward_skipped_cycles: 0,
            replies_sent: 0,
            memcpys_done: 0,
            pending_fault: None,
            sink: if config.trace {
                SinkSlot::Buffer(TraceBuffer::new(config.trace_capacity))
            } else {
                SinkSlot::Off
            },
            records: Vec::new(),
            record_base: RunStats::default(),
            sampler: (config.sample_interval_cycles > 0)
                .then(|| Sampler::new(config.sample_interval_cycles, config.sample_ring_capacity)),
            config,
            program,
        }
    }

    /// The configuration the GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The program loaded on the device.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Offset all future grid handles by `base` (`next_grid` becomes
    /// `base + 1`). A node calls this once per device at construction (with
    /// `device_index << 40`) so grid handles — the join key between kernel
    /// records, trace events, and serving telemetry — stay unique across
    /// every device in the node. Must be called before the first launch.
    pub fn set_grid_base(&mut self, base: u64) {
        debug_assert_eq!(self.next_grid, 1, "grid base must be set before launches");
        self.next_grid = base + 1;
    }

    /// Simulated cycles elided by idle-cycle fast-forward so far (see
    /// [`GpuConfig::fast_forward`]). Every skipped cycle is fully credited
    /// to the counters, so `stats()` is independent of this value; it
    /// measures engine efficiency, not workload behaviour.
    pub fn fast_forward_skipped_cycles(&self) -> u64 {
        self.fast_forward_skipped_cycles
    }

    /// Functional device memory (for test setup/inspection).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Mutable functional device memory.
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    /// The sticky fault the device is currently in, if any. This is the
    /// *device-wide* fault (default-stream semantics); per-stream faults
    /// are reported by [`Gpu::stream_fault`].
    pub fn fault(&self) -> Option<&SimError> {
        self.fault.as_ref()
    }

    /// Clear the sticky fault state and return it. The device was already
    /// halted and drained when the fault was raised, so it is immediately
    /// ready for new launches (memory contents and statistics survive).
    ///
    /// Besides taking the fault, this scrubs recovery-relevant residue the
    /// halt could not know about: the default stream's own fault marker,
    /// CDP pending-launch entries whose grids are gone (drained but never
    /// retired), the watchdog's progress marker (so the next launch starts
    /// its stall count from zero instead of inheriting the hang's), and —
    /// when profiling — the record-delta base (so the next kernel record
    /// does not absorb the killed span's counters).
    pub fn reset_fault(&mut self) -> Option<SimError> {
        let err = self.fault.take();
        self.streams[0].fault = None;
        self.device_queue
            .retain(|h| self.grids.contains_key(h) && !self.grids[h].finished());
        self.last_progress = self.cycle;
        if self.profiling_enabled() {
            self.record_base = self.stats();
        }
        err
    }

    // ---- streams ----------------------------------------------------------

    /// Create a new host stream and return its id. Streams are never
    /// destroyed; a faulted stream is recycled with [`Gpu::reset_stream`].
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(StreamState::default());
        StreamId(self.streams.len() - 1)
    }

    /// Number of streams (including the default stream 0).
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    /// The sticky fault `stream` is in, if any. A faulted stream rejects
    /// new launches and holds no in-flight work (its grids were killed when
    /// the fault was raised); other streams keep running.
    pub fn stream_fault(&self, stream: StreamId) -> Option<&SimError> {
        self.streams.get(stream.0).and_then(|s| s.fault.as_ref())
    }

    /// Grids queued (not yet retired) on `stream`.
    pub fn stream_pending(&self, stream: StreamId) -> usize {
        self.streams.get(stream.0).map_or(0, |s| s.queue.len())
    }

    /// Clear `stream`'s sticky fault and return it, restoring the stream to
    /// a usable state. The stream's in-flight work was already killed when
    /// the fault was raised; queued grids that never started were dropped
    /// with it. Resetting stream 0 also clears the device-wide fault (they
    /// are the same fault — the default stream keeps CUDA's device-sticky
    /// semantics).
    pub fn reset_stream(&mut self, stream: StreamId) -> Option<SimError> {
        if stream.0 == 0 {
            return self.reset_fault();
        }
        self.streams.get_mut(stream.0).and_then(|s| s.fault.take())
    }

    // ---- statistics -------------------------------------------------------

    /// Snapshot all counters.
    pub fn stats(&self) -> RunStats {
        self.stats_over(self.lanes.iter().map(|l| &l.core))
    }

    /// [`Gpu::stats`] over an explicit SM-core iterator, so the engine can
    /// snapshot counters while the lanes are checked out of `self` (e.g.
    /// mid-`synchronize` for per-kernel records and interval samples).
    pub(super) fn stats_over<'a>(&self, cores: impl Iterator<Item = &'a SmCore>) -> RunStats {
        let mut r = RunStats {
            host: self.host,
            icnt_req: *self.icnt_req.stats(),
            icnt_rep: *self.icnt_rep.stats(),
            ..RunStats::default()
        };
        for sm in cores {
            r.sm.merge(sm.stats());
            RunStats::merge_cache(&mut r.l1, sm.l1_stats());
        }
        for l2 in &self.l2 {
            RunStats::merge_cache(&mut r.l2, l2.stats());
        }
        for d in &self.dram {
            RunStats::merge_dram(&mut r.dram, d.stats());
        }
        r
    }

    /// Reset every statistic (not memory contents or cache tags), including
    /// per-kernel records, interval samples, and the trace buffer.
    pub fn reset_stats(&mut self) {
        self.host = HostStats::default();
        self.fast_forward_skipped_cycles = 0;
        for lane in &mut self.lanes {
            let _ = lane.core.take_stats();
            lane.core.reset_cache_stats();
            lane.core.reset_pc_table();
        }
        for l2 in &mut self.l2 {
            l2.reset_stats();
        }
        for d in &mut self.dram {
            d.reset_stats();
        }
        self.icnt_req.reset_stats();
        self.icnt_rep.reset_stats();
        self.records.clear();
        self.record_base = RunStats::default();
        if let Some(s) = &mut self.sampler {
            let interval = s.interval;
            let capacity = s.capacity;
            *s = Sampler::new(interval, capacity);
            s.last_boundary = self.cycle;
        }
        if let SinkSlot::Buffer(b) = &mut self.sink {
            let _ = b.take();
        }
    }

    // ---- profiling --------------------------------------------------------

    /// Whether the profiling layer is collecting anything: a trace sink is
    /// installed, interval sampling is on, per-PC attribution is on, and/or
    /// standalone kernel records are requested
    /// ([`GpuConfig::kernel_records`]). Per-kernel records are collected
    /// exactly while this is true. Profiling never changes simulated timing
    /// or [`Gpu::stats`] — with everything disabled the per-cycle cost is a
    /// single branch.
    pub fn profiling_enabled(&self) -> bool {
        self.trace_on()
            || self.sampler.is_some()
            || self.config.sm.attribution
            || self.config.kernel_records
    }

    /// Install a custom trace sink (replacing the built-in buffer if
    /// [`GpuConfig::trace`] was set). The sink sees every event from now on.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = SinkSlot::Custom(sink);
    }

    /// Per-kernel counter records collected so far, in retire order.
    pub fn kernel_records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Completed interval samples currently in the ring, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &IntervalSample> + '_ {
        self.sampler.iter().flat_map(|s| s.ring.iter())
    }

    /// Samples evicted from the ring so far.
    pub fn samples_dropped(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.dropped)
    }

    /// Events recorded by the built-in trace buffer (empty when tracing is
    /// off or a custom sink is installed).
    pub fn trace_events(&self) -> &[TraceEvent] {
        match &self.sink {
            SinkSlot::Buffer(b) => b.events(),
            _ => &[],
        }
    }

    /// The code axis of attribution: per-PC counters merged across SMs in
    /// SM-index order and symbolicated against the loaded program. `None`
    /// unless the GPU was built with [`ggpu_sm::SmConfig::attribution`].
    pub fn pc_profile(&self) -> Option<PcProfile> {
        let mut merged: Option<ggpu_sm::PcTable> = None;
        for lane in &self.lanes {
            let t = lane.core.pc_table()?;
            match &mut merged {
                Some(m) => m.merge(t),
                None => merged = Some(t.clone()),
            }
        }
        let merged = merged?;
        let kernels = self
            .program
            .iter()
            .map(|(kid, k)| KernelPcProfile {
                kernel_id: kid.0,
                kernel: k.name.clone(),
                rows: merged
                    .kernel(kid)
                    .iter()
                    .enumerate()
                    .map(|(pc, c)| PcProfileRow {
                        pc,
                        instr: k.instrs[pc].to_string(),
                        counters: *c,
                    })
                    .collect(),
            })
            .collect();
        Some(PcProfile {
            kernels,
            unattributed: *merged.unattributed(),
        })
    }

    /// The space axis of attribution: every counter resolved per hardware
    /// unit. Always available — these are the units' own live counters.
    pub fn unit_profile(&self) -> UnitProfile {
        let req_inj = self.icnt_req.injected_per_node();
        let req_del = self.icnt_req.delivered_per_node();
        let rep_inj = self.icnt_rep.injected_per_node();
        let rep_del = self.icnt_rep.delivered_per_node();
        let n_sms = self.config.n_sms;
        let sms = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| SmUnit {
                sm: i,
                stats: lane.core.stats().clone(),
                l1: *lane.core.l1_stats(),
                req_injected: req_inj.get(i).copied().unwrap_or(0),
                rep_delivered: rep_del.get(i).copied().unwrap_or(0),
            })
            .collect();
        let partitions = (0..self.config.n_partitions)
            .map(|p| PartitionUnit {
                partition: p,
                l2: *self.l2[p].stats(),
                dram: *self.dram[p].stats(),
                banks: self.dram[p].bank_stats().to_vec(),
                req_delivered: req_del.get(n_sms + p).copied().unwrap_or(0),
                rep_injected: rep_inj.get(n_sms + p).copied().unwrap_or(0),
            })
            .collect();
        UnitProfile { sms, partitions }
    }

    /// Take everything the profiler has collected as one machine-readable
    /// [`ProfileReport`], leaving the profiler empty (subsequent records and
    /// samples start from the current counter values).
    pub fn take_profile(&mut self) -> ProfileReport {
        self.flush_sample();
        let stats = self.stats();
        let (samples, samples_dropped) = match &mut self.sampler {
            Some(s) => (
                std::mem::take(&mut s.ring).into_iter().collect(),
                std::mem::take(&mut s.dropped),
            ),
            None => (Vec::new(), 0),
        };
        let (events, events_dropped) = match &mut self.sink {
            SinkSlot::Buffer(b) => b.take(),
            _ => (Vec::new(), 0),
        };
        self.record_base = stats.clone();
        ProfileReport {
            stats,
            clock_ghz: self.config.clock_ghz,
            kernels: std::mem::take(&mut self.records),
            samples,
            samples_dropped,
            events,
            events_dropped,
            pc: self.pc_profile(),
            units: self.unit_profile(),
        }
    }

    #[inline]
    fn trace_on(&self) -> bool {
        !matches!(self.sink, SinkSlot::Off)
    }

    /// Hand one event to the installed sink. Callers guard with
    /// [`Gpu::trace_on`] so the disabled path never constructs an event.
    fn emit(&mut self, kind: TraceEventKind) {
        let ev = TraceEvent {
            cycle: self.cycle,
            kind,
        };
        match &mut self.sink {
            SinkSlot::Off => {}
            SinkSlot::Buffer(b) => b.event(&ev),
            SinkSlot::Custom(s) => s.event(&ev),
        }
    }

    /// Display name for a kernel id.
    fn kernel_name(&self, id: KernelId) -> String {
        self.program
            .get(id)
            .map(|k| k.name.clone())
            .unwrap_or_else(|| format!("k{}", id.0))
    }

    /// Close the sampler's partial trailing window (no-op when sampling is
    /// off or no cycles elapsed since the last boundary).
    fn flush_sample(&mut self) {
        if self.sampler.is_some() {
            let snap = self.stats();
            if let Some(s) = &mut self.sampler {
                s.close_window(self.cycle, &snap);
            }
        }
    }

    /// [`Gpu::flush_sample`] while the lanes are checked out of `self`.
    fn flush_sample_with(&mut self, lanes: &LaneSet<'_>) {
        if self.sampler.is_some() {
            let snap = self.stats_over(lanes.cores());
            if let Some(s) = &mut self.sampler {
                s.close_window(self.cycle, &snap);
            }
        }
    }
}
