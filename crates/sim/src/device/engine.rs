//! The cycle engine: event delivery, DRAM, the SM phase, end-of-cycle
//! commit, `synchronize`, and fault/deadlock handling.
//!
//! One device cycle has three strictly ordered phases:
//!
//! 1. **Pre** ([`Gpu::cycle_pre`], serial) — due network packets are
//!    delivered (replies into each SM's inbound port, requests into the L2
//!    slices), DRAM channels tick, and CTAs dispatch.
//! 2. **SM** (parallelizable) — every lane ticks against a *read-only*
//!    snapshot of device memory, writing only its own core state and its
//!    own ports. Lanes share nothing, so this phase may run on any number
//!    of threads (see [`super::parallel`]).
//! 3. **Post** ([`Gpu::cycle_post`], serial) — each lane's output is
//!    drained in SM-index order: deferred stores/atomics commit to memory,
//!    requests enter the interconnect, CDP launches spawn, completed CTAs
//!    retire, and traps resolve. Because the merge order is (SM index,
//!    issue order) no matter how phase 2 was scheduled, every counter,
//!    profile, and trace is bit-identical for any thread count.

use ggpu_mem::{CacheOutcome, LINE_BYTES};
use ggpu_sm::{MemRequest, ReqKind, SmCore, Trap, WarpReport, WarpWait};

use crate::error::{DeadlockReport, DeviceFault, SimError};
use crate::memory::DeviceMemory;
use crate::trace::TraceEventKind;

use super::parallel::{LaneSet, SmLane};
use super::Gpu;

/// Absolute backstop on simulated cycles per `synchronize`. The configurable
/// forward-progress watchdog ([`crate::GpuConfig::watchdog_cycles`])
/// normally fires long before this; the backstop only matters if a workload
/// keeps producing token progress (e.g. one instruction every few thousand
/// cycles) forever.
pub(super) const MAX_SYNC_CYCLES: u64 = 2_000_000_000;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum Ev {
    /// A request packet arrived at its memory partition.
    L2Arrive {
        sm: usize,
        id: u64,
        addr: u64,
        kind: u8,
        tex: bool,
    },
    /// A reply packet arrived back at its SM.
    Reply { sm: usize, id: u64 },
}

#[derive(Debug)]
pub(super) enum DramTarget {
    /// Fill an L2 line and answer the waiters registered under it.
    Fill { part: usize, line: u64 },
    /// Pure write traffic; nothing to do on completion.
    Write,
}

impl Gpu {
    /// Whether any work remains on the device.
    pub fn busy(&self) -> bool {
        self.busy_over(self.lanes.iter().map(|l| &l.core))
    }

    pub(super) fn busy_with(&self, lanes: &LaneSet<'_>) -> bool {
        self.busy_over(lanes.cores())
    }

    fn busy_over<'a>(&self, mut cores: impl Iterator<Item = &'a SmCore>) -> bool {
        !self.grids.is_empty()
            || !self.events.is_empty()
            || !self.pending_inbound.is_empty()
            || cores.any(|s| !s.is_idle() || s.has_outstanding())
            || self.dram.iter().any(|d| !d.is_idle())
    }

    /// Run the device until all launched grids complete; returns elapsed
    /// kernel cycles.
    ///
    /// When a warp raises a guest fault, the device drains in-flight work,
    /// enters the (sticky) fault state, and this returns the
    /// [`SimError::DeviceFault`]. When the forward-progress watchdog sees
    /// no activity for [`crate::GpuConfig::watchdog_cycles`] consecutive
    /// cycles, the device is halted the same way and this returns a
    /// [`SimError::Deadlock`] with a per-warp blocked-state report. Either
    /// way the `Gpu` stays usable after [`Gpu::reset_fault`].
    pub fn try_synchronize(&mut self) -> Result<u64, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let start = self.cycle;
        self.last_progress = self.cycle;
        // Clamp the worker count to the lanes and to the cores actually
        // present: on an oversubscribed host extra shard threads only add
        // barrier and context-switch cost (the phases are bit-identical at
        // any count, so this is purely a wall-clock decision).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = self
            .config
            .sim_threads
            .clamp(1, self.lanes.len().max(1))
            .min(cores);
        // Check the lanes and memory out of `self` for the duration of the
        // run: the cycle phases borrow them independently of the rest of
        // the device state (and the parallel executor moves them into
        // shared structures).
        let mut lanes = std::mem::take(&mut self.lanes);
        let mut mem = std::mem::take(&mut self.mem);
        let result = if threads <= 1 {
            self.sync_serial(start, &mut lanes, &mut mem)
        } else {
            self.sync_parallel(start, threads, &mut lanes, &mut mem)
        };
        self.lanes = lanes;
        self.mem = mem;
        let elapsed = self.cycle - start;
        self.host.kernel_cycles += elapsed;
        self.flush_sample();
        result.map(|()| elapsed)
    }

    /// Run the device until all launched grids complete; returns elapsed
    /// kernel cycles.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_synchronize`] would return an error (guest
    /// fault or deadlock).
    pub fn synchronize(&mut self) -> u64 {
        self.try_synchronize()
            .unwrap_or_else(|e| panic!("synchronize failed: {e}"))
    }

    /// The classic single-threaded loop: every phase runs on this thread.
    fn sync_serial(
        &mut self,
        start: u64,
        lanes: &mut [SmLane],
        mem: &mut DeviceMemory,
    ) -> Result<(), SimError> {
        let mut ls = LaneSet::single(lanes);
        while self.busy_with(&ls) {
            let (now, device_busy) = self.cycle_pre(&mut ls);
            for lane in ls.iter_mut() {
                lane.core.tick(now, &*mem, device_busy, &mut lane.ports);
            }
            self.cycle_post(&mut ls, mem, now);
            if let Some(outcome) = self.sync_check(start, &mut ls) {
                return outcome;
            }
            if self.config.fast_forward {
                self.try_fast_forward(&mut ls, start);
            }
        }
        Ok(())
    }

    /// Post-cycle fault/watchdog check shared by the serial and parallel
    /// loops. `Some(Err(..))` ends the run; `None` continues it — including
    /// after a *non-default* stream was killed for a deadline overrun or a
    /// watchdog hang, in which case the remaining streams keep running and
    /// the fault is reported through [`Gpu::stream_fault`].
    pub(super) fn sync_check(
        &mut self,
        start: u64,
        lanes: &mut LaneSet<'_>,
    ) -> Option<Result<(), SimError>> {
        if let Some(f) = self.fault.clone() {
            return Some(Err(f));
        }
        // Deadline: the active grid overran its cycle budget (counted from
        // arm). Enforced here, on the watchdog's schedule, so a hung *and*
        // budgeted grid is killed by whichever trips first.
        if let Some(h) = self.active_grid_handle() {
            let expired = self
                .grids
                .get(&h)
                .and_then(|g| g.deadline_at)
                .is_some_and(|dl| self.cycle >= dl);
            if expired {
                let g = &self.grids[&h];
                let err = SimError::DeadlineExceeded {
                    kernel: self.kernel_name(g.kernel),
                    stream: g.stream,
                    budget: g.deadline_budget.unwrap_or(0),
                    cycle: self.cycle,
                };
                self.kill_active_stream(err, lanes);
                if let Some(f) = self.fault.clone() {
                    return Some(Err(f));
                }
                return None;
            }
        }
        let stalled = self.cycle - self.last_progress;
        if stalled >= self.config.watchdog_cycles || self.cycle - start >= MAX_SYNC_CYCLES {
            let err = SimError::Deadlock(Box::new(self.deadlock_report_with(stalled, lanes)));
            if self.trace_on() {
                self.emit(TraceEventKind::Deadlock {
                    stalled_for: stalled,
                    stream: self.active_stream.unwrap_or(0),
                });
            }
            self.kill_active_stream(err.clone(), lanes);
            if self.fault.is_some() {
                return Some(Err(err));
            }
            return None;
        }
        None
    }

    /// Advance the device one cycle. No-op while the device is in the fault
    /// state (until [`Gpu::reset_fault`]).
    pub fn tick(&mut self) {
        if self.fault.is_some() {
            return;
        }
        let mut lanes = std::mem::take(&mut self.lanes);
        let mut mem = std::mem::take(&mut self.mem);
        {
            let mut ls = LaneSet::single(&mut lanes);
            let (now, device_busy) = self.cycle_pre(&mut ls);
            for lane in ls.iter_mut() {
                lane.core.tick(now, &mem, device_busy, &mut lane.ports);
            }
            self.cycle_post(&mut ls, &mut mem, now);
        }
        self.lanes = lanes;
        self.mem = mem;
    }

    /// Serial pre-SM phase: deliver due packets, tick DRAM, dispatch CTAs.
    /// Returns `(now, device_busy)` for the SM phase.
    pub(super) fn cycle_pre(&mut self, lanes: &mut LaneSet<'_>) -> (u64, bool) {
        self.cycle += 1;
        let now = self.cycle;

        // 1. Deliver due network events. Replies land in the owning SM's
        // inbound port and are consumed at the start of its tick this same
        // cycle, preserving the pre-port `mem_response(id, now)` timing.
        while let Some(ev) = self.events.pop_due(now) {
            match ev {
                Ev::L2Arrive {
                    sm,
                    id,
                    addr,
                    kind,
                    tex,
                } => self.handle_l2_arrive(sm, id, addr, kind, tex),
                Ev::Reply { sm, id } => lanes.get_mut(sm).ports.replies.push(id),
            }
        }

        // 2. DRAM channels.
        self.dram_tick();

        // 3. CTA dispatch (children first, then the active host grid).
        self.arm_and_dispatch(lanes);

        (now, self.device_busy_at(now))
    }

    /// Whether, from an idle SM's perspective, the device is mid-kernel at
    /// `now` — drives the `FunctionalDone` stall classification.
    ///
    /// Legacy mode counts every grid in the map (queued host grids
    /// included). Under [`crate::GpuConfig::stream_isolation`] only grids
    /// inside their execution window count — a queued host grid on an
    /// inactive stream is *outside* any window, and a retiring grid's drain
    /// tail is *inside* it — so the classification a grid observes never
    /// depends on what sits queued behind it on other streams.
    pub(super) fn device_busy_at(&self, now: u64) -> bool {
        if self.config.stream_isolation {
            self.draining.is_some()
                || self.grids.values().any(|g| match g.armed_at {
                    None => !g.from_host,
                    Some(t) => now < t || !g.fully_dispatched(),
                })
        } else {
            self.grids
                .values()
                .any(|g| !g.fully_dispatched() || g.armed_at.map(|t| now < t).unwrap_or(true))
        }
    }

    /// Serial post-SM phase: drain every lane's output in SM-index order
    /// (the deterministic merge), then resolve faults, feed the watchdog,
    /// and sample.
    pub(super) fn cycle_post(&mut self, lanes: &mut LaneSet<'_>, mem: &mut DeviceMemory, now: u64) {
        // 3b. Land due peer-to-peer payloads before the SM merge: the DMA
        // write commits at its exact arrival cycle, ahead of any same-cycle
        // SM store, so node-level memory state is deterministic at any host
        // thread count.
        while let Some(copy) = self.pending_inbound.pop_due(now) {
            mem.write_slice(crate::memory::DevicePtr(copy.dst), &copy.bytes);
            self.host.p2p_recvs += 1;
            self.host.p2p_bytes_in += copy.bytes.len() as u64;
            if self.trace_on() {
                self.emit(TraceEventKind::Memcpy {
                    dir: crate::trace::CopyDir::P2P,
                    bytes: copy.bytes.len() as u64,
                    cycles: copy.cycles,
                });
            }
        }

        // 4. Merge the SM outputs. Each lane's buffers are swapped out,
        // drained in place (retaining capacity), and swapped back — the
        // steady-state hot path allocates nothing.
        let mut first_trap: Option<(usize, Trap)> = None;
        let mut issued = 0u64;
        for sm in 0..lanes.len() {
            let mut out = std::mem::take(&mut lanes.get_mut(sm).ports.out);
            lanes.get_mut(sm).core.commit_mem_ops(mem, &mut out.mem_ops);
            for req in out.mem_requests.drain(..) {
                self.route_request(sm, req);
            }
            for l in out.launches.drain(..) {
                self.spawn_child(sm, l, mem);
            }
            for c in out.completed.drain(..) {
                if let Some(g) = self.grids.get_mut(&c.grid_handle) {
                    g.done_ctas += 1;
                    if g.finished() {
                        if g.from_host && self.config.stream_isolation {
                            // Canonical boundary: hold the grid until its
                            // in-flight effects drain (finalized below).
                            self.draining = Some(c.grid_handle);
                        } else {
                            self.grid_done(c.grid_handle, lanes);
                        }
                    }
                }
            }
            for t in out.traps.drain(..) {
                if first_trap.is_none() {
                    first_trap = Some((sm, t));
                }
            }
            issued += out.issued;
            out.issued = 0;
            lanes.get_mut(sm).ports.out = out;
        }

        // 5. Fault resolution: a CDP-limit fault raised in `spawn_child`
        // (taking precedence, as before) or the first trap of the cycle
        // kills the owning stream's in-flight work. On the default stream
        // this is the legacy device-wide sticky fault; on other streams
        // the device keeps serving its siblings.
        let mut raised = self.pending_fault.take();
        if raised.is_none() {
            if let Some((sm, t)) = first_trap {
                raised = Some(self.fault_from_trap(sm, &t));
                if self.trace_on() {
                    self.emit(TraceEventKind::Fault {
                        kind: t.kind,
                        kernel: self.kernel_name(t.kernel),
                        stream: self.active_stream.unwrap_or(0),
                    });
                }
            }
        }
        if let Some(err) = raised {
            self.kill_active_stream(err, lanes);
            return;
        }

        // 5b. Canonical host-grid retirement (stream isolation): finalize
        // the held grid only once every in-flight effect has drained, so
        // the next grid starts from a translation-invariant device state.
        if let Some(h) = self.draining {
            let drained = self.events.is_empty()
                && self.dram.iter().all(|d| d.is_idle())
                && lanes.cores().all(|c| !c.has_outstanding());
            if drained {
                self.draining = None;
                for d in &mut self.dram {
                    d.close_rows();
                }
                self.grid_done(h, lanes);
            }
        }

        // 6. Forward-progress watchdog bookkeeping. Progress means: an
        // instruction issued, a network packet is still in flight, a P2P
        // payload is inbound over the node fabric, a DRAM channel is
        // working, or a grid is waiting out its launch overhead.
        let progress = issued > 0
            || !self.events.is_empty()
            || !self.pending_inbound.is_empty()
            || self.dram.iter().any(|d| !d.is_idle())
            || self
                .grids
                .values()
                .any(|g| g.armed_at.is_some_and(|t| t > now));
        if progress {
            self.last_progress = now;
        }

        // 7. Interval sampler: close a window at each absolute multiple of
        // the sampling period. One branch when sampling is off.
        if self.config.sample_interval_cycles != 0
            && now.is_multiple_of(self.config.sample_interval_cycles)
        {
            self.flush_sample_with(lanes);
        }
    }

    // ---- network / memory-partition internals -----------------------------

    #[inline]
    fn partition_of(&self, addr: u64) -> usize {
        ((addr / 256) % self.config.n_partitions as u64) as usize
    }

    fn route_request(&mut self, sm: usize, req: MemRequest) {
        let part = self.partition_of(req.addr);
        let bytes = match req.kind {
            ReqKind::Load => 32,
            ReqKind::Store => 8 + LINE_BYTES as u32,
            ReqKind::Atomic => 40,
        };
        let t = self.icnt_req.send(
            self.icnt_req.src_node(sm),
            self.icnt_req.dst_node(part),
            bytes,
            self.cycle,
        );
        let kind = match req.kind {
            ReqKind::Load => 0,
            ReqKind::Store => 1,
            ReqKind::Atomic => 2,
        };
        self.events.push(
            t.max(self.cycle + 1),
            Ev::L2Arrive {
                sm,
                id: req.id,
                addr: req.addr,
                kind,
                tex: req.tex,
            },
        );
    }

    fn enqueue_dram(&mut self, part: usize, addr: u64, target: DramTarget) {
        let key = self.next_dram_key;
        self.next_dram_key += 1;
        self.dram_inflight.insert(key, target);
        self.dram[part].enqueue(key, addr, self.cycle);
    }

    fn send_reply(&mut self, part: usize, sm: usize, id: u64, extra_delay: u64) {
        let n = self.replies_sent;
        self.replies_sent += 1;
        if self.config.fault_plan.drop_reply == Some(n) {
            // Injected loss: the waiting warp never unblocks and the
            // watchdog reports the hang.
            return;
        }
        let t = self.icnt_rep.send(
            self.icnt_rep.dst_node(part),
            self.icnt_rep.src_node(sm),
            8 + LINE_BYTES as u32,
            self.cycle + extra_delay,
        );
        self.events
            .push(t.max(self.cycle + 1), Ev::Reply { sm, id });
    }

    fn handle_l2_arrive(&mut self, sm: usize, id: u64, addr: u64, kind: u8, tex: bool) {
        let part = self.partition_of(addr);
        let line = addr / LINE_BYTES;
        match kind {
            // Load or atomic: read path through L2.
            0 | 2 => match self.l2[part].access(addr, false) {
                CacheOutcome::Hit => {
                    self.send_reply(part, sm, id, self.config.l2_latency);
                }
                CacheOutcome::MshrMerged => {
                    self.l2_waiters
                        .entry((part, line))
                        .or_default()
                        .push((sm, id));
                }
                _ => {
                    self.l2_waiters
                        .entry((part, line))
                        .or_default()
                        .push((sm, id));
                    self.enqueue_dram(part, addr, DramTarget::Fill { part, line });
                }
            },
            // Store: write-through L2 (update on hit, stream to DRAM).
            _ => {
                let _ = self.l2[part].access(addr, true);
                let _ = tex;
                self.enqueue_dram(part, addr, DramTarget::Write);
            }
        }
    }

    fn dram_tick(&mut self) {
        for part in 0..self.dram.len() {
            for key in self.dram[part].tick(self.cycle) {
                match self.dram_inflight.remove(&key) {
                    Some(DramTarget::Fill { part, line }) => {
                        self.l2[part].fill(line * LINE_BYTES, false);
                        if self.config.trace_cache_fills && self.trace_on() {
                            self.emit(TraceEventKind::CacheFill {
                                partition: part as u64,
                                addr: line * LINE_BYTES,
                            });
                        }
                        if let Some(waiters) = self.l2_waiters.remove(&(part, line)) {
                            for (sm, id) in waiters {
                                self.send_reply(part, sm, id, 0);
                            }
                        }
                    }
                    Some(DramTarget::Write) | None => {}
                }
            }
        }
    }

    // ---- fault handling ---------------------------------------------------

    /// Compose the host-facing error for a warp trap raised on SM `sm`.
    fn fault_from_trap(&self, sm: usize, t: &Trap) -> SimError {
        let kernel = self
            .program
            .get(t.kernel)
            .map(|k| k.name.clone())
            .unwrap_or_else(|| format!("k{}", t.kernel.0));
        SimError::DeviceFault(Box::new(DeviceFault {
            kind: t.kind,
            kernel,
            stream: self.active_stream.unwrap_or(0),
            sm,
            cta: Some(t.cta_linear),
            warp: Some(t.warp),
            warp_in_cta: Some(t.warp_in_cta),
            lane_mask: Some(t.lane_mask),
            pc: Some(t.pc),
            instr: t.instr.clone(),
            addr: t.addr,
            cycle: self.cycle,
        }))
    }

    /// Kill the active stream after a fault, deadline overrun, or watchdog
    /// hang: mark the stream faulted (mirrored into the device-wide sticky
    /// fault when it is the default stream), abort resident work on every
    /// SM, drop the stream's grids (in-flight and queued alike) and all
    /// in-flight packets, and drain the DRAM channels so the device returns
    /// to a clean idle state. Other streams' *queued* grids have not
    /// started and survive untouched; memory contents, cache tags, and
    /// statistics survive too.
    pub(super) fn kill_active_stream(&mut self, err: SimError, lanes: &mut LaneSet<'_>) {
        let s = self.active_stream.unwrap_or(0);
        self.streams[s].fault = Some(err.clone());
        if s == 0 {
            // The default stream keeps CUDA's device-wide sticky semantics.
            self.fault = Some(err);
        }
        for lane in lanes.iter_mut() {
            lane.core.abort_workload();
        }
        self.events.clear();
        self.device_queue.clear();
        self.grids.retain(|_, g| g.stream != s);
        self.streams[s].queue.clear();
        self.l2_waiters.clear();
        self.dram_inflight.clear();
        for d in &mut self.dram {
            d.clear_overflow();
        }
        // Drain DRAM off the device clock; completions are discarded since
        // their waiters were just aborted. Bounded: one issue per cycle and
        // bounded per-request latency, the cap is never the limiter.
        let mut t = self.cycle;
        let deadline = self.cycle + 1_000_000;
        while self.dram.iter().any(|d| !d.is_idle()) && t < deadline {
            t += 1;
            for d in &mut self.dram {
                let _ = d.tick(t);
            }
        }
        if self.config.stream_isolation {
            // The kill is a canonical boundary like any other: survivors
            // resume from the same device state a fault-free run reaches.
            for d in &mut self.dram {
                d.close_rows();
            }
        }
        self.active_stream = None;
        self.draining = None;
        // Forward progress restarts now. Without this bump a recovered
        // device would inherit the dead stream's stall count and the
        // watchdog could spuriously re-fire on the next grid's first
        // cycles (the stale-progress recovery bug).
        self.last_progress = self.cycle;
        // Scope the killed span out of the next kernel record's delta (the
        // off-clock DRAM drain above included), mirroring a retire
        // boundary; otherwise the first record after recovery absorbs the
        // dead stream's counters.
        if self.profiling_enabled() {
            self.record_base = self.stats_over(lanes.cores());
        }
    }

    /// Snapshot everything a deadlock post-mortem needs. Must run *before*
    /// [`Gpu::kill_active_stream`] wipes the state it describes.
    fn deadlock_report_with(&self, stalled_for: u64, lanes: &LaneSet<'_>) -> DeadlockReport {
        let mut warps: Vec<WarpReport> = Vec::new();
        for (i, sm) in lanes.cores().enumerate() {
            warps.extend(
                sm.warp_report(i)
                    .into_iter()
                    .filter(|w| w.wait != WarpWait::Done),
            );
        }
        DeadlockReport {
            cycle: self.cycle,
            stalled_for,
            stream: self.active_stream.unwrap_or(0),
            warps,
            host_queue: self.streams.iter().map(|s| s.queue.len()).sum(),
            device_queue: self.device_queue.len(),
            events_in_flight: self.events.len(),
            outstanding_requests: lanes.cores().map(|s| s.outstanding_requests()).sum(),
            dram_queued: self.dram.iter().map(|d| d.queue_depth()).sum::<usize>(),
        }
    }
}
