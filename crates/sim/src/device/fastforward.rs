//! Idle-cycle fast-forward: jump the device clock over provably-dead spans.
//!
//! Cycle-level workloads spend most of their cycles waiting — on DRAM
//! round-trips, launch-overhead windows, barriers, long-latency pipes. A
//! per-cycle engine pays the full pre/SM/post loop for every one of those
//! cycles even though nothing can change. After each ticked cycle the
//! engine instead asks every unit for a conservative *next event cycle*:
//! the earliest future cycle at which that unit could possibly change
//! architectural or counted state. If the minimum `T` over all units lies
//! strictly beyond the next cycle `c0`, cycles `c0 .. T-1` are a **dead
//! span**: every per-cycle side effect within it (stall counters, DRAM
//! utilisation, per-PC stall attribution, watchdog bookkeeping) is a pure
//! function of the state at `c0` repeated once per cycle. The engine
//! credits the whole span in O(1)-per-unit calls and sets the clock to
//! `T-1`, so the next loop iteration ticks `T` normally.
//!
//! # Why this is bit-identical
//!
//! Each candidate below bounds `T` so that the corresponding unit's
//! observable behaviour is provably constant over `[c0, T)`:
//!
//! * **SM wakes** — [`ggpu_sm::SmCore::next_wake`] returns `c0` unless
//!   every live warp is blocked (barrier/CDP-join, scoreboard pending, or
//!   an issue-interval/operand boundary strictly beyond `c0`). Boundaries
//!   (`next_issue_at`, `reg_ready`) bound `T`, and scoreboard releases only
//!   happen via replies, which are network events — bounded below. Hence
//!   every warp's wait classification, and therefore the per-scheduler
//!   stall record, is constant over the span and can be credited in one
//!   [`ggpu_sm::SmCore::skip_cycles`] call.
//! * **Network** — packets are delivered only when due; the earliest due
//!   time bounds `T`, so no delivery (and no reply-driven SM change)
//!   happens inside the span.
//! * **DRAM** — [`ggpu_mem::Dram::next_event_cycle`] bounds `T` by the
//!   earliest possible issue (`bus_free_at` with a non-empty queue) or
//!   completion; a non-empty overflow queue replays every cycle and
//!   returns `c0`, vetoing the skip.
//! * **Dispatcher** — pending stream arbitration (a healthy stream with
//!   queued work and no active host grid) or an unarmed selected head arms
//!   next cycle (state change), so both veto, as does an open drain window
//!   (its finalisation is a cycle_post decision); a grid armed in the
//!   future bounds `T` by its arm cycle, and a cycle budget bounds `T` by
//!   its expiry so the kill lands on the per-cycle engine's exact cycle;
//!   an armed, partially-dispatched grid vetoes only if some SM could
//!   actually accept a CTA ([`ggpu_sm::SmCore::can_accept`]) — otherwise
//!   the sweep fails on every SM each cycle, whose only effect is
//!   advancing the round-robin cursor by exactly `n_sms` (invisible
//!   modulo `n_sms`).
//! * **Sampler** — interval windows close at absolute multiples of the
//!   period, so the next boundary bounds `T`; the boundary cycle itself is
//!   ticked normally and flushes with counters identical to the per-cycle
//!   engine's (span side effects were credited before it).
//! * **Watchdog** — the deadlock deadline (`last_progress +
//!   watchdog_cycles`) and the absolute backstop bound `T`, so the ticked
//!   cycle at which `sync_check` fires — and the cycle stamped into the
//!   report — are unchanged. The progress predicate itself is constant
//!   over a dead span (its inputs — in-flight packets, DRAM activity,
//!   pending arm windows — are exactly what the candidates freeze), so it
//!   is evaluated once at `c0` and applied to the whole span.
//!
//! Anything not listed (L2, interconnect links, memcpy engine) is purely
//! event-driven on absolute cycle numbers and has no per-cycle state.
//!
//! The skip runs in the serial section of both engine variants. In the
//! multi-threaded engine this is what makes barriers *epoch-batched*: each
//! barrier pair now fences one **active** cycle plus the entire dead span
//! behind it, executed by the main thread in the post-phase while the
//! workers are parked — so barrier cost is paid per epoch, not per cycle.

use super::parallel::LaneSet;
use super::Gpu;

impl Gpu {
    /// If the next cycle begins a dead span, credit the span to every unit
    /// and advance the clock to its last cycle. No-op (the engine keeps
    /// ticking per-cycle) whenever any unit might act on the next cycle.
    ///
    /// Must run between `cycle_post`/`sync_check` of one cycle and
    /// `cycle_pre` of the next, on the serial thread, with every lane and
    /// the device state at rest.
    pub(super) fn try_fast_forward(&mut self, lanes: &mut LaneSet<'_>, start: u64) {
        if !self.busy_with(lanes) {
            // The loop is about to exit; a skip here would credit cycles
            // the per-cycle engine never runs.
            return;
        }
        let c0 = self.cycle + 1;
        let mut t = self
            .last_progress
            .saturating_add(self.config.watchdog_cycles)
            .min(start.saturating_add(super::engine::MAX_SYNC_CYCLES));

        // SM wakes; pending replies in a port mean the SM consumes them on
        // the very next tick (cannot happen after a fully merged cycle, but
        // cheap to keep the invariant local).
        for lane in lanes.iter_mut() {
            if !lane.ports.replies.is_empty() {
                return;
            }
            let wake = lane.core.next_wake(c0);
            if wake <= c0 {
                return;
            }
            t = t.min(wake);
        }

        // Earliest network delivery (always strictly due in the future
        // here: `cycle_pre` already popped everything due at the current
        // cycle, and packets are pushed at least one cycle out).
        if let Some(due) = self.events.next_due() {
            if due <= c0 {
                return;
            }
            t = t.min(due);
        }

        // Earliest inbound peer-to-peer arrival over the node fabric: the
        // payload must land in `cycle_post` of its exact arrival cycle, so
        // the span may not jump past it.
        if let Some(due) = self.pending_inbound.next_due() {
            if due <= c0 {
                return;
            }
            t = t.min(due);
        }

        // DRAM channels: earliest issue or completion.
        for d in &self.dram {
            let next = d.next_event_cycle(c0);
            if next <= c0 {
                return;
            }
            t = t.min(next);
        }

        // Dispatcher. A retiring grid in its drain window finalises the
        // moment its residual traffic lands — a cycle_post decision the
        // span cannot reproduce — so drains veto outright (they are short:
        // the traffic is already in flight).
        if self.draining.is_some() {
            return;
        }
        // Stream arbitration picks (and arms) a new host grid next cycle
        // whenever the device is free and any healthy stream has queued
        // work; an already-selected head that has not armed yet does the
        // same. Both are state changes, so both veto.
        match self.active_stream {
            None => {
                if self
                    .streams
                    .iter()
                    .any(|s| s.fault.is_none() && !s.queue.is_empty())
                {
                    return;
                }
            }
            Some(s) => {
                let head = self.streams[s].queue.front();
                if head.is_some_and(|h| self.grids.get(h).is_some_and(|g| g.armed_at.is_none())) {
                    return;
                }
            }
        }
        for g in self.grids.values() {
            match g.armed_at {
                Some(a) if a > c0 => t = t.min(a),
                Some(_) if !g.fully_dispatched() => {
                    let threads = g.dims.threads_per_cta();
                    if lanes.cores().any(|c| c.can_accept(g.kernel, threads)) {
                        return;
                    }
                }
                _ => {}
            }
            // A cycle budget must expire on the exact cycle the per-cycle
            // engine would kill it on (the stamp lands in the error).
            if let Some(dl) = g.deadline_at {
                t = t.min(dl);
            }
        }

        // Next interval-sample boundary must be ticked so its window
        // closes at the exact per-cycle-engine counters.
        if self.config.sample_interval_cycles != 0 {
            t = t.min(c0.next_multiple_of(self.config.sample_interval_cycles));
        }

        if t <= c0 {
            return;
        }
        let span = t - c0;

        // The progress predicate and `device_busy` are constant over the
        // span (see module docs); evaluate both once at `c0`.
        let progress = !self.events.is_empty()
            || !self.pending_inbound.is_empty()
            || self.dram.iter().any(|d| !d.is_idle())
            || self
                .grids
                .values()
                .any(|g| g.armed_at.is_some_and(|a| a > c0));
        let device_busy = self.device_busy_at(c0);

        for lane in lanes.iter_mut() {
            lane.core.skip_cycles(c0, device_busy, span);
        }
        for d in &mut self.dram {
            d.skip_cycles(c0, span);
        }
        self.cycle = t - 1;
        if progress {
            self.last_progress = t - 1;
        }
        self.fast_forward_skipped_cycles += span;
    }
}
