//! Grid lifecycle: launch validation and queueing, CTA dispatch across the
//! SM cluster, the CDP (device-side launch) runtime, and grid retirement.

use std::sync::Arc;

use ggpu_isa::{FaultKind, Kernel, KernelId, LaunchDims};
use ggpu_sm::CtaConfig;

use crate::error::{DeviceFault, LaunchProblem, SimError};
use crate::memory::DeviceMemory;
use crate::profile::KernelRecord;
use crate::trace::TraceEventKind;

use super::parallel::LaneSet;
use super::{Gpu, StreamId};

/// Per-launch options for [`Gpu::try_launch_on`]: the target stream and an
/// optional execution deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Stream to enqueue on (defaults to [`StreamId::DEFAULT`]).
    pub stream: StreamId,
    /// Cycle budget counted from when the grid is *armed* (reaches the head
    /// of its stream and finishes its launch-overhead window), so queueing
    /// behind other streams does not consume it. When the budget expires
    /// before the grid retires, the owning stream is killed with
    /// [`SimError::DeadlineExceeded`] — the watchdog machinery enforces it
    /// at the same point it checks forward progress.
    pub deadline: Option<u64>,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            stream: StreamId::DEFAULT,
            deadline: None,
        }
    }
}

#[derive(Debug)]
pub(super) struct Grid {
    pub(super) kernel: KernelId,
    pub(super) dims: LaunchDims,
    pub(super) params: Arc<Vec<u64>>,
    pub(super) const_data: Arc<Vec<u8>>,
    pub(super) local_base: u64,
    pub(super) local_stride: u64,
    pub(super) next_cta: u64,
    pub(super) done_ctas: u64,
    /// `(sm, slot, parent grid handle)` for CDP children.
    pub(super) parent: Option<(usize, usize, u64)>,
    /// Earliest cycle CTAs may dispatch (launch overhead); `None` until the
    /// grid reaches the head of its queue.
    pub(super) armed_at: Option<u64>,
    pub(super) from_host: bool,
    /// Owning stream (0 = default; CDP children inherit the parent's).
    pub(super) stream: usize,
    /// Cycle budget from arm ([`LaunchOptions::deadline`]); `None` = none.
    pub(super) deadline_budget: Option<u64>,
    /// Absolute kill cycle, set when the grid arms.
    pub(super) deadline_at: Option<u64>,
    /// CDP nesting depth: 0 for host grids, parent + 1 for children.
    pub(super) depth: u32,
    /// Cycle at which the grid was enqueued.
    pub(super) launch_cycle: u64,
    /// Cycle at which the first CTA dispatched; `None` until then.
    pub(super) start_cycle: Option<u64>,
}

impl Grid {
    pub(super) fn fully_dispatched(&self) -> bool {
        self.next_cta >= self.dims.num_ctas()
    }
    pub(super) fn finished(&self) -> bool {
        self.fully_dispatched() && self.done_ctas >= self.dims.num_ctas()
    }
}

impl Gpu {
    /// Validate a launch configuration against the program and the SM
    /// resource limits; `Err` carries the specific [`LaunchProblem`].
    fn validate_launch(
        &self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<(), SimError> {
        let k = match self.program.get(kernel) {
            Some(k) => k,
            None => {
                return Err(SimError::InvalidLaunch {
                    kernel: format!("k{}", kernel.0),
                    problem: LaunchProblem::UnknownKernel,
                })
            }
        };
        let invalid = |problem| SimError::InvalidLaunch {
            kernel: k.name.clone(),
            problem,
        };
        let tpc = dims.threads_per_cta();
        if dims.num_ctas() == 0 || tpc == 0 {
            return Err(invalid(LaunchProblem::ZeroDimension));
        }
        let sm = &self.config.sm;
        if tpc > sm.max_threads {
            return Err(invalid(LaunchProblem::TooManyThreads {
                requested: tpc,
                limit: sm.max_threads,
            }));
        }
        let regs = k.regs_per_thread.saturating_mul(tpc);
        if regs > sm.registers {
            return Err(invalid(LaunchProblem::RegistersExceeded {
                requested: regs,
                limit: sm.registers,
            }));
        }
        if k.smem_per_cta > sm.smem_bytes {
            return Err(invalid(LaunchProblem::SharedMemExceeded {
                requested: k.smem_per_cta,
                limit: sm.smem_bytes,
            }));
        }
        let required = k.param_words_required();
        if params.len() < required {
            return Err(invalid(LaunchProblem::ParamCountMismatch {
                required,
                provided: params.len(),
            }));
        }
        Ok(())
    }

    /// Enqueue a grid on the default stream (serialized with prior host
    /// launches) after validating the configuration. Returns the grid
    /// handle.
    pub fn try_launch(
        &mut self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<u64, SimError> {
        self.try_launch_on(kernel, dims, params, LaunchOptions::default())
    }

    /// Enqueue a grid on an explicit stream, optionally with a cycle-budget
    /// deadline (see [`LaunchOptions`]). Grids on one stream serialize in
    /// FIFO order; the device arbitrates round-robin between streams, one
    /// grid at a time. A device-wide sticky fault (default-stream
    /// semantics) rejects every launch; a *stream* fault rejects only
    /// launches onto that stream until [`Gpu::reset_stream`].
    pub fn try_launch_on(
        &mut self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
        opts: LaunchOptions,
    ) -> Result<u64, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let stream = opts.stream.0;
        match self.streams.get(stream) {
            None => {
                return Err(SimError::InvalidLaunch {
                    kernel: self.kernel_name(kernel),
                    problem: LaunchProblem::UnknownStream {
                        requested: stream,
                        streams: self.streams.len(),
                    },
                })
            }
            Some(s) => {
                if let Some(f) = s.fault.clone() {
                    return Err(f);
                }
            }
        }
        self.validate_launch(kernel, dims, params)?;
        let program = Arc::clone(&self.program);
        let k: &Kernel = program.kernel(kernel);
        let (local_base, local_stride) =
            Self::alloc_local_arena(&mut self.mem, &mut self.free_arenas, k, dims);
        let const_data = self
            .const_bindings
            .get(&kernel.0)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()));
        let handle = self.next_grid;
        self.next_grid += 1;
        self.grids.insert(
            handle,
            Grid {
                kernel,
                dims,
                params: Arc::new(params.to_vec()),
                const_data,
                local_base,
                local_stride,
                next_cta: 0,
                done_ctas: 0,
                parent: None,
                armed_at: None,
                from_host: true,
                stream,
                deadline_budget: opts.deadline,
                deadline_at: None,
                depth: 0,
                launch_cycle: self.cycle,
                start_cycle: None,
            },
        );
        self.streams[stream].queue.push_back(handle);
        self.host.kernel_launches += 1;
        if self.trace_on() {
            self.emit(TraceEventKind::KernelLaunch {
                grid: handle,
                kernel: self.kernel_name(kernel),
                ctas: dims.num_ctas(),
                threads_per_cta: dims.threads_per_cta(),
                stream,
            });
        }
        Ok(handle)
    }

    /// Enqueue a grid on the default stream. Returns the grid handle.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_launch`] would return an error (unknown
    /// kernel, invalid configuration, or a prior sticky fault).
    pub fn launch(&mut self, kernel: KernelId, dims: LaunchDims, params: &[u64]) -> u64 {
        self.try_launch(kernel, dims, params)
            .unwrap_or_else(|e| panic!("launch failed: {e}"))
    }

    /// Convenience: launch one grid and synchronize.
    pub fn try_run_kernel(
        &mut self,
        kernel: KernelId,
        dims: LaunchDims,
        params: &[u64],
    ) -> Result<u64, SimError> {
        self.try_launch(kernel, dims, params)?;
        self.try_synchronize()
    }

    /// Convenience: launch one grid and synchronize.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_run_kernel`] would return an error.
    pub fn run_kernel(&mut self, kernel: KernelId, dims: LaunchDims, params: &[u64]) -> u64 {
        self.try_run_kernel(kernel, dims, params)
            .unwrap_or_else(|e| panic!("kernel failed: {e}"))
    }

    // ---- dispatch ---------------------------------------------------------

    pub(super) fn arm_and_dispatch(&mut self, lanes: &mut LaneSet<'_>) {
        // CDP children dispatch immediately (after their overhead window).
        // The handle list is copied into reused scratch so the sweep does
        // not allocate per cycle.
        let mut handles = std::mem::take(&mut self.scratch_handles);
        handles.clear();
        handles.extend(self.device_queue.iter().copied());
        for &h in &handles {
            self.dispatch_grid(h, lanes);
        }
        self.scratch_handles = handles;
        self.device_queue.retain(|h| {
            self.grids
                .get(h)
                .map(|g| !g.fully_dispatched())
                .unwrap_or(false)
        });

        // Host grids: one grid owns the device at a time. With a single
        // stream this degenerates to the legacy behaviour (the head of the
        // default stream runs); with several, the device round-robins
        // between non-faulted streams with queued work, switching only at
        // grid boundaries. Nothing activates while a finished grid is still
        // draining (stream-isolation two-phase retirement).
        if self.active_stream.is_none() && self.draining.is_none() {
            let n = self.streams.len();
            for i in 0..n {
                let s = (self.stream_cursor + i) % n;
                if self.streams[s].fault.is_none() && !self.streams[s].queue.is_empty() {
                    self.active_stream = Some(s);
                    self.stream_cursor = (s + 1) % n;
                    break;
                }
            }
        }
        if let Some(s) = self.active_stream {
            let head = *self.streams[s].queue.front().expect("active stream head");
            let arm = {
                let g = self.grids.get_mut(&head).expect("head grid exists");
                if g.armed_at.is_none() {
                    let armed = self.cycle + self.config.kernel_launch_overhead;
                    g.armed_at = Some(armed);
                    g.deadline_at = g.deadline_budget.map(|b| armed.saturating_add(b));
                    true
                } else {
                    false
                }
            };
            if arm {
                if self.config.flush_between_kernels {
                    for lane in lanes.iter_mut() {
                        lane.core.flush_caches();
                    }
                    for l2 in &mut self.l2 {
                        l2.flush();
                    }
                }
                if self.config.stream_isolation {
                    // Canonical boundary: scheduler and dispatch cursors
                    // restart so intra-grid decisions never depend on where
                    // the previous grid left them.
                    self.dispatch_cursor = 0;
                    for lane in lanes.iter_mut() {
                        lane.core.reset_schedulers();
                    }
                }
            }
            self.dispatch_grid(head, lanes);
        }
    }

    /// The handle of the grid currently owning the device (the active
    /// stream's head), if any.
    pub(super) fn active_grid_handle(&self) -> Option<u64> {
        self.active_stream
            .and_then(|s| self.streams[s].queue.front().copied())
    }

    fn dispatch_grid(&mut self, handle: u64, lanes: &mut LaneSet<'_>) {
        let (kernel_id, dims, params, const_data, local_base, local_stride, mut next_cta) = {
            let g = match self.grids.get(&handle) {
                Some(g) => g,
                None => return,
            };
            if g.armed_at.map(|t| self.cycle < t).unwrap_or(true) || g.fully_dispatched() {
                return;
            }
            (
                g.kernel,
                g.dims,
                Arc::clone(&g.params),
                Arc::clone(&g.const_data),
                g.local_base,
                g.local_stride,
                g.next_cta,
            )
        };
        let total = dims.num_ctas();
        let n_sms = lanes.len();
        let mut failures = 0;
        while next_cta < total && failures < n_sms {
            let sm = self.dispatch_cursor % n_sms;
            self.dispatch_cursor += 1;
            let cfg = CtaConfig {
                kernel_id,
                grid_handle: handle,
                cta_linear: next_cta,
                dims,
                params: Arc::clone(&params),
                const_data: Arc::clone(&const_data),
                local_base,
                local_stride,
            };
            if lanes.get_mut(sm).core.try_launch_cta(cfg) {
                next_cta += 1;
                failures = 0;
            } else {
                failures += 1;
            }
        }
        let mut started = None;
        if let Some(g) = self.grids.get_mut(&handle) {
            g.next_cta = next_cta;
            if g.start_cycle.is_none() && next_cta > 0 {
                g.start_cycle = Some(self.cycle);
                started = Some(g.stream);
            }
        }
        if let Some(stream) = started {
            if self.trace_on() {
                self.emit(TraceEventKind::KernelStart {
                    grid: handle,
                    stream,
                });
            }
        }
    }

    /// Allocate a grid's local-memory arena, returning `(base, stride)`.
    ///
    /// The per-thread stride is rounded up to 8 bytes and the arena is sized
    /// in whole warps: the warp-interleaved layout places same-granule
    /// accesses of all 32 lanes adjacently, so an unaligned stride (or a
    /// partial final warp) would otherwise reach past the allocation and
    /// trip the architectural bounds check.
    ///
    /// Retired arenas are recycled by exact size: a steady-state serving
    /// harness allocates each launch geometry's arena once, then reuses it
    /// forever (the allocation count stays flat across shape changes). A
    /// recycled arena is zero-filled so a reused span is bit-identical to a
    /// fresh allocation — local memory is functionally uninitialized, and
    /// fresh allocations read as zero.
    fn alloc_local_arena(
        mem: &mut DeviceMemory,
        free_arenas: &mut Vec<(u64, u64)>,
        k: &Kernel,
        dims: LaunchDims,
    ) -> (u64, u64) {
        let local_stride = (k.local_bytes_per_thread as u64).next_multiple_of(8);
        if local_stride == 0 {
            return (0, 0);
        }
        let warp_slots = dims.num_ctas() * dims.warps_per_cta() as u64;
        let size = local_stride * warp_slots * ggpu_isa::WARP_SIZE as u64;
        if let Some(i) = free_arenas.iter().position(|&(s, _)| s == size) {
            let (_, base) = free_arenas.swap_remove(i);
            mem.write_slice(crate::memory::DevicePtr(base), &vec![0u8; size as usize]);
            return (base, local_stride);
        }
        (mem.alloc(size).0, local_stride)
    }

    // ---- CDP runtime ------------------------------------------------------

    /// Process a device-side launch emitted by SM `parent_sm` during the
    /// current cycle's SM phase (runs in the post-phase merge, so children
    /// enqueue in deterministic SM-index order).
    pub(super) fn spawn_child(
        &mut self,
        parent_sm: usize,
        l: ggpu_sm::DeviceLaunch,
        mem: &mut DeviceMemory,
    ) {
        if self.fault.is_some() || self.pending_fault.is_some() {
            return;
        }
        let parent = self.grids.get(&l.parent_grid);
        let stream = parent.map(|g| g.stream).unwrap_or(0);
        let depth = parent.map(|g| g.depth).unwrap_or(0) + 1;
        let forced_full = self
            .config
            .fault_plan
            .cdp_full_at
            .is_some_and(|c| self.cycle >= c);
        let queue_full = forced_full || self.device_queue.len() >= self.config.cdp_queue_limit;
        let too_deep = depth > self.config.cdp_max_depth;
        if queue_full || too_deep {
            let kind = if queue_full {
                FaultKind::CdpQueueOverflow
            } else {
                FaultKind::CdpNestingExceeded
            };
            let kernel = parent
                .map(|g| g.kernel)
                .and_then(|k| self.program.get(k))
                .map(|k| k.name.clone())
                .unwrap_or_else(|| "?".to_string());
            self.pending_fault = Some(SimError::DeviceFault(Box::new(DeviceFault {
                kind,
                kernel: kernel.clone(),
                stream,
                sm: parent_sm,
                cta: None,
                warp: None,
                warp_in_cta: None,
                lane_mask: None,
                pc: None,
                instr: format!("launch k{} grid {} block {}", l.kernel, l.grid_x, l.block_x),
                addr: None,
                cycle: self.cycle,
            })));
            if self.trace_on() {
                self.emit(TraceEventKind::Fault {
                    kind,
                    kernel,
                    stream,
                });
            }
            return;
        }
        let kernel = KernelId(l.kernel);
        let program = Arc::clone(&self.program);
        let k = match program.get(kernel) {
            Some(k) => k,
            None => return,
        };
        let dims = LaunchDims::linear(l.grid_x, l.block_x);
        let (local_base, local_stride) =
            Self::alloc_local_arena(mem, &mut self.free_arenas, k, dims);
        let const_data = self
            .const_bindings
            .get(&l.kernel)
            .cloned()
            .unwrap_or_else(|| Arc::new(Vec::new()));
        let handle = self.next_grid;
        self.next_grid += 1;
        self.grids.insert(
            handle,
            Grid {
                kernel,
                dims,
                params: Arc::new(l.params),
                const_data,
                local_base,
                local_stride,
                next_cta: 0,
                done_ctas: 0,
                parent: Some((parent_sm, l.parent_slot, l.parent_grid)),
                armed_at: Some(self.cycle + self.config.cdp_launch_overhead),
                from_host: false,
                stream,
                deadline_budget: None,
                deadline_at: None,
                depth,
                launch_cycle: self.cycle,
                start_cycle: None,
            },
        );
        self.device_queue.push_back(handle);
        if self.trace_on() {
            self.emit(TraceEventKind::CdpEnqueue {
                grid: handle,
                kernel: self.kernel_name(kernel),
                parent: l.parent_grid,
                depth,
                ctas: dims.num_ctas(),
                threads_per_cta: dims.threads_per_cta(),
                stream,
            });
        }
    }

    // ---- retirement -------------------------------------------------------

    pub(super) fn grid_done(&mut self, handle: u64, lanes: &mut LaneSet<'_>) {
        let grid = match self.grids.remove(&handle) {
            Some(g) => g,
            None => return,
        };
        if grid.local_stride != 0 {
            // Return the retired grid's local arena to the exact-size free
            // list so the next launch with the same geometry reuses it.
            let warp_slots = grid.dims.num_ctas() * grid.dims.warps_per_cta() as u64;
            let size = grid.local_stride * warp_slots * ggpu_isa::WARP_SIZE as u64;
            self.free_arenas.push((size, grid.local_base));
        }
        if self.profiling_enabled() {
            // Per-kernel counter scoping by retire interval: this record's
            // delta covers everything since the previous retire boundary, so
            // record deltas telescope to the run totals.
            let snap = self.stats_over(lanes.cores());
            let delta = snap.delta_since(&self.record_base);
            self.record_base = snap;
            self.records.push(KernelRecord {
                grid: handle,
                kernel: self.kernel_name(grid.kernel),
                kernel_id: grid.kernel.0,
                ctas: grid.dims.num_ctas(),
                threads_per_cta: grid.dims.threads_per_cta(),
                parent: grid.parent.map(|(_, _, p)| p),
                depth: grid.depth,
                stream: grid.stream,
                launch_cycle: grid.launch_cycle,
                start_cycle: grid.start_cycle.unwrap_or(grid.launch_cycle),
                retire_cycle: self.cycle,
                stats: delta,
            });
        }
        if self.trace_on() {
            self.emit(TraceEventKind::KernelRetire {
                grid: handle,
                stream: grid.stream,
            });
        }
        if let Some((sm, slot, parent_handle)) = grid.parent {
            lanes
                .get_mut(sm)
                .core
                .child_grid_done(slot, Some(parent_handle));
            if self.trace_on() {
                self.emit(TraceEventKind::CdpDrain {
                    parent: parent_handle,
                    child: handle,
                });
            }
        }
        if grid.from_host {
            let s = grid.stream;
            debug_assert_eq!(self.streams[s].queue.front(), Some(&handle));
            self.streams[s].queue.pop_front();
            debug_assert_eq!(self.active_stream, Some(s));
            self.active_stream = None;
        }
    }
}
