//! Host-side memory API: `malloc`, PCIe transfers, and constant binding.
//!
//! Each operation comes in a fallible `try_*` flavour returning
//! `Result<_, SimError>` and a thin panicking wrapper keeping the original
//! signature. Guest faults and deadlocks are *sticky*: after one, every
//! `try_*` call returns the same error until [`Gpu::reset_fault`].

use std::sync::Arc;

use ggpu_isa::KernelId;

use crate::error::SimError;
use crate::memory::DevicePtr;
use crate::trace::{CopyDir, TraceEventKind};

use super::Gpu;

impl Gpu {
    /// Allocate device memory, failing when the configured capacity
    /// ([`crate::GpuConfig::memory_limit`]) would be exceeded.
    ///
    /// Allocation failure is *not* sticky (as in CUDA): the device stays
    /// usable and smaller allocations may still succeed.
    pub fn try_malloc(&mut self, bytes: u64) -> Result<DevicePtr, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let in_use = self.mem.allocated();
        if bytes.saturating_add(in_use) > self.config.memory_limit {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                in_use,
                limit: self.config.memory_limit,
            });
        }
        Ok(self.mem.alloc(bytes))
    }

    /// Allocate device memory.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_malloc`] would return an error.
    pub fn malloc(&mut self, bytes: u64) -> DevicePtr {
        self.try_malloc(bytes)
            .unwrap_or_else(|e| panic!("malloc failed: {e}"))
    }

    /// Fault-plan hook shared by both copy directions: counts the
    /// transfer, and either drops it (a non-sticky, per-call error — the
    /// device stays usable) or flags its payload for corruption.
    ///
    /// Returns `Ok(poison)` where `poison` says whether every payload byte
    /// must be XORed with `0xA5` (a visible, involutive bit flip).
    fn memcpy_inject(&mut self, dir: CopyDir) -> Result<bool, SimError> {
        let index = self.memcpys_done;
        self.memcpys_done += 1;
        if self.config.fault_plan.drop_memcpy == Some(index) {
            return Err(SimError::MemcpyDropped { index, dir });
        }
        Ok(self.config.fault_plan.poison_memcpy == Some(index))
    }

    /// Copy host data to the device (one PCI transaction).
    pub fn try_memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> Result<(), SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        if self.memcpy_inject(CopyDir::H2D)? {
            // Corrupt the bytes as they cross the bus: the device-side
            // image differs from the host buffer.
            let twisted: Vec<u8> = data.iter().map(|b| b ^ 0xA5).collect();
            self.mem.write_slice(dst, &twisted);
        } else {
            self.mem.write_slice(dst, data);
        }
        let cost = self.config.pcie.latency
            + (data.len() as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.h2d_bytes += data.len() as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::H2D,
                bytes: data.len() as u64,
                cycles: cost,
            });
        }
        Ok(())
    }

    /// Copy host data to the device (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) {
        self.try_memcpy_h2d(dst, data)
            .unwrap_or_else(|e| panic!("memcpy_h2d failed: {e}"));
    }

    /// Copy device data back to the host (one PCI transaction).
    pub fn try_memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Result<Vec<u8>, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let poison = self.memcpy_inject(CopyDir::D2H)?;
        let cost =
            self.config.pcie.latency + (len as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.d2h_bytes += len as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::D2H,
                bytes: len as u64,
                cycles: cost,
            });
        }
        let mut out = self.mem.read_slice(src, len);
        if poison {
            // Device memory is intact; only the bytes handed back over the
            // bus are corrupted.
            for b in &mut out {
                *b ^= 0xA5;
            }
        }
        Ok(out)
    }

    /// Copy device data back to the host (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Vec<u8> {
        self.try_memcpy_d2h(src, len)
            .unwrap_or_else(|e| panic!("memcpy_d2h failed: {e}"))
    }

    /// Bind a constant-memory image to a kernel (as `cudaMemcpyToSymbol`
    /// would); inherited by CDP children of the same kernel id.
    pub fn bind_constants(&mut self, kernel: KernelId, data: Vec<u8>) {
        self.const_bindings.insert(kernel.0, Arc::new(data));
    }
}
