//! Host-side memory API: `malloc`, PCIe transfers, and constant binding.
//!
//! Each operation comes in a fallible `try_*` flavour returning
//! `Result<_, SimError>` and a thin panicking wrapper keeping the original
//! signature. Guest faults and deadlocks are *sticky*: after one, every
//! `try_*` call returns the same error until [`Gpu::reset_fault`].

use std::sync::Arc;

use ggpu_isa::KernelId;

use crate::error::SimError;
use crate::memory::DevicePtr;
use crate::trace::{CopyDir, TraceEventKind};

use super::Gpu;

/// A peer-to-peer payload in flight towards this device over the node
/// fabric, waiting in [`Gpu`]'s inbound delivery queue until its arrival
/// cycle. Applied to device memory in the serial post phase, so delivery
/// order — and therefore memory state — is deterministic at any host
/// thread count.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(super) struct InboundCopy {
    /// Destination address in this device's memory.
    pub(super) dst: u64,
    /// Modelled fabric cycles the transfer took (for the trace).
    pub(super) cycles: u64,
    /// The payload.
    pub(super) bytes: Vec<u8>,
}

impl Gpu {
    /// Allocate device memory, failing when the configured capacity
    /// ([`crate::GpuConfig::memory_limit`]) would be exceeded.
    ///
    /// Allocation failure is *not* sticky (as in CUDA): the device stays
    /// usable and smaller allocations may still succeed.
    pub fn try_malloc(&mut self, bytes: u64) -> Result<DevicePtr, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let in_use = self.mem.allocated();
        if bytes.saturating_add(in_use) > self.config.memory_limit {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                in_use,
                limit: self.config.memory_limit,
            });
        }
        Ok(self.mem.alloc(bytes))
    }

    /// Allocate device memory.
    ///
    /// # Panics
    ///
    /// Panics where [`Gpu::try_malloc`] would return an error.
    pub fn malloc(&mut self, bytes: u64) -> DevicePtr {
        self.try_malloc(bytes)
            .unwrap_or_else(|e| panic!("malloc failed: {e}"))
    }

    /// Fault-plan hook shared by both copy directions: counts the
    /// transfer, and either drops it (a non-sticky, per-call error — the
    /// device stays usable) or flags its payload for corruption.
    ///
    /// Returns `Ok(poison)` where `poison` says whether every payload byte
    /// must be XORed with `0xA5` (a visible, involutive bit flip).
    fn memcpy_inject(&mut self, dir: CopyDir) -> Result<bool, SimError> {
        let index = self.memcpys_done;
        self.memcpys_done += 1;
        if self.config.fault_plan.drop_memcpy == Some(index) {
            return Err(SimError::MemcpyDropped { index, dir });
        }
        Ok(self.config.fault_plan.poison_memcpy == Some(index))
    }

    /// Copy host data to the device (one PCI transaction).
    pub fn try_memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) -> Result<(), SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        if self.memcpy_inject(CopyDir::H2D)? {
            // Corrupt the bytes as they cross the bus: the device-side
            // image differs from the host buffer.
            let twisted: Vec<u8> = data.iter().map(|b| b ^ 0xA5).collect();
            self.mem.write_slice(dst, &twisted);
        } else {
            self.mem.write_slice(dst, data);
        }
        let cost = self.config.pcie.latency
            + (data.len() as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.h2d_bytes += data.len() as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::H2D,
                bytes: data.len() as u64,
                cycles: cost,
            });
        }
        Ok(())
    }

    /// Copy host data to the device (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_h2d(&mut self, dst: DevicePtr, data: &[u8]) {
        self.try_memcpy_h2d(dst, data)
            .unwrap_or_else(|e| panic!("memcpy_h2d failed: {e}"));
    }

    /// Copy device data back to the host (one PCI transaction).
    pub fn try_memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Result<Vec<u8>, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let poison = self.memcpy_inject(CopyDir::D2H)?;
        let cost =
            self.config.pcie.latency + (len as f64 / self.config.pcie.bytes_per_cycle) as u64;
        self.host.pci_count += 1;
        self.host.d2h_bytes += len as u64;
        self.host.pci_cycles += cost;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::D2H,
                bytes: len as u64,
                cycles: cost,
            });
        }
        let mut out = self.mem.read_slice(src, len);
        if poison {
            // Device memory is intact; only the bytes handed back over the
            // bus are corrupted.
            for b in &mut out {
                *b ^= 0xA5;
            }
        }
        Ok(out)
    }

    /// Copy device data back to the host (one PCI transaction).
    ///
    /// # Panics
    ///
    /// Panics when the device is in the fault state.
    pub fn memcpy_d2h(&mut self, src: DevicePtr, len: usize) -> Vec<u8> {
        self.try_memcpy_d2h(src, len)
            .unwrap_or_else(|e| panic!("memcpy_d2h failed: {e}"))
    }

    /// Bind a constant-memory image to a kernel (as `cudaMemcpyToSymbol`
    /// would); inherited by CDP children of the same kernel id.
    pub fn bind_constants(&mut self, kernel: KernelId, data: Vec<u8>) {
        self.const_bindings.insert(kernel.0, Arc::new(data));
    }

    // ---- node peer-to-peer hooks (driven by `crate::GpuNode`) -------------

    /// Source half of a node P2P copy: run the shared memcpy fault-injection
    /// hooks (P2P transfers share the drop/poison counter with PCIe
    /// transfers, in call order) and read the payload out of this device's
    /// memory. A poisoned transfer corrupts the payload as it enters the
    /// fabric — the destination receives the twisted bytes while the source
    /// image stays intact.
    pub(crate) fn p2p_read(&mut self, src: DevicePtr, len: usize) -> Result<Vec<u8>, SimError> {
        if let Some(f) = self.fault.clone() {
            return Err(f);
        }
        let poison = self.memcpy_inject(CopyDir::P2P)?;
        let mut bytes = self.mem.read_slice(src, len);
        if poison {
            for b in &mut bytes {
                *b ^= 0xA5;
            }
        }
        Ok(bytes)
    }

    /// Charge this device's outbound P2P counters for a transfer of `bytes`
    /// taking `cycles` fabric cycles, and emit the source-side trace event.
    pub(crate) fn p2p_charge_out(&mut self, bytes: u64, cycles: u64) {
        self.host.p2p_sends += 1;
        self.host.p2p_bytes_out += bytes;
        self.host.p2p_cycles += cycles;
        if self.trace_on() {
            self.emit(TraceEventKind::Memcpy {
                dir: CopyDir::P2P,
                bytes,
                cycles,
            });
        }
    }

    /// Destination half of a node P2P copy: queue the payload for delivery
    /// into this device's memory at `arrival` (its own cycle clock). The
    /// write lands in the serial post phase of that cycle; until then the
    /// pending payload keeps the device busy and vetoes fast-forward past
    /// the arrival.
    pub(crate) fn p2p_queue_inbound(
        &mut self,
        arrival: u64,
        dst: DevicePtr,
        cycles: u64,
        bytes: Vec<u8>,
    ) {
        self.pending_inbound.push(
            arrival.max(self.cycle + 1),
            InboundCopy {
                dst: dst.0,
                cycles,
                bytes,
            },
        );
    }
}
