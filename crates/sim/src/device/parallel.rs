//! The SM-sharded multi-threaded executor behind
//! [`crate::GpuConfig::sim_threads`], plus the lane/shard plumbing shared
//! with the single-threaded path.
//!
//! # Why this is deterministic
//!
//! Only the SM phase of a cycle runs concurrently, and during it every lane
//! touches exclusively its own core and ports while reading device memory
//! through an immutable snapshot (stores and global atomics are deferred to
//! per-SM [`ggpu_sm::MemOp`] logs). The serial pre/post phases — which do
//! all the cross-SM merging — always run on one thread, in SM-index order.
//! Scheduling can therefore change *when* a lane computes its output, never
//! *what* the output is or the order it is merged in, so every counter,
//! profile, and trace is bit-identical for any thread count.
//!
//! # Shape
//!
//! `synchronize` with `sim_threads = N > 1` splits the lanes into N
//! contiguous shards. Worker threads (spawned once per `synchronize`, not
//! per cycle) own shards `1..N`; the main thread runs the serial sections
//! and ticks shard 0 itself. Two barriers fence each **epoch** — one
//! active cycle plus the dead span fast-forwarded behind it (see
//! [`super::fastforward`]), which the main thread retires inside the
//! post-phase while the workers are parked:
//!
//! ```text
//! main:    [busy? pre-phase]  A  [tick shard 0]  B  [post-phase, checks,
//!                                                    fast-forward span]
//! worker:                     A  [tick shard i]  B
//! ```
//!
//! Shards live in `Mutex`es and memory in an `RwLock` purely to satisfy the
//! compiler's aliasing rules; the barriers already order every access, so
//! no lock is ever contended.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};

use ggpu_sm::{SmCore, SmPorts};

use crate::error::SimError;
use crate::memory::DeviceMemory;

use super::Gpu;

/// One SM "lane": the core plus the port pair all its traffic crosses.
#[derive(Debug)]
pub(super) struct SmLane {
    pub(super) core: SmCore,
    pub(super) ports: SmPorts,
}

/// Uniform indexed access over lane storage, whether the lanes sit in one
/// contiguous vector (serial path) or are split across locked shards
/// (parallel path). Global SM index `i` maps to `shards[i / chunk][i %
/// chunk]`, which is exact because every shard except the last holds
/// exactly `chunk` lanes.
pub(super) struct LaneSet<'a> {
    shards: Vec<&'a mut [SmLane]>,
    chunk: usize,
}

impl<'a> LaneSet<'a> {
    /// The serial case: all lanes in one slice.
    pub(super) fn single(lanes: &'a mut [SmLane]) -> Self {
        let chunk = lanes.len().max(1);
        LaneSet {
            shards: vec![lanes],
            chunk,
        }
    }

    /// The parallel case: one slice per locked shard, each of `chunk` lanes
    /// (except possibly the last).
    fn from_guards<'g>(guards: &'a mut [MutexGuard<'g, Vec<SmLane>>], chunk: usize) -> Self {
        LaneSet {
            shards: guards.iter_mut().map(|g| g.as_mut_slice()).collect(),
            chunk,
        }
    }

    pub(super) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// The lane at global SM index `i`.
    pub(super) fn get_mut(&mut self, i: usize) -> &mut SmLane {
        &mut self.shards[i / self.chunk][i % self.chunk]
    }

    /// All SM cores in SM-index order.
    pub(super) fn cores(&self) -> impl Iterator<Item = &SmCore> {
        self.shards.iter().flat_map(|s| s.iter()).map(|l| &l.core)
    }

    /// All lanes in SM-index order.
    pub(super) fn iter_mut(&mut self) -> impl Iterator<Item = &mut SmLane> + use<'_, 'a> {
        self.shards.iter_mut().flat_map(|s| s.iter_mut())
    }
}

/// Sense-reversing barrier. Spins briefly then yields, so it stays correct
/// and cheap even when the host has fewer cores than participants.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
    /// Spin briefly before yielding only when the host actually has a core
    /// per participant; on an oversubscribed host spinning just burns the
    /// quantum the other threads need.
    spin: bool,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
            spin: cores >= total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if self.spin && spins < 100 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Per-cycle values the serial pre-phase publishes to the workers.
struct CycleCtrl {
    now: AtomicU64,
    device_busy: AtomicBool,
    stop: AtomicBool,
}

impl Gpu {
    /// The multi-threaded `synchronize` loop: same phase composition as
    /// [`Gpu::sync_serial`], with the SM phase fanned out across shards.
    pub(super) fn sync_parallel(
        &mut self,
        start: u64,
        threads: usize,
        lanes: &mut Vec<SmLane>,
        mem: &mut DeviceMemory,
    ) -> Result<(), SimError> {
        let n = lanes.len();
        let chunk = n.div_ceil(threads);
        let mut shards: Vec<Mutex<Vec<SmLane>>> = Vec::with_capacity(threads);
        {
            let mut drain = lanes.drain(..);
            loop {
                let shard: Vec<SmLane> = drain.by_ref().take(chunk).collect();
                if shard.is_empty() {
                    break;
                }
                shards.push(Mutex::new(shard));
            }
        }
        let barrier = SpinBarrier::new(shards.len());
        let ctrl = CycleCtrl {
            now: AtomicU64::new(0),
            device_busy: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        };
        let mem_lock = RwLock::new(std::mem::take(mem));

        let mut result: Result<(), SimError> = Ok(());
        std::thread::scope(|scope| {
            for shard in &shards[1..] {
                let barrier = &barrier;
                let ctrl = &ctrl;
                let mem_lock = &mem_lock;
                scope.spawn(move || worker_loop(shard, barrier, ctrl, mem_lock));
            }
            loop {
                // Serial pre-phase under all locks (uncontended: the
                // workers are parked at barrier A).
                {
                    let mut guards: Vec<MutexGuard<'_, Vec<SmLane>>> = shards
                        .iter()
                        .map(|s| s.lock().expect("shard lock poisoned"))
                        .collect();
                    let mut ls = LaneSet::from_guards(&mut guards, chunk);
                    if !self.busy_with(&ls) {
                        ctrl.stop.store(true, Ordering::Release);
                    } else {
                        let (now, device_busy) = self.cycle_pre(&mut ls);
                        ctrl.now.store(now, Ordering::Release);
                        ctrl.device_busy.store(device_busy, Ordering::Release);
                    }
                }
                barrier.wait(); // A: shards released to their owners.
                if ctrl.stop.load(Ordering::Acquire) {
                    break;
                }
                // SM phase: this thread owns shard 0.
                {
                    let mut shard = shards[0].lock().expect("shard lock poisoned");
                    let gmem = mem_lock.read().expect("memory lock poisoned");
                    let now = ctrl.now.load(Ordering::Acquire);
                    let device_busy = ctrl.device_busy.load(Ordering::Acquire);
                    for lane in shard.iter_mut() {
                        lane.core.tick(now, &*gmem, device_busy, &mut lane.ports);
                    }
                }
                barrier.wait(); // B: every shard has ticked.
                                // Serial post-phase under all locks again.
                let stop = {
                    let mut guards: Vec<MutexGuard<'_, Vec<SmLane>>> = shards
                        .iter()
                        .map(|s| s.lock().expect("shard lock poisoned"))
                        .collect();
                    let mut ls = LaneSet::from_guards(&mut guards, chunk);
                    let mut gmem = mem_lock.write().expect("memory lock poisoned");
                    let now = self.cycle;
                    self.cycle_post(&mut ls, &mut gmem, now);
                    match self.sync_check(start, &mut ls) {
                        Some(outcome) => {
                            result = outcome;
                            true
                        }
                        None => {
                            // Epoch batching: fast-forward the dead span
                            // behind this cycle here, on the serial thread,
                            // while the workers are parked at barrier A —
                            // the next barrier pair then fences a whole
                            // epoch (one active cycle plus its dead span)
                            // instead of a single cycle.
                            if self.config.fast_forward {
                                self.try_fast_forward(&mut ls, start);
                            }
                            false
                        }
                    }
                };
                if stop {
                    ctrl.stop.store(true, Ordering::Release);
                    barrier.wait(); // The workers' next A; they exit.
                    break;
                }
            }
        });

        for shard in shards {
            lanes.append(&mut shard.into_inner().expect("shard lock poisoned"));
        }
        *mem = mem_lock.into_inner().expect("memory lock poisoned");
        result
    }
}

/// Body of one worker thread: tick the owned shard between the barriers,
/// every cycle, until the main thread raises `stop`.
fn worker_loop(
    shard: &Mutex<Vec<SmLane>>,
    barrier: &SpinBarrier,
    ctrl: &CycleCtrl,
    mem_lock: &RwLock<DeviceMemory>,
) {
    loop {
        barrier.wait(); // A
        if ctrl.stop.load(Ordering::Acquire) {
            return;
        }
        {
            let mut shard = shard.lock().expect("shard lock poisoned");
            let gmem = mem_lock.read().expect("memory lock poisoned");
            let now = ctrl.now.load(Ordering::Acquire);
            let device_busy = ctrl.device_busy.load(Ordering::Acquire);
            for lane in shard.iter_mut() {
                lane.core.tick(now, &*gmem, device_busy, &mut lane.ports);
            }
        }
        barrier.wait(); // B
    }
}
