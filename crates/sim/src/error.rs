//! Typed simulation errors: guest faults, deadlock reports, launch
//! validation failures, and allocation failures.
//!
//! The host API comes in two flavours: the original panicking methods
//! ([`crate::Gpu::synchronize`] and friends) and fallible `try_*` variants
//! returning `Result<_, SimError>`. Faults follow CUDA's sticky semantics —
//! once a kernel traps, every subsequent API call returns the same error
//! until [`crate::Gpu::reset_fault`] is called.

use std::error::Error;
use std::fmt;

use ggpu_isa::FaultKind;
use ggpu_sm::WarpReport;

use crate::trace::CopyDir;

/// A guest fault raised on the device, with enough context to debug the
/// offending kernel: which kernel, where (SM / CTA / warp / PC), what
/// instruction, and — for memory faults — the faulting address.
///
/// Fields that the fault site could not attribute (e.g. a device-side launch
/// rejected by the runtime rather than a specific warp) are `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceFault {
    /// Architectural fault class.
    pub kind: FaultKind,
    /// Name of the kernel that faulted.
    pub kernel: String,
    /// Stream whose in-flight work the fault poisoned (0 = default stream).
    pub stream: usize,
    /// Device-wide index of the SM the faulting warp was resident on.
    pub sm: usize,
    /// Linear CTA index within the grid, when attributable.
    pub cta: Option<u64>,
    /// SM-local warp index, when attributable.
    pub warp: Option<usize>,
    /// Warp index within its CTA, when attributable.
    pub warp_in_cta: Option<u32>,
    /// Lanes that faulted (memory faults) or were active at the fault.
    pub lane_mask: Option<u32>,
    /// Program counter of the faulting instruction, when attributable.
    pub pc: Option<usize>,
    /// Disassembly (or description) of the faulting operation.
    pub instr: String,
    /// First faulting address, for memory faults.
    pub addr: Option<u64>,
    /// Device cycle at which the fault was raised.
    pub cycle: u64,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in kernel `{}` at cycle {}: `{}`",
            self.kind, self.kernel, self.cycle, self.instr
        )?;
        if let Some(pc) = self.pc {
            write!(f, " (pc {pc})")?;
        }
        if let Some(addr) = self.addr {
            write!(f, " touching 0x{addr:x}")?;
        }
        write!(f, " [sm {}", self.sm)?;
        if let Some(cta) = self.cta {
            write!(f, ", cta {cta}")?;
        }
        if let Some(w) = self.warp {
            write!(f, ", warp {w}")?;
        }
        if let Some(wc) = self.warp_in_cta {
            write!(f, " (warp-in-cta {wc})")?;
        }
        if let Some(m) = self.lane_mask {
            write!(f, ", lanes 0x{m:08x}")?;
        }
        write!(f, ", stream {}]", self.stream)
    }
}

/// Why the forward-progress watchdog declared the device deadlocked.
///
/// Produced by [`crate::Gpu::try_synchronize`] when no SM issues an
/// instruction and no memory-system activity is observed for
/// [`crate::GpuConfig::watchdog_cycles`] consecutive cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Device cycle at which the watchdog fired.
    pub cycle: u64,
    /// Stream whose active grid the watchdog attributed the hang to
    /// (0 = default stream).
    pub stream: usize,
    /// Consecutive cycles without forward progress.
    pub stalled_for: u64,
    /// Blocked-state of every non-finished resident warp.
    pub warps: Vec<WarpReport>,
    /// Host-launch queue depth (grids not yet finished).
    pub host_queue: usize,
    /// CDP pending-launch queue depth.
    pub device_queue: usize,
    /// Network packets still in flight (requests plus replies).
    pub events_in_flight: usize,
    /// Memory requests the SMs still consider outstanding.
    pub outstanding_requests: usize,
    /// Total occupancy (queued + in flight) across DRAM channels.
    pub dram_queued: usize,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "device made no forward progress for {} cycles \
             (watchdog fired at cycle {}, stream {})",
            self.stalled_for, self.cycle, self.stream
        )?;
        writeln!(
            f,
            "  queues: {} host grid(s), {} CDP pending launch(es); \
             {} network packet(s) in flight, {} outstanding SM request(s), \
             {} DRAM request(s) queued",
            self.host_queue,
            self.device_queue,
            self.events_in_flight,
            self.outstanding_requests,
            self.dram_queued
        )?;
        if self.warps.is_empty() {
            writeln!(f, "  no resident warps")?;
        }
        for w in &self.warps {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

/// The specific way a launch configuration was invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchProblem {
    /// The kernel id does not exist in the loaded program.
    UnknownKernel,
    /// Grid or CTA dimensions contain a zero.
    ZeroDimension,
    /// CTA size exceeds the per-SM thread limit.
    TooManyThreads {
        /// Threads per CTA requested.
        requested: u32,
        /// Per-SM maximum.
        limit: u32,
    },
    /// One CTA's register demand exceeds the SM register file.
    RegistersExceeded {
        /// Registers one CTA needs.
        requested: u32,
        /// Register-file size.
        limit: u32,
    },
    /// Static shared memory per CTA exceeds the SM's capacity.
    SharedMemExceeded {
        /// Bytes per CTA requested.
        requested: u32,
        /// Per-SM capacity.
        limit: u32,
    },
    /// Fewer parameter words supplied than the kernel reads.
    ParamCountMismatch {
        /// Parameter words the kernel's `ld.param` instructions reach.
        required: usize,
        /// Parameter words supplied at launch.
        provided: usize,
    },
    /// The launch targeted a stream id that was never created.
    UnknownStream {
        /// Stream id requested.
        requested: usize,
        /// Streams that exist (ids `0..streams`).
        streams: usize,
    },
}

impl fmt::Display for LaunchProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchProblem::UnknownKernel => f.write_str("kernel id not in program"),
            LaunchProblem::ZeroDimension => f.write_str("grid or CTA dimension is zero"),
            LaunchProblem::TooManyThreads { requested, limit } => {
                write!(f, "{requested} threads per CTA exceeds SM limit {limit}")
            }
            LaunchProblem::RegistersExceeded { requested, limit } => {
                write!(f, "one CTA needs {requested} registers, SM has {limit}")
            }
            LaunchProblem::SharedMemExceeded { requested, limit } => {
                write!(
                    f,
                    "{requested} bytes of shared memory per CTA exceeds SM capacity {limit}"
                )
            }
            LaunchProblem::ParamCountMismatch { required, provided } => {
                write!(
                    f,
                    "kernel reads {required} parameter word(s) but {provided} supplied"
                )
            }
            LaunchProblem::UnknownStream { requested, streams } => {
                write!(
                    f,
                    "stream {requested} does not exist ({streams} stream(s) created)"
                )
            }
        }
    }
}

/// Any error the fallible host API can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel trapped on a guest fault; the device is in the fault state
    /// until [`crate::Gpu::reset_fault`].
    DeviceFault(Box<DeviceFault>),
    /// The forward-progress watchdog fired; the device was halted.
    Deadlock(Box<DeadlockReport>),
    /// A launch configuration was rejected before any work was enqueued.
    InvalidLaunch {
        /// Name of the kernel (or `"?"` when the id was unknown).
        kernel: String,
        /// What was wrong with the configuration.
        problem: LaunchProblem,
    },
    /// An allocation would exceed the configured device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Configured capacity.
        limit: u64,
    },
    /// The active grid exceeded its cycle-budget deadline and its stream's
    /// in-flight work was killed (the stream stays faulted until
    /// [`crate::Gpu::reset_stream`]).
    DeadlineExceeded {
        /// Name of the kernel whose grid overran.
        kernel: String,
        /// Stream the grid was launched on.
        stream: usize,
        /// The grid's cycle budget, counted from when it was armed.
        budget: u64,
        /// Device cycle at which the deadline fired.
        cycle: u64,
    },
    /// A PCIe transfer was dropped by fault injection
    /// ([`crate::FaultPlan::drop_memcpy`]). Like a failed `cudaMemcpy`,
    /// this is *not* sticky: the device stays usable and the transfer can
    /// simply be retried.
    MemcpyDropped {
        /// Zero-based index of the dropped transfer (H2D and D2H share one
        /// counter).
        index: u64,
        /// Transfer direction.
        dir: CopyDir,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DeviceFault(d) => write!(f, "device fault: {d}"),
            SimError::Deadlock(r) => write!(f, "device deadlock: {r}"),
            SimError::InvalidLaunch { kernel, problem } => {
                write!(f, "invalid launch of kernel `{kernel}`: {problem}")
            }
            SimError::OutOfMemory {
                requested,
                in_use,
                limit,
            } => write!(
                f,
                "out of device memory: {requested} bytes requested, {in_use} of {limit} in use"
            ),
            SimError::DeadlineExceeded {
                kernel,
                stream,
                budget,
                cycle,
            } => write!(
                f,
                "deadline exceeded: kernel `{kernel}` on stream {stream} \
                 overran its {budget}-cycle budget (killed at cycle {cycle})"
            ),
            SimError::MemcpyDropped { index, dir } => {
                write!(
                    f,
                    "memcpy dropped by fault injection: {dir} transfer #{index}"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_fault_display_names_everything() {
        let e = SimError::DeviceFault(Box::new(DeviceFault {
            kind: FaultKind::IllegalAddress,
            kernel: "oob_store".to_string(),
            stream: 0,
            sm: 2,
            cta: Some(1),
            warp: Some(3),
            warp_in_cta: Some(1),
            lane_mask: Some(0xFFFF_0000),
            pc: Some(4),
            instr: "st.global.b64 [r5+0], r2".to_string(),
            addr: Some(0x1080),
            cycle: 123,
        }));
        let s = e.to_string();
        assert!(s.contains("illegal address"), "{s}");
        assert!(s.contains("oob_store"), "{s}");
        assert!(s.contains("pc 4"), "{s}");
        assert!(s.contains("0x1080"), "{s}");
        assert!(s.contains("st.global"), "{s}");
        assert!(s.contains("sm 2"), "{s}");
    }

    #[test]
    fn deadlock_display_lists_queues() {
        let e = SimError::Deadlock(Box::new(DeadlockReport {
            cycle: 60_000,
            stream: 0,
            stalled_for: 50_000,
            warps: Vec::new(),
            host_queue: 1,
            device_queue: 0,
            events_in_flight: 0,
            outstanding_requests: 2,
            dram_queued: 0,
        }));
        let s = e.to_string();
        assert!(s.contains("no forward progress for 50000 cycles"), "{s}");
        assert!(s.contains("2 outstanding SM request(s)"), "{s}");
    }

    #[test]
    fn deadline_and_memcpy_drop_display() {
        let e = SimError::DeadlineExceeded {
            kernel: "sw_batch".to_string(),
            stream: 3,
            budget: 1_000_000,
            cycle: 1_234_567,
        };
        let s = e.to_string();
        assert!(s.contains("deadline exceeded"), "{s}");
        assert!(s.contains("stream 3"), "{s}");
        assert!(s.contains("1000000-cycle budget"), "{s}");

        let d = SimError::MemcpyDropped {
            index: 7,
            dir: CopyDir::D2H,
        };
        let s = d.to_string();
        assert!(s.contains("memcpy dropped"), "{s}");
        assert!(s.contains("d2h transfer #7"), "{s}");
    }

    #[test]
    fn launch_problem_display() {
        let e = SimError::InvalidLaunch {
            kernel: "k".to_string(),
            problem: LaunchProblem::TooManyThreads {
                requested: 4096,
                limit: 1536,
            },
        };
        assert!(e
            .to_string()
            .contains("4096 threads per CTA exceeds SM limit 1536"));
    }
}
