//! Minimal hand-rolled JSON support for the observability layer.
//!
//! The build environment is fully offline, so instead of `serde` this module
//! provides exactly what the profiling exports need:
//!
//! * [`JsonWriter`] — an append-only writer producing well-formed JSON
//!   objects/arrays (used by [`crate::ProfileReport`] and the `figures`
//!   harness).
//! * [`Json`] — a tiny recursive-descent parser, used by tests and CI smoke
//!   checks to verify that every emitted document round-trips through a
//!   real parse (not just an eyeball check).

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/infinity, so those
/// (which only arise from degenerate 0/0-style metrics) render as `0`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never produces exponent notation for finite values in
        // the ranges we emit, and always includes a digit before any `.`.
        s
    } else {
        "0".to_string()
    }
}

/// An append-only JSON document builder.
///
/// The caller drives structure through [`JsonWriter::begin_obj`] /
/// [`JsonWriter::begin_arr`] (and the matching `end_*`), and the writer
/// tracks comma placement. Keys are only legal inside objects, bare values
/// only inside arrays (or as the document root).
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Stack of `(is_object, has_entries)` frames.
    stack: Vec<(bool, bool)>,
}

impl JsonWriter {
    /// Fresh writer with an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn comma(&mut self) {
        if let Some((_, has)) = self.stack.last_mut() {
            if *has {
                self.buf.push(',');
            }
            *has = true;
        }
    }

    /// Write `"key":` inside the current object.
    fn key(&mut self, key: &str) {
        self.comma();
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Open the root object or an anonymous object inside an array.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.stack.push((true, false));
        self
    }

    /// Open an object under `key` in the current object.
    pub fn begin_obj_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('{');
        self.stack.push((true, false));
        self
    }

    /// Close the current object.
    pub fn end_obj(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((true, _))));
        self.stack.pop();
        self.buf.push('}');
        self
    }

    /// Open the root array or an anonymous array inside an array.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('[');
        self.stack.push((false, false));
        self
    }

    /// Open an array under `key` in the current object.
    pub fn begin_arr_key(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        self.stack.push((false, false));
        self
    }

    /// Close the current array.
    pub fn end_arr(&mut self) -> &mut Self {
        debug_assert!(matches!(self.stack.last(), Some((false, _))));
        self.stack.pop();
        self.buf.push(']');
        self
    }

    /// `"key": <u64>` in the current object.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// `"key": <f64>` in the current object.
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&num(v));
        self
    }

    /// `"key": "string"` in the current object.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// `"key": true|false` in the current object.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// `"key": null` or `"key": <u64>` in the current object.
    pub fn opt_u64(&mut self, key: &str, v: Option<u64>) -> &mut Self {
        self.key(key);
        match v {
            Some(v) => {
                let _ = write!(self.buf, "{v}");
            }
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Bare `u64` element in the current array.
    pub fn elem_u64(&mut self, v: u64) -> &mut Self {
        self.comma();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Bare `f64` element in the current array.
    pub fn elem_f64(&mut self, v: f64) -> &mut Self {
        self.comma();
        self.buf.push_str(&num(v));
        self
    }

    /// Splice an already-serialized JSON fragment under `key`.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Splice an already-serialized JSON fragment as an array element.
    pub fn elem_raw(&mut self, json: &str) -> &mut Self {
        self.comma();
        self.buf.push_str(json);
        self
    }

    /// Finish and return the document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unbalanced JSON writer");
        self.buf
    }
}

/// A parsed JSON value (the subset of shapes the exports produce: no
/// distinction between integers and floats).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: src.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at char {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array, when it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an integer (numbers that round-trip through `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while matches!(self.chars.get(self.pos), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected `{c}` at char {}, found {got:?}",
                self.pos.saturating_sub(1)
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        for c in lit.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected {c:?} at char {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(fields)),
                got => return Err(format!("expected `,` or `}}`, found {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected `,` or `]`, found {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit {c:?}"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err("raw control character in string".to_string())
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some('.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

/// Breadth-first iterator over all values in a document, used by smoke
/// checks that want to assert "some object somewhere has key K".
pub fn walk(root: &Json) -> impl Iterator<Item = &Json> {
    let mut queue: VecDeque<&Json> = VecDeque::new();
    queue.push_back(root);
    std::iter::from_fn(move || {
        let v = queue.pop_front()?;
        match v {
            Json::Arr(items) => queue.extend(items.iter()),
            Json::Obj(fields) => queue.extend(fields.iter().map(|(_, v)| v)),
            _ => {}
        }
        Some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_parseable_nested_doc() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.str("name", "a \"quoted\"\nthing");
        w.u64("count", 42);
        w.f64("rate", 0.5);
        w.bool("ok", true);
        w.opt_u64("parent", None);
        w.begin_arr_key("xs");
        w.elem_u64(1).elem_f64(2.5);
        w.begin_obj();
        w.u64("inner", 7);
        w.end_obj();
        w.end_arr();
        w.begin_obj_key("nested");
        w.end_obj();
        w.end_obj();
        let s = w.finish();
        let v = Json::parse(&s).expect("well-formed");
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("parent"), Some(&Json::Null));
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("a \"quoted\"\nthing")
        );
        let xs = v.get("xs").and_then(Json::as_arr).expect("array");
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("inner").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn parser_rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_numbers_and_escapes() {
        let v = Json::parse("[-1.5e3, 0, 7, \"a\\u0041b\\tc\"]").expect("ok");
        let a = v.as_arr().expect("arr");
        assert_eq!(a[0].as_f64(), Some(-1500.0));
        assert_eq!(a[2].as_u64(), Some(7));
        assert_eq!(a[3].as_str(), Some("aAb\tc"));
    }

    #[test]
    fn nan_and_infinity_render_as_zero() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(0.25), "0.25");
    }

    #[test]
    fn walk_visits_nested_values() {
        let v = Json::parse("{\"a\":[{\"b\":1}],\"c\":2}").expect("ok");
        let count = walk(&v).count();
        assert_eq!(count, 5); // root, arr, obj, 1, 2
    }
}
